"""Setup shim.

The offline environment has setuptools but no ``wheel`` package, so PEP 660
editable installs are unavailable.  Keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy develop-mode install; all project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
