"""Figure 1: accuracy degradation as in-domain training data shrinks."""

from .conftest import run_once
from repro.eval import format_table


def test_figure1_data_scarcity(benchmark, suite):
    rows = run_once(benchmark, suite.run_figure1, domain="yugioh", sizes=(0, 10, 30))
    print()
    print(format_table(rows, title="Figure 1 — U.Acc vs in-domain training size (YuGiOh)"))
    sizes = [row["train_size"] for row in rows]
    assert sizes == [0, 10, 30]
    # More in-domain data should never hurt badly; the trained models must
    # beat the untrained one.
    assert rows[-1]["unnormalized_accuracy"] >= rows[0]["unnormalized_accuracy"]
