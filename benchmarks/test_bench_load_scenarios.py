"""Load-scenario lab: drive the LinkingService through the standard catalogue.

Runs the five catalogue scenarios — steady Poisson, on/off burst, linear
ramp, Zipf-skewed worlds (all open-loop against a seeded arrival schedule)
and a completion-paced closed loop — against a small serving stack, with
the :class:`repro.bench.LoadHarness` sampling queue depth and collecting
per-request latency, per-world accuracy and error counts.  Every scenario
is evaluated against a lab SLO and the results land in ``BENCH_load.json``
at the repo root, next to the serving/decode/meta benchmark payloads.

The second test demonstrates the regression gate the payload exists for:
the fresh run passes against itself while a deliberately degraded copy
(3x latency, third of the throughput) fails.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_load_scenarios.py -q -s
"""

import json
from pathlib import Path

import pytest

from repro.bench import (
    LoadHarness,
    SLOSpec,
    attach_slo,
    compare,
    mentions_by_world,
    render_markdown,
    results_payload,
    scenario_catalogue,
    write_json,
)
from repro.data import generate_corpus, split_domain
from repro.data.worlds import TEST_DOMAINS
from repro.generation import build_tokenizer_for_corpus
from repro.linking import BlinkPipeline
from repro.serving import EntityLinkingPipeline, LinkingService
from repro.utils.config import BiEncoderConfig, CorpusConfig, CrossEncoderConfig, EncoderConfig

SEED = 13
DURATION = 2.0
RATE = 150.0
BATCH_SIZE = 32
MAX_WAIT_MS = 25.0
K = 4

#: Generous lab bounds: the gate must be honest on shared CI runners, so the
#: SLO asserts sanity (sub-2s tails, no drops), not peak hardware numbers.
LAB_SLO = SLOSpec(name="lab", max_p99_ms=2000.0, min_throughput=RATE / 4.0,
                  max_error_rate=0.0, min_accuracy=0.0)
CLOSED_SLO = SLOSpec(name="lab-closed", max_p99_ms=2000.0, min_throughput=1.0,
                     max_error_rate=0.0, min_accuracy=0.0)

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_load.json"


@pytest.fixture(scope="module")
def load_results():
    corpus = generate_corpus(CorpusConfig(
        entities_per_domain=24, mentions_per_domain=120, seed=SEED
    ))
    tokenizer = build_tokenizer_for_corpus(corpus, max_length=16)
    encoder = EncoderConfig(model_dim=16, num_layers=1, num_heads=2,
                            hidden_dim=32, max_length=16)
    blink = BlinkPipeline(
        tokenizer,
        BiEncoderConfig(encoder=encoder),
        CrossEncoderConfig(encoder=encoder, num_candidates=K),
    )
    worlds = list(TEST_DOMAINS)
    entities = [e for world in worlds for e in corpus.entities(world)]
    pools = mentions_by_world(
        m
        for world in worlds
        for m in split_domain(corpus, world, seed_size=30, dev_size=20).test
    )
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=K, batch_size=BATCH_SIZE
    )
    pipeline.link(pools[worlds[0]][:BATCH_SIZE])  # warm caches before timing

    catalogue = scenario_catalogue(pools, seed=SEED, duration=DURATION, rate=RATE)
    results = []
    with LinkingService(pipeline, max_batch_size=BATCH_SIZE,
                        max_wait_ms=MAX_WAIT_MS) as service:
        service.warm_up()
        harness = LoadHarness(service)
        for name, workload in catalogue.items():
            result = harness.run(workload)
            spec = CLOSED_SLO if result.kind == "closed" else LAB_SLO
            attach_slo(result, spec.evaluate(result))
            results.append(result)
    return results


def test_load_scenarios_meet_lab_slos(load_results):
    assert len(load_results) >= 4
    print()
    print(render_markdown(load_results, title="Load scenario lab"))

    config = {
        "duration": DURATION, "rate": RATE, "seed": SEED, "k": K,
        "rerank": True, "batch_size": BATCH_SIZE, "max_wait_ms": MAX_WAIT_MS,
        "entities_per_domain": 24, "mentions_per_domain": 120,
    }
    write_json(load_results, BENCH_OUTPUT, config=config)
    print(f"  wrote {BENCH_OUTPUT.name}")

    for result in load_results:
        # Every scenario reports the full measurement surface ...
        assert result.requests > 0 and result.completed > 0
        assert result.throughput > 0
        for key in ("p50", "p90", "p99"):
            assert result.latency_ms[key] > 0
        assert result.queue_depth["peak"] >= 1
        assert result.slo is not None and result.slo["checks"]
        # ... and holds the lab SLO.
        assert result.slo["passed"], (
            f"{result.scenario} violated its SLO: "
            f"{[c for c in result.slo['checks'] if not c['passed']]}"
        )
    # Open-loop scenarios track their seeded offered load: every generated
    # arrival was submitted and completed (no drops at these rates).
    for result in load_results:
        assert result.completed == result.requests


def test_regression_gate_on_fresh_payload(load_results):
    """The run passes its own gate; a degraded copy fails it."""
    payload = results_payload(load_results)
    self_report = compare(payload, payload, rtol=0.1)
    assert self_report.passed, self_report.summary()

    degraded = json.loads(json.dumps(payload))
    for scenario in degraded["scenarios"].values():
        scenario["throughput"] /= 3.0
        for key in ("p50", "p90", "p99", "mean", "max"):
            scenario["latency_ms"][key] *= 3.0
    gate = compare(degraded, payload, rtol=0.25)
    assert not gate.passed
    assert len(gate.regressions) >= 2 * len(load_results)
    print()
    print(gate.summary())
