"""Lint-gate benchmark: wall time and files/sec into ``BENCH_lint.json``.

The lint job runs on every CI push, so its cost is part of the development
loop's latency budget.  This benchmark times a full gate pass (src + tests
+ benchmarks, every rule, baseline applied) with the library API — the
same work ``scripts/run_lint.py`` does — and lands the numbers in the
standard ``BENCH_*.json`` regression machinery: ``lint_wall_seconds``
gates lower-is-better, ``lint_files_per_second`` higher-is-better, and the
file/finding counts ride along ungated as context.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_lint.py -q -s
"""

import json
from pathlib import Path

import pytest

from repro.analysis import Baseline, LintConfig, run_lint
from repro.bench import compare

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_OUTPUT = REPO_ROOT / "BENCH_lint.json"

#: Timing tolerance for the gate demo.  Wall time on a shared runner is
#: the noisiest metric in the suite; the CI benchmark job is advisory.
RTOL = 0.5


@pytest.fixture(scope="module")
def lint_run():
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    config = LintConfig(project_root=REPO_ROOT)
    paths = [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    return run_lint(paths, config=config, baseline=baseline)


def _payload(result):
    return {
        "lint_wall_seconds": result.elapsed_seconds,
        "lint_files_per_second": result.files_per_second,
        "lint_files_count": result.files,
        "lint_findings_count": len(result.findings) + len(result.baselined),
        "config": {
            "paths": ["src", "tests", "benchmarks"],
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            # Interprocedural layer context (ungated: cache state makes
            # the build time bimodal between cold and warm runs).
            "callgraph_build_seconds": result.callgraph_seconds,
            "callgraph_functions": result.functions,
            "callgraph_edges": result.call_edges,
            "summary_cache_hits": result.cache_hits,
            "summary_cache_misses": result.cache_misses,
            "summary_cache_hit_rate": result.cache_hit_rate,
        },
    }


def test_lint_gate_timed_and_clean(lint_run):
    assert lint_run.ok, "\n".join(f.describe() for f in lint_run.findings)
    assert lint_run.files > 100  # the whole tree, not a subset
    assert lint_run.elapsed_seconds > 0

    payload = _payload(lint_run)
    BENCH_OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"\n  lint: {lint_run.files} files in "
          f"{lint_run.elapsed_seconds:.2f}s "
          f"({lint_run.files_per_second:.0f} files/s)")
    print(f"  wrote {BENCH_OUTPUT.name}")


def test_regression_gate_on_fresh_lint_payload(lint_run):
    """The run passes its own gate; a 12x-slower copy fails it."""
    payload = _payload(lint_run)
    self_report = compare(payload, payload, rtol=RTOL)
    assert self_report.passed, self_report.summary()

    degraded = json.loads(json.dumps(payload))
    degraded["lint_wall_seconds"] *= 12.0
    degraded["lint_files_per_second"] /= 12.0
    gate = compare(degraded, payload, rtol=RTOL)
    assert not gate.passed
    regressed = {check.metric for check in gate.regressions}
    assert regressed == {"lint_wall_seconds", "lint_files_per_second"}
    print()
    print(gate.summary())
