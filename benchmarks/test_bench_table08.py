"""Table VIII: domain gap between the general domain and each test domain."""

from .conftest import run_once
from repro.eval import format_table


def test_table8_domain_gap(benchmark, suite):
    rows = run_once(benchmark, suite.run_table8_gap, domains=["star_trek", "yugioh"], finetune_size=60)
    print()
    print(format_table(rows, title="Table VIII — domain gap (U.Acc difference)"))
    assert len(rows) == 2
    for row in rows:
        assert abs(row["gap"] - (row["blink_ft"] - row["blink"])) < 1e-6
