"""Table III: dataset statistics of the (synthetic) Zeshel benchmark."""

from .conftest import run_once
from repro.eval import format_table


def test_table3_dataset_statistics(benchmark, suite):
    rows = run_once(benchmark, suite.run_table3_statistics)
    print()
    print(format_table(rows, title="Table III — per-domain statistics"))
    assert len(rows) == 16
    by_split = {}
    for row in rows:
        by_split.setdefault(row["split"], 0)
        by_split[row["split"]] += 1
    assert by_split == {"train": 8, "dev": 4, "test": 4}
