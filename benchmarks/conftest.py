"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper through
:class:`repro.eval.ExperimentSuite`.  The suite is session-scoped so the
corpus, tokenizer, synthetic-data bundles and the general-domain training
pairs are built once and reused by all benchmarks.

The configuration is deliberately small (see ``DESIGN.md``): the goal is to
reproduce the *shape* of each result in CPU-minutes, not the absolute
numbers of the authors' GPU runs.
"""

from dataclasses import replace

import pytest

from repro.eval import ExperimentSuite, small_experiment_config


def benchmark_config(seed: int = 13):
    """The corpus / model sizes used by all benchmarks."""
    config = small_experiment_config(seed=seed)
    return replace(
        config,
        corpus=replace(config.corpus, entities_per_domain=24, mentions_per_domain=140),
        biencoder=replace(config.biencoder, epochs=2),
        crossencoder=replace(config.crossencoder, epochs=1),
        seed_size=30,
        dev_size=20,
        recall_k=8,
    )


@pytest.fixture(scope="session")
def suite():
    return ExperimentSuite(benchmark_config())


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
