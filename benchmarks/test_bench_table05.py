"""Table V: few-shot entity linking on Forgotten Realms and Lego."""

from .conftest import run_once
from repro.eval import format_table

METHODS = [
    "name_matching",
    "blink_seed",
    "blink_syn",
    "blink_syn_seed",
    "dl4el_syn_seed",
    "metablink_syn_seed",
    "metablink_synstar_seed",
]


def test_table5_forgotten_realms_and_lego(benchmark, suite):
    rows = run_once(benchmark, suite.run_table5_6, domains=["lego"], methods=METHODS)
    print()
    print(format_table(rows, title="Table V — few-shot linking (Lego; Forgotten Realms via --full sweep)"))
    assert len(rows) == len(METHODS)
    methods = [row["method"] for row in rows]
    assert methods == METHODS
    best_meta = max(row["unnormalized_accuracy"] for row in rows if row["method"].startswith("metablink"))
    seed_only = next(row["unnormalized_accuracy"] for row in rows if row["method"] == "blink_seed")
    syn_only = next(row["unnormalized_accuracy"] for row in rows if row["method"] == "blink_syn")
    # The paper's qualitative claim: combining synthetic + seed data via
    # meta-learning beats using either source alone.
    assert best_meta >= min(seed_only, syn_only)
