"""Meta-reweighting throughput: batched/JVP probes vs the exact per-example loop.

Measures reweighted synthetic examples/second of
:class:`~repro.meta.reweight.ExampleReweighter` at meta-batch
:data:`META_BATCH` over a bi-encoder stage task:

* **exact loop** — the seed repo's original path: one full forward + backward
  per synthetic example (``loss_fn([pair])``), re-encoding the fixed negative
  pool every time;
* **blocked exact** — the vectorized exact path: one shared batched forward
  per probe block, per-example gradients via one-hot-seeded backwards on the
  shared graph (identical dots to machine precision);
* **batched JVP** — two graph-free batched forwards along the unit seed
  direction (first-order-exact dots).

The acceptance gate asserts the batched/JVP path sustains at least
:data:`MIN_JVP_SPEEDUP`× the exact loop.  Runs are interleaved
best-of-:data:`REPEATS` so CPU noise bursts hit all configurations alike.
Machine-readable results land in ``BENCH_meta.json`` at the repo root,
alongside ``BENCH_serving.json`` and ``BENCH_decode.json``.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_meta_training.py -q -s
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.data import generate_corpus, pairs_from_mentions, split_domain
from repro.generation import build_exact_match_data, build_tokenizer_for_corpus
from repro.linking import BiEncoder
from repro.meta import ExampleReweighter, few_shot_seed
from repro.training import BiEncoderMetaTask
from repro.utils.config import BiEncoderConfig, CorpusConfig, EncoderConfig, MetaConfig

META_BATCH = 32  # per the acceptance criterion
SEED_BATCH = 16
NUM_NEGATIVES = 16
REPEATS = 3
MIN_JVP_SPEEDUP = 3.0

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_meta.json"


def _build_reweighter():
    """A serving-sized bi-encoder stage with a fixed negative pool."""
    corpus = generate_corpus(
        CorpusConfig(entities_per_domain=40, mentions_per_domain=140, seed=11)
    )
    tokenizer = build_tokenizer_for_corpus(corpus, max_vocab_size=2048, max_length=48)
    encoder = EncoderConfig(model_dim=48, num_layers=1, num_heads=4, hidden_dim=96, max_length=48)
    model = BiEncoder(BiEncoderConfig(encoder=encoder), tokenizer)

    domain = "yugioh"
    split = split_domain(corpus, domain, seed_size=20, dev_size=10)
    seed_pairs = few_shot_seed(
        pairs_from_mentions(corpus, domain, split.train, source="seed")
    )[:SEED_BATCH]
    synthetic = build_exact_match_data(corpus, domain, per_entity=2)[:META_BATCH]
    assert len(synthetic) == META_BATCH

    task = BiEncoderMetaTask(model, corpus.entities(domain)[:NUM_NEGATIVES])
    reweighter = ExampleReweighter(model, task, MetaConfig())
    return model, task, reweighter, synthetic, seed_pairs


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_meta_reweighting_batched_jvp_beats_exact_loop():
    model, task, reweighter, synthetic, seed_pairs = _build_reweighter()
    model.train()  # training mode, as in the real Alg. 1 loop
    seed_gradient = reweighter.seed_gradient(seed_pairs)

    def exact_loop():
        """The seed repo's original hot path: n single-example backwards."""
        dots = np.zeros(len(synthetic))
        model.eval()
        for index, pair in enumerate(synthetic):
            model.zero_grad()
            task([pair], reduction="sum").backward()
            dots[index] = float(model.gradient_vector() @ seed_gradient)
        model.zero_grad()
        model.train()
        return dots

    def blocked_exact():
        return reweighter.per_example_gradient_dots(synthetic, seed_gradient)

    def batched_jvp():
        return reweighter.jvp_gradient_dots(synthetic, seed_gradient)

    runners = {
        "exact loop": exact_loop,
        "blocked exact": blocked_exact,
        "batched jvp": batched_jvp,
    }

    # Warm-up (first-call allocations, tokenizer caches) + correctness guard:
    # the vectorized exact path must reproduce the loop to machine precision
    # and the JVP must agree to first order.
    outputs = {label: runner() for label, runner in runners.items()}
    assert np.allclose(outputs["blocked exact"], outputs["exact loop"], rtol=1e-9, atol=1e-9)
    scale = np.abs(outputs["exact loop"]).max()
    assert np.abs(outputs["batched jvp"] - outputs["exact loop"]).max() <= 0.1 * scale

    best = {label: float("inf") for label in runners}
    for _ in range(REPEATS):
        for label, runner in runners.items():
            best[label] = min(best[label], _timed(runner))
    throughput = {label: META_BATCH / seconds for label, seconds in best.items()}

    baseline = throughput["exact loop"]
    print()
    print(
        f"meta-reweighting over meta_batch={META_BATCH}, seed_batch={SEED_BATCH}, "
        f"negatives={NUM_NEGATIVES}, model_dim=48, 1 layer"
    )
    for label, value in throughput.items():
        print(f"  {label:>14}: {value:8.1f} examples/s  ({value / baseline:5.1f}x exact loop)")

    jvp_speedup = throughput["batched jvp"] / baseline
    BENCH_OUTPUT.write_text(json.dumps({
        "benchmark": "meta_reweighting_throughput",
        "config": {
            "meta_batch": META_BATCH,
            "seed_batch": SEED_BATCH,
            "num_negatives": NUM_NEGATIVES,
            "model_dim": 48,
            "num_layers": 1,
            "probe_block_size": reweighter.config.probe_block_size,
            "jvp_epsilon": reweighter.config.jvp_epsilon,
            "repeats": REPEATS,
        },
        "examples_per_second": {
            "exact_loop": round(throughput["exact loop"], 1),
            "blocked_exact": round(throughput["blocked exact"], 1),
            "batched_jvp": round(throughput["batched jvp"], 1),
        },
        "blocked_exact_vs_exact_loop": round(throughput["blocked exact"] / baseline, 2),
        "batched_jvp_vs_exact_loop": round(jvp_speedup, 2),
    }, indent=1) + "\n")
    print(f"  wrote {BENCH_OUTPUT.name}")

    assert jvp_speedup >= MIN_JVP_SPEEDUP, (
        f"batched JVP reweighting {throughput['batched jvp']:.1f} examples/s is below "
        f"{MIN_JVP_SPEEDUP}x the exact loop {baseline:.1f} examples/s"
    )
