"""Table VI: few-shot entity linking on Star Trek and YuGiOh."""

from .conftest import run_once
from repro.eval import format_table

METHODS = [
    "name_matching",
    "blink_seed",
    "blink_syn",
    "blink_syn_seed",
    "dl4el_syn_seed",
    "metablink_syn_seed",
    "metablink_synstar_seed",
]


def test_table6_star_trek_and_yugioh(benchmark, suite):
    rows = run_once(benchmark, suite.run_table5_6, domains=["yugioh"], methods=METHODS)
    print()
    print(format_table(rows, title="Table VI — few-shot linking (YuGiOh; Star Trek via --full sweep)"))
    assert [row["method"] for row in rows] == METHODS
    syn_recall = next(row["recall"] for row in rows if row["method"] == "blink_syn")
    seed_recall = next(row["recall"] for row in rows if row["method"] == "blink_seed")
    # Synthetic data should substantially help the bi-encoder (recall), one of
    # the paper's observations about syn vs seed training.
    assert syn_recall >= seed_recall - 10.0
