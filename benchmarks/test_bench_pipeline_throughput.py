"""Serving-pipeline throughput: batched linking vs the per-mention loop.

Measures mentions/second of :class:`repro.serving.EntityLinkingPipeline` at
micro-batch sizes 1, 8 and 64 against the per-mention loop baseline (one
``link([mention])`` call per mention — the shape of the seed repo's original
hot path).  The scenario is global serving: one sharded index over all 16
worlds, mixed traffic from the 4 test domains, fan-out retrieval with
cross-shard merge.

Two pipeline configurations are timed:

* **candidate generation** (``rerank=False``, k=8) — the paper's Recall@k
  serving shape; every stage cost amortises over the batch, so batch-64 is
  asserted to be >= 5x the per-mention loop (typically ~8x).
* **full pipeline** (cross-encoder rerank on, k=4) — the rerank forward is
  per-row compute in both paths, so the amortisable share is smaller;
  batch-64 is asserted to be >= 3x (typically ~5x).

A second test drives the :class:`repro.serving.LinkingService` frontend with
requests submitted **one at a time** over a multi-micro-batch stream and
asserts its dynamic batching sustains the batch-64 pipeline's throughput
(submission overlaps batch compute, so the queueing overhead hides behind
the BLAS calls).  Machine-readable results land in ``BENCH_serving.json`` at
the repo root so the perf trajectory is tracked across PRs.

Baseline and batched runs are interleaved and each takes its best-of-5, so
CPU noise bursts hit both sides alike.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_pipeline_throughput.py -q -s
"""

import json
import time
from pathlib import Path

from repro.data import generate_corpus, split_domain
from repro.data.worlds import TEST_DOMAINS
from repro.generation import build_tokenizer_for_corpus
from repro.linking import BlinkPipeline
from repro.serving import EntityLinkingPipeline, LinkingService
from repro.utils.config import BiEncoderConfig, CorpusConfig, CrossEncoderConfig, EncoderConfig

NUM_MENTIONS = 64
BATCH_SIZES = (1, 8, 64)
REPEATS = 5
MIN_RETRIEVAL_SPEEDUP = 5.0
MIN_RERANK_SPEEDUP = 3.0

#: The service benchmark streams several micro-batches so submission overlaps
#: batch compute — the sustained-serving shape.
SERVICE_STREAM_LENGTH = 192
SERVICE_BATCH_SIZE = 64
#: The service must sustain batch-64 pipeline throughput; 0.95 is the noise
#: floor of best-of-5 wall-clock timing on shared hardware (measured ratios
#: sit at 0.99–1.01).
MIN_SERVICE_VS_BATCH64 = 0.95
MIN_SERVICE_VS_LOOP = 3.0

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _build_pipeline_inputs():
    """Corpus, BLINK stages and a mixed-domain mention stream for serving."""
    corpus = generate_corpus(CorpusConfig(entities_per_domain=32, mentions_per_domain=130, seed=7))
    tokenizer = build_tokenizer_for_corpus(corpus, max_length=16)
    encoder = EncoderConfig(model_dim=16, num_layers=1, num_heads=2, hidden_dim=32, max_length=16)
    blink = BlinkPipeline(
        tokenizer,
        BiEncoderConfig(encoder=encoder),
        CrossEncoderConfig(encoder=encoder, num_candidates=4),
    )
    entities = [entity for domain in corpus.domains for entity in corpus.entities(domain)]
    mentions = []
    for domain in TEST_DOMAINS:
        split = split_domain(corpus, domain, seed_size=30, dev_size=20)
        mentions.extend(split.test[: NUM_MENTIONS // len(TEST_DOMAINS)])
    return blink, entities, mentions[:NUM_MENTIONS]


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def _measure(pipelines, mentions):
    """Interleaved best-of-:data:`REPEATS` seconds per labelled runner."""
    runners = {
        "per-mention loop": lambda p=pipelines[1]: [p.link([m]) for m in mentions],
        **{f"batch={bs}": (lambda p=pipelines[bs]: p.link(mentions)) for bs in BATCH_SIZES},
    }
    best = {label: float("inf") for label in runners}
    for _ in range(REPEATS):
        for label, runner in runners.items():
            best[label] = min(best[label], _timed(runner))
    return {label: NUM_MENTIONS / seconds for label, seconds in best.items()}


def _report(title, throughput):
    baseline = throughput["per-mention loop"]
    print()
    print(title)
    for label, value in throughput.items():
        print(f"  {label:>18}: {value:8.1f} mentions/s  ({value / baseline:4.1f}x baseline)")
    return baseline


def test_pipeline_throughput_scales_with_batch_size():
    blink, entities, mentions = _build_pipeline_inputs()
    assert len(mentions) == NUM_MENTIONS

    # One shared, pre-materialised index so timings measure linking only.
    index = blink.biencoder.build_sharded_index(entities, lazy=False)

    def pipelines(k, rerank):
        built = {
            bs: EntityLinkingPipeline(
                blink.biencoder,
                index,
                blink.crossencoder,
                k=k,
                rerank=rerank,
                batch_size=bs,
                route_by_domain=False,  # global fan-out over all 16 shards
            )
            for bs in BATCH_SIZES
        }
        built[8].link(mentions)  # warm-up: lazy allocations, entity-token caches
        return built

    retrieval = _measure(pipelines(k=8, rerank=False), mentions)
    rerank = _measure(pipelines(k=4, rerank=True), mentions)

    retrieval_base = _report(
        f"candidate generation (k=8, rerank off) over {NUM_MENTIONS} mentions, "
        f"{len(entities)} entities in 16 shards",
        retrieval,
    )
    rerank_base = _report(
        f"full pipeline (k=4, rerank on) over {NUM_MENTIONS} mentions",
        rerank,
    )

    assert retrieval["batch=64"] >= MIN_RETRIEVAL_SPEEDUP * retrieval_base, (
        f"candidate-generation batch-64 throughput {retrieval['batch=64']:.1f} mentions/s "
        f"is below {MIN_RETRIEVAL_SPEEDUP}x the per-mention baseline {retrieval_base:.1f}"
    )
    assert rerank["batch=64"] >= MIN_RERANK_SPEEDUP * rerank_base, (
        f"full-pipeline batch-64 throughput {rerank['batch=64']:.1f} mentions/s "
        f"is below {MIN_RERANK_SPEEDUP}x the per-mention baseline {rerank_base:.1f}"
    )
    # Medium batches must already beat the per-mention loop clearly.
    assert retrieval["batch=8"] >= 2.0 * retrieval_base


def test_linking_service_sustains_batch_throughput():
    """Dynamic batching with one-at-a-time submits vs the batch-64 pipeline.

    192 mentions stream through three paths (interleaved best-of-5):

    * the per-mention loop (the no-batching baseline),
    * ``pipeline.link`` with batch_size 64 (the hand-assembled-batch optimum),
    * ``LinkingService.submit`` one mention at a time (the production shape).

    The service must sustain the batch-64 throughput: its scheduler flushes
    full micro-batches while callers keep submitting, so queueing overhead
    overlaps batch compute.  Results are written to ``BENCH_serving.json``.
    """
    blink, entities, mentions = _build_pipeline_inputs()
    stream = (mentions * ((SERVICE_STREAM_LENGTH // len(mentions)) + 1))[:SERVICE_STREAM_LENGTH]

    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder,
        index,
        blink.crossencoder,
        k=4,
        rerank=True,
        batch_size=SERVICE_BATCH_SIZE,
        route_by_domain=False,
    )
    pipeline.link(stream[:SERVICE_BATCH_SIZE])  # warm-up: caches, allocations

    best = {"per-mention loop": float("inf"), "batch=64": float("inf"),
            "service (1-at-a-time)": float("inf")}
    with LinkingService(
        pipeline, max_batch_size=SERVICE_BATCH_SIZE, max_wait_ms=500.0
    ) as service:
        service.warm_up()
        pipeline.stats.reset()
        for _ in range(REPEATS):
            best["per-mention loop"] = min(
                best["per-mention loop"], _timed(lambda: [pipeline.link([m]) for m in stream])
            )
            best["batch=64"] = min(best["batch=64"], _timed(lambda: pipeline.link(stream)))

            def serve():
                futures = [service.submit(mention) for mention in stream]
                for future in futures:
                    future.result(timeout=120.0)

            best["service (1-at-a-time)"] = min(best["service (1-at-a-time)"], _timed(serve))
        latency = pipeline.stats.latency_summary()

    throughput = {label: SERVICE_STREAM_LENGTH / seconds for label, seconds in best.items()}
    _report(
        f"LinkingService (k=4, rerank on, max_batch={SERVICE_BATCH_SIZE}) over "
        f"{SERVICE_STREAM_LENGTH} mentions, {len(entities)} entities in "
        f"{index.num_shards} shards",
        throughput,
    )
    print(
        f"  service latency: p50={latency['p50'] * 1000:.2f}ms "
        f"p90={latency['p90'] * 1000:.2f}ms p99={latency['p99'] * 1000:.2f}ms"
    )

    BENCH_OUTPUT.write_text(json.dumps({
        "benchmark": "serving_throughput",
        "config": {
            "num_mentions": SERVICE_STREAM_LENGTH,
            "k": 4,
            "rerank": True,
            "max_batch_size": SERVICE_BATCH_SIZE,
            "num_entities": len(entities),
            "num_shards": index.num_shards,
            "repeats": REPEATS,
        },
        "mentions_per_second": {
            "per_mention_loop": round(throughput["per-mention loop"], 1),
            "batch_pipeline_64": round(throughput["batch=64"], 1),
            "linking_service": round(throughput["service (1-at-a-time)"], 1),
        },
        "service_vs_batch64": round(
            throughput["service (1-at-a-time)"] / throughput["batch=64"], 4
        ),
        "service_latency_ms": {
            "p50": round(latency["p50"] * 1000, 3),
            "p90": round(latency["p90"] * 1000, 3),
            "p99": round(latency["p99"] * 1000, 3),
        },
    }, indent=1) + "\n")
    print(f"  wrote {BENCH_OUTPUT.name}")

    assert throughput["service (1-at-a-time)"] >= (
        MIN_SERVICE_VS_BATCH64 * throughput["batch=64"]
    ), (
        f"LinkingService throughput {throughput['service (1-at-a-time)']:.1f} mentions/s "
        f"fell below {MIN_SERVICE_VS_BATCH64}x the batch-64 pipeline "
        f"{throughput['batch=64']:.1f}"
    )
    assert throughput["service (1-at-a-time)"] >= (
        MIN_SERVICE_VS_LOOP * throughput["per-mention loop"]
    )
