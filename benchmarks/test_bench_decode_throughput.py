"""Decode throughput: KV-cached incremental engine vs the naive loop.

Measures generated tokens/second of :meth:`Seq2SeqModel.greedy_decode` (one
prefill + single-token steps over a :class:`~repro.nn.DecoderState`) against
:meth:`Seq2SeqModel.greedy_decode_naive` (full re-forward over the growing
prefix each step — the seed repo's original hot path), in both the float64
default and the ``compute_dtype("float32")`` inference path.

End-of-sequence is blocked for the whole decode (``min_length ==
max_target_length``) so every configuration generates exactly ``batch x
max_target_length`` tokens and the timings compare equal work.  Runs are
interleaved best-of-:data:`REPEATS` so CPU noise bursts hit all
configurations alike.  Machine-readable results land in ``BENCH_decode.json``
at the repo root, alongside ``BENCH_serving.json``.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_decode_throughput.py -q -s
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.generation import Seq2SeqModel
from repro.nn import compute_dtype
from repro.utils.config import RewriterConfig

BATCH = 12
MAX_TARGET_LENGTH = 40  # >= 32 per the acceptance criterion
REPEATS = 3
MIN_CACHED_SPEEDUP = 3.0

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_decode.json"


def _build_decode_inputs():
    """A mention-rewriter-shaped model and a batch of mixed-length sources."""
    config = RewriterConfig(
        vocab_size=1024,
        model_dim=96,
        num_layers=2,
        num_heads=4,
        hidden_dim=192,
        max_source_length=48,
        max_target_length=MAX_TARGET_LENGTH,
    )
    model = Seq2SeqModel(config, pad_id=0, bos_id=1, eos_id=2)
    rng = np.random.default_rng(17)
    sources = rng.integers(3, config.vocab_size, size=(BATCH, config.max_source_length))
    for row in range(BATCH):  # mixed real lengths, trailing padding
        sources[row, 24 + 2 * row:] = 0
    return model, sources


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def test_decode_throughput_kv_cache_beats_naive_loop():
    model, sources = _build_decode_inputs()
    tokens_per_run = BATCH * MAX_TARGET_LENGTH
    # min_length == max_length keeps eos blocked: full-length generation,
    # identical token counts in every configuration.
    decode_kwargs = dict(max_length=MAX_TARGET_LENGTH, min_length=MAX_TARGET_LENGTH)

    def in_dtype(fn, dtype):
        if dtype == "float64":
            return fn()
        with compute_dtype(dtype):
            return fn()

    runners = {
        f"{engine} {dtype}": (
            lambda engine=engine, dtype=dtype: in_dtype(
                lambda: getattr(model, engine_attr[engine])(sources, **decode_kwargs), dtype
            )
        )
        for engine_attr in [{"naive": "greedy_decode_naive", "kv-cached": "greedy_decode"}]
        for engine in engine_attr
        for dtype in ("float64", "float32")
    }

    # Warm-up: first-call allocations, cast caches, memoized causal biases.
    outputs = {label: runner() for label, runner in runners.items()}
    assert outputs["kv-cached float64"] == outputs["naive float64"], (
        "KV-cached decode diverged from the naive reference"
    )
    assert all(len(row) == MAX_TARGET_LENGTH for row in outputs["kv-cached float64"])

    best = {label: float("inf") for label in runners}
    for _ in range(REPEATS):
        for label, runner in runners.items():
            best[label] = min(best[label], _timed(runner))
    throughput = {label: tokens_per_run / seconds for label, seconds in best.items()}

    baseline = throughput["naive float64"]
    print()
    print(
        f"greedy decode over batch={BATCH}, max_target_length={MAX_TARGET_LENGTH}, "
        f"model_dim=96, 2 layers, vocab=1024"
    )
    for label, value in throughput.items():
        print(f"  {label:>18}: {value:8.1f} tokens/s  ({value / baseline:4.1f}x naive float64)")

    speedup = throughput["kv-cached float64"] / baseline
    BENCH_OUTPUT.write_text(json.dumps({
        "benchmark": "decode_throughput",
        "config": {
            "batch": BATCH,
            "max_target_length": MAX_TARGET_LENGTH,
            "model_dim": 96,
            "num_layers": 2,
            "vocab_size": 1024,
            "repeats": REPEATS,
        },
        "tokens_per_second": {
            "naive_float64": round(throughput["naive float64"], 1),
            "naive_float32": round(throughput["naive float32"], 1),
            "kv_cached_float64": round(throughput["kv-cached float64"], 1),
            "kv_cached_float32": round(throughput["kv-cached float32"], 1),
        },
        "kv_cached_vs_naive_float64": round(speedup, 2),
        "float32_vs_float64_cached": round(
            throughput["kv-cached float32"] / throughput["kv-cached float64"], 2
        ),
    }, indent=1) + "\n")
    print(f"  wrote {BENCH_OUTPUT.name}")

    assert speedup >= MIN_CACHED_SPEEDUP, (
        f"KV-cached decode {throughput['kv-cached float64']:.1f} tokens/s is below "
        f"{MIN_CACHED_SPEEDUP}x the naive loop {baseline:.1f} tokens/s"
    )
