"""Table X: effectiveness of mention rewriting on linking quality."""

from .conftest import run_once
from repro.eval import format_table


def test_table10_mention_rewriting(benchmark, suite):
    rows = run_once(benchmark, suite.run_table10_rewriting, domains=["yugioh"])
    print()
    print(format_table(rows, title="Table X — training-data source vs linking quality (YuGiOh)"))
    assert [row["data"] for row in rows] == ["exact_match", "syn", "syn_star"]
