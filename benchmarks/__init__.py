"""Benchmark harness package.

The ``__init__`` makes ``benchmarks`` importable as a package so the
``from .conftest import run_once`` imports inside the table/figure benchmarks
resolve (the seed repo shipped without it, which broke collection).
"""
