"""Table IX: zero-shot transfer with different training sources."""

from .conftest import run_once
from repro.eval import format_table

METHODS = [
    "blink",
    "blink_seed",
    "metablink_syn_seed",
    "metablink_general_seed",
    "metablink_general_syn_seed",
    "metablink_general_synstar_seed",
]


def test_table9_training_sources(benchmark, suite):
    rows = run_once(benchmark, suite.run_table9_sources, domains=["yugioh"])
    print()
    print(format_table(rows, title="Table IX — transfer with different training sources (YuGiOh)"))
    assert [row["method"] for row in rows] == METHODS
