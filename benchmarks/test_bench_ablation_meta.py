"""Ablation: exact per-example gradients vs the JVP fast path (DESIGN.md §4)."""

import numpy as np

from repro.data import pairs_from_mentions, split_domain
from repro.generation import build_exact_match_data
from repro.linking import BiEncoder, BiEncoderTrainer
from repro.meta import ExampleReweighter, few_shot_seed
from repro.utils.config import MetaConfig

from .conftest import run_once


def _setup(suite):
    domain = "yugioh"
    corpus = suite.corpus
    split = split_domain(corpus, domain, seed_size=suite.config.seed_size, dev_size=suite.config.dev_size)
    seed_pairs = few_shot_seed(pairs_from_mentions(corpus, domain, split.train, source="seed"))
    synthetic = build_exact_match_data(corpus, domain, per_entity=2)
    entities = corpus.entities(domain)
    model = BiEncoder(suite.config.biencoder, suite.tokenizer)
    BiEncoderTrainer(model, suite.config.biencoder).fit(seed_pairs, epochs=1, seed=0)
    negatives = entities[:16]
    loss_fn = lambda pairs, reduction="sum": model.pairs_loss_with_negatives(pairs, negatives, reduction=reduction)
    return model, loss_fn, synthetic[:16], seed_pairs[:16]


def test_ablation_exact_vs_jvp_meta_gradients(benchmark, suite):
    model, loss_fn, synthetic, seed_pairs = _setup(suite)

    def compare():
        exact = ExampleReweighter(model, loss_fn, MetaConfig(use_exact_per_example_gradients=True))
        fast = ExampleReweighter(model, loss_fn, MetaConfig(use_exact_per_example_gradients=False))
        exact_result = exact.compute_weights(synthetic, seed_pairs)
        fast_result = fast.compute_weights(synthetic, seed_pairs)
        return exact_result, fast_result

    exact_result, fast_result = run_once(benchmark, compare)
    if np.std(exact_result.raw_gradients) > 0 and np.std(fast_result.raw_gradients) > 0:
        correlation = np.corrcoef(exact_result.raw_gradients, fast_result.raw_gradients)[0, 1]
        print(f"\nexact-vs-JVP raw gradient correlation: {correlation:.4f}")
        assert correlation > 0.9
