"""Table VII: zero-shot domain transfer."""

from .conftest import run_once
from repro.eval import format_table


def test_table7_zero_shot_transfer(benchmark, suite):
    rows = run_once(benchmark, suite.run_table7_transfer, domains=["lego", "yugioh"])
    print()
    print(format_table(rows, title="Table VII — zero-shot domain transfer"))
    assert len(rows) == 6
    assert {row["method"] for row in rows} == {"blink", "blink_seed", "metablink_syn_seed"}
