"""Index lab: approximate vs exact candidate generation at 100k entities.

Three measurement families land in ``BENCH_index.json``:

* **Candidate-generation throughput** — the same query batch pushed through
  the exact blocked-top-k :class:`~repro.linking.EntityIndex` and through an
  :class:`~repro.index.IVFShard` (coarse probe + exact re-scoring) over a
  100k-entity synthetic KB (:func:`repro.bench.synthetic_kb`: real cluster
  geometry, no data files).  The IVF path must clear **>= 10x** the exact
  throughput — the whole point of the approximate layer — while its
  recall@64 against the exact top-64 stays **>= 0.95**.

* **Quantized codecs** — the same KB stored as float16 and int8:
  compression ratio vs the float64 reference and the recall@64 cost of
  searching the quantized matrix (re-scoring reads decoded rows, so this
  isolates quantization error from probe misses).

* **mmap vs in-RAM RSS** — a subprocess loads the persisted snapshot both
  ways and reports its RSS growth; the memory-mapped load must stay well
  under the in-RAM copy (pages are shared and lazy), which is what makes
  forked process replicas cheap.

The last test demonstrates the regression gate on the fresh payload.
Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_index.py -q -s
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import compare, synthetic_kb
from repro.eval import recall_at_k
from repro.index import IVFShard, encode_matrix
from repro.linking import EntityIndex, ShardedEntityIndex

SEED = 13
NUM_ENTITIES = 100_000
DIM = 32
NUM_QUERIES = 256
K = 64
NPROBE = 8
#: More cells than the sqrt(N) default: each coarse cell then holds ~100
#: vectors, so probing 8 cells re-scores <1% of the KB while the synthetic
#: cluster structure keeps the true neighbours inside the probed cells.
NUM_CELLS = 1024
NUM_BASE = 512

#: Queries are noisy copies of random KB rows — the entity-linking shape of
#: traffic (mention embeddings land near their entity's embedding).
QUERY_NOISE = 0.05

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_index.json"


def _make_queries(vectors, rng):
    rows = rng.choice(len(vectors), size=NUM_QUERIES, replace=False)
    rms = float(np.sqrt(np.mean(vectors**2)))
    return vectors[rows] + QUERY_NOISE * rms * rng.standard_normal((NUM_QUERIES, DIM))


def _best_qps(search_arrays, queries, repeats):
    """Queries/second of the best of ``repeats`` timed passes."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        search_arrays(queries, K)
        best = min(best, time.perf_counter() - start)
    return len(queries) / best


def _subprocess_rss_delta_kb(snapshot_path, mmap):
    """RSS growth (KiB) of loading the snapshot in a fresh interpreter.

    Reads ``/proc/self/statm`` (current resident pages, not the
    ``ru_maxrss`` high-water mark) so that lazily-mapped pages the load
    never touches are visibly absent from the mapped number.
    """
    code = (
        "import os\n"
        "def rss_kb():\n"
        "    with open('/proc/self/statm') as handle:\n"
        "        pages = int(handle.read().split()[1])\n"
        "    return pages * os.sysconf('SC_PAGE_SIZE') // 1024\n"
        "from repro.linking import ShardedEntityIndex\n"
        "before = rss_kb()\n"
        f"index = ShardedEntityIndex.load({str(snapshot_path)!r}, mmap={mmap!r})\n"
        "for world in index.worlds():\n"
        "    index.shard(world)\n"
        "print(rss_kb() - before)\n"
    )
    env = dict(os.environ)
    repo_src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        env=env, check=True,
    )
    return int(out.stdout.strip())


@pytest.fixture(scope="module")
def index_results():
    rng = np.random.default_rng(SEED)
    entities, vectors = synthetic_kb(
        NUM_ENTITIES, dim=DIM, num_base=NUM_BASE, num_worlds=4, seed=SEED
    )
    queries = _make_queries(vectors, rng)

    exact = EntityIndex(entities, vectors)
    exact_qps = _best_qps(exact.search_arrays, queries, repeats=2)
    exact_results = exact.search(queries, k=K)

    shard = IVFShard(entities, vectors, num_cells=NUM_CELLS, nprobe=NPROBE, seed=SEED)
    ivf_qps = _best_qps(shard.search_arrays, queries, repeats=3)
    ivf_results = shard.search(queries, k=K)
    recall = recall_at_k(ivf_results, exact_results)

    # Quantized variants: probe structure identical (same seed/cells), the
    # re-scoring just reads decoded rows — recall drift is quantization cost.
    quantized = {}
    float64_bytes = vectors.nbytes
    for codec in ("float16", "int8"):
        storage = encode_matrix(vectors, codec)
        qshard = IVFShard(
            entities, storage, num_cells=NUM_CELLS, nprobe=NPROBE, seed=SEED
        )
        quantized[codec] = {
            "recall_at_64": recall_at_k(qshard.search(queries, k=K), exact_results),
            "storage_bytes": int(storage.nbytes),
            "compression_vs_float64": float64_bytes / storage.nbytes,
        }

    # mmap vs in-RAM: persist a sharded snapshot once, load it twice in
    # fresh interpreters and compare RSS growth.
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "snap"
        # Hand the prebuilt matrix per world, no embed_fn needed.
        sharded = ShardedEntityIndex()
        order = {}
        for position, entity in enumerate(entities):
            order.setdefault(entity.domain, []).append(position)
        for world, positions in order.items():
            sharded.add_shard(
                world, [entities[i] for i in positions], vectors[positions]
            )
        sharded.save(snapshot)
        in_ram_kb = _subprocess_rss_delta_kb(snapshot, mmap=False)
        mmap_kb = _subprocess_rss_delta_kb(snapshot, mmap=True)

    return {
        "exact": {"candidate_qps": exact_qps},
        "ivf": {
            "candidate_qps": ivf_qps,
            "speedup_vs_exact": ivf_qps / exact_qps,
            "recall_at_64": recall,
            "num_cells": shard.num_cells,
            "nprobe": NPROBE,
        },
        "quantized": quantized,
        "mmap": {
            "in_ram_rss_delta_kb": in_ram_kb,
            "mmap_rss_delta_kb": mmap_kb,
            "vector_matrix_kb": float64_bytes // 1024,
        },
    }


def _payload(results):
    return {
        "config": {
            "num_entities": NUM_ENTITIES, "dim": DIM, "seed": SEED,
            "num_queries": NUM_QUERIES, "k": K, "nprobe": NPROBE,
            "num_cells": NUM_CELLS, "num_base": NUM_BASE,
            "query_noise": QUERY_NOISE,
        },
        **results,
    }


def test_ivf_speedup_and_recall(index_results):
    """Acceptance: >= 10x candidate-generation throughput at recall@64 >= 0.95."""
    ivf = index_results["ivf"]
    print(
        f"\n  exact {index_results['exact']['candidate_qps']:.0f} q/s, "
        f"ivf {ivf['candidate_qps']:.0f} q/s "
        f"({ivf['speedup_vs_exact']:.1f}x), recall@64 {ivf['recall_at_64']:.4f}"
    )
    assert ivf["speedup_vs_exact"] >= 10.0
    assert ivf["recall_at_64"] >= 0.95

    payload = _payload(index_results)
    BENCH_OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"  wrote {BENCH_OUTPUT.name}")


def test_quantized_codecs_compress_without_recall_collapse(index_results):
    quantized = index_results["quantized"]
    # int8 at dim 32: 32 code bytes + 16 bytes of per-row scale/zero vs 256
    # float64 bytes, so the ratio lands at 16/3 rather than a full 8x.
    assert quantized["float16"]["compression_vs_float64"] >= 3.9
    assert quantized["int8"]["compression_vs_float64"] >= 5.0
    assert quantized["float16"]["recall_at_64"] >= 0.98
    assert quantized["int8"]["recall_at_64"] >= 0.92


def test_mmap_load_cheaper_than_in_ram(index_results):
    mmap = index_results["mmap"]
    print(
        f"\n  RSS delta: in-RAM {mmap['in_ram_rss_delta_kb']} KiB, "
        f"mmap {mmap['mmap_rss_delta_kb']} KiB "
        f"(vector matrix {mmap['vector_matrix_kb']} KiB)"
    )
    # Both loads pay for the deserialized entity metadata; only the in-RAM
    # load should additionally pay for the ~25 MiB vector matrix.  Require
    # the mapped load to skip at least half of it (page-rounding slack).
    saved = mmap["in_ram_rss_delta_kb"] - mmap["mmap_rss_delta_kb"]
    assert saved >= 0.5 * mmap["vector_matrix_kb"]


def test_regression_gate_on_fresh_index_payload(index_results):
    payload = _payload(index_results)
    report = compare(payload, payload, rtol=0.25)
    assert report.passed and len(report.checks) >= 5

    degraded = json.loads(json.dumps(payload))
    degraded["ivf"]["candidate_qps"] *= 0.5
    degraded["ivf"]["recall_at_64"] = 0.5
    report = compare(degraded, payload, rtol=0.25)
    assert not report.passed
    failed = {check.metric for check in report.regressions}
    assert "ivf.candidate_qps" in failed
    assert "ivf.recall_at_64" in failed
