"""Cluster lab: replica-pool scaling curve plus degraded-replica scenarios.

Two measurement families land in ``BENCH_cluster.json``:

* **Scaling curve** — the same overload burst (Poisson arrivals faster
  than one service can drain) replayed against a single
  :class:`~repro.serving.LinkingService` and against routers over 2- and
  4-replica pools.  Throughput here is capacity (the burst outruns the
  pool, so elapsed time is processing time, not arrival time).  The
  4-vs-1 speedup is asserted hardware-aware: thread replicas only buy
  parallelism when the machine has cores to run them, so the strict
  >= 2.5x bound applies when ``os.cpu_count() >= 4`` and a relaxed
  no-collapse bound (>= 0.5x — pool overhead must not halve throughput)
  applies on smaller runners, with the CPU count recorded in the payload
  config so a baseline is only ever judged on comparable hardware.

* **Degraded-replica scenarios** — the standard cluster catalogue
  (healthy baseline, kill, slow, freeze/thaw, plus the self-healing
  ``crash_loop_recovery`` and ``brownout_overload`` scenarios) driven
  through the :class:`repro.bench.LoadHarness` with each scenario's
  :class:`~repro.serving.FaultPlan` injected mid-run.  Every scenario
  must finish with zero lost requests (completed == offered, errors == 0)
  and a degraded-but-passing SLO; the kill scenario additionally records
  the requeue bookkeeping and the recovery-time metric.  The supervised
  scenarios run with a :class:`~repro.serving.Supervisor` attached and
  land MTTR, availability and degraded-fraction in the payload, where
  the regression gate polices them (``mttr_max_seconds`` lower is
  better, ``availability`` higher is better).

The last test demonstrates the regression gate on the fresh payload: the
run passes against itself while a degraded copy fails.

Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_bench_cluster.py -q -s
"""

import json
import os
from pathlib import Path

import pytest

from repro.bench import (
    LoadHarness,
    PoissonArrivals,
    SLOSpec,
    UniformMentionSampler,
    Workload,
    attach_slo,
    cluster_scenario_catalogue,
    compare,
    render_markdown,
    results_payload,
    write_json,
)
from repro.data import generate_corpus, split_domain
from repro.data.worlds import TEST_DOMAINS
from repro.generation import build_tokenizer_for_corpus
from repro.linking import BlinkPipeline
from repro.serving import (
    BrownoutController,
    BrownoutPolicy,
    EntityLinkingPipeline,
    LinkingService,
    ReplicaPool,
    RestartPolicy,
    Router,
    Supervisor,
)
from repro.utils.config import (
    BiEncoderConfig,
    CorpusConfig,
    CrossEncoderConfig,
    EncoderConfig,
)

SEED = 13
REPLICAS = 4
DURATION = 1.5
RATE = 150.0
BATCH_SIZE = 16
MAX_WAIT_MS = 10.0
K = 4
CPUS = os.cpu_count() or 1

#: The scaling burst is near-instantaneous (~2000 requests inside 20 ms):
#: the arrival window is negligible against any pool's drain time at these
#: model sizes, so measured throughput is pure capacity — the only way the
#: 1/2/4-replica curve reflects parallelism rather than the offered rate.
SCALING_RATE = 100_000.0
SCALING_DURATION = 0.02

#: Degraded-but-passing bounds: a fault mid-run may stall a slice of the
#: traffic (frozen backlogs, requeued batches), so tails get a generous
#: budget — but nothing may be dropped and nothing may error.
DEGRADED_SLO = SLOSpec(name="cluster-degraded", max_p99_ms=10_000.0,
                       min_throughput=RATE / 8.0, max_error_rate=0.0,
                       min_accuracy=0.0, max_reject_rate=0.0)
HEALTHY_SLO = SLOSpec(name="cluster-healthy", max_p99_ms=2000.0,
                      min_throughput=RATE / 4.0, max_error_rate=0.0,
                      min_accuracy=0.0, max_reject_rate=0.0)

#: Self-healing scenarios run with a Supervisor attached.  Repairs are
#: eager (no backoff, generous budget, min_uptime 0 so scripted re-kills
#: never look like a crash loop) and the tick interval is far below the
#: inter-kill spacing, so MTTR measures the repair path, not the timer.
REPAIR_POLICY = RestartPolicy(initial_backoff_seconds=0.01, jitter=0.0,
                              budget=16, budget_window_seconds=60.0,
                              min_uptime_seconds=0.0)
BROWNOUT_POLICY = BrownoutPolicy(enter_depth=32, exit_depth=8,
                                 enter_sustain_seconds=0.1,
                                 exit_sustain_seconds=0.2)
SUPERVISOR_INTERVAL = 0.02

#: Resilience SLOs: the self-heal scenario is judged on recovery (bounded
#: MTTR, availability floor) on top of zero lost requests; the brownout
#: scenario is allowed to degrade answer quality — but not for the entire
#: run — in exchange for holding the latency/throughput bounds.
SCENARIO_SLOS = {
    "crash_loop_recovery": SLOSpec(
        name="cluster-selfheal", max_p99_ms=10_000.0,
        min_throughput=RATE / 8.0, max_error_rate=0.0,
        min_accuracy=0.0, max_reject_rate=0.0,
        max_mttr_seconds=5.0, min_availability=0.5,
    ),
    "brownout_overload": SLOSpec(
        name="cluster-brownout", max_p99_ms=20_000.0,
        min_throughput=RATE / 8.0, max_error_rate=0.0,
        min_accuracy=0.0, max_reject_rate=0.0,
        max_degraded_fraction=0.98,
    ),
}

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def _wait_until(predicate, timeout=5.0, interval=0.01):
    import time
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _build_stack():
    corpus = generate_corpus(CorpusConfig(
        entities_per_domain=24, mentions_per_domain=120, seed=SEED
    ))
    tokenizer = build_tokenizer_for_corpus(corpus, max_length=16)
    encoder = EncoderConfig(model_dim=16, num_layers=1, num_heads=2,
                            hidden_dim=32, max_length=16)
    blink = BlinkPipeline(
        tokenizer,
        BiEncoderConfig(encoder=encoder),
        CrossEncoderConfig(encoder=encoder, num_candidates=K),
    )
    worlds = list(TEST_DOMAINS)
    entities = [e for world in worlds for e in corpus.entities(world)]
    pools = {
        world: split_domain(corpus, world, seed_size=30, dev_size=20).test
        for world in worlds
    }
    index = blink.biencoder.build_sharded_index(entities, lazy=False)
    pipeline = EntityLinkingPipeline(
        blink.biencoder, index, blink.crossencoder, k=K, batch_size=BATCH_SIZE
    )
    pipeline.link(pools[worlds[0]][:BATCH_SIZE])  # warm caches before timing
    return pipeline, pools


def _scaling_workload(pools):
    return Workload(
        PoissonArrivals(rate=SCALING_RATE, duration=SCALING_DURATION),
        UniformMentionSampler(pools),
        seed=SEED,
        name="scaling_burst",
    )


@pytest.fixture(scope="module")
def cluster_results():
    pipeline, pools = _build_stack()

    # --- scaling curve: one burst, 1 / 2 / 4 workers --------------------
    burst = _scaling_workload(pools)
    scaling = {}
    with LinkingService(pipeline, max_batch_size=BATCH_SIZE,
                        max_wait_ms=MAX_WAIT_MS) as service:
        scaling[1] = LoadHarness(service).run(burst).throughput
    for replicas in (2, REPLICAS):
        pool = ReplicaPool.from_pipeline(
            pipeline, replicas=replicas,
            max_batch_size=BATCH_SIZE, max_wait_ms=MAX_WAIT_MS,
        )
        with Router(pool, seed=SEED, affinity=False) as router:
            scaling[replicas] = LoadHarness(router).run(burst).throughput

    # --- degraded-replica scenarios ------------------------------------
    catalogue = cluster_scenario_catalogue(
        pools, replicas=REPLICAS, seed=SEED, duration=DURATION, rate=RATE
    )
    results = []
    snapshots = {}
    for name, scenario in catalogue.items():
        pool = ReplicaPool.from_pipeline(
            pipeline, replicas=REPLICAS,
            max_batch_size=BATCH_SIZE, max_wait_ms=MAX_WAIT_MS,
        )
        with Router(pool, seed=SEED, affinity=False) as router:
            supervisor = None
            if scenario.supervised:
                controller = (BrownoutController(BROWNOUT_POLICY)
                              if scenario.brownout else None)
                supervisor = Supervisor(router, policy=REPAIR_POLICY,
                                        interval=SUPERVISOR_INTERVAL,
                                        brownout=controller)
            try:
                harness = LoadHarness(router)
                result = harness.run(scenario.workload,
                                     fault_plan=scenario.fault_plan)
                if scenario.brownout:
                    # The backlog is drained; give the controller its exit
                    # hysteresis so the snapshot shows a closed spell.
                    _wait_until(lambda: not router.degraded)
            finally:
                if supervisor is not None:
                    supervisor.close()
            snapshots[name] = router.stats.snapshot()
        spec = SCENARIO_SLOS.get(name) or (
            HEALTHY_SLO if scenario.fault_plan is None else DEGRADED_SLO
        )
        attach_slo(result, spec.evaluate(result))
        results.append(result)
    return results, snapshots, scaling


def _payload(results, snapshots, scaling):
    config = {
        "duration": DURATION, "rate": RATE, "seed": SEED, "k": K,
        "replicas": REPLICAS, "cpus": CPUS, "batch_size": BATCH_SIZE,
        "max_wait_ms": MAX_WAIT_MS, "scaling_rate": SCALING_RATE,
        "scaling_duration": SCALING_DURATION,
        "entities_per_domain": 24, "mentions_per_domain": 120,
    }
    payload = results_payload(results, config=config)
    for name, snapshot in snapshots.items():
        payload["scenarios"][name]["cluster"] = snapshot["router"]
        payload["scenarios"][name]["resilience"] = snapshot["resilience"]
    payload["scaling"] = {
        "replicas": sorted(scaling),
        "throughput": {str(n): scaling[n] for n in sorted(scaling)},
        "speedup_vs_single": {
            str(n): scaling[n] / scaling[1] for n in sorted(scaling) if n != 1
        },
    }
    return payload


def test_cluster_scenarios_degrade_gracefully(cluster_results):
    results, snapshots, scaling = cluster_results
    assert len(results) == 6
    print()
    print(render_markdown(results, title="Cluster scenario lab"))

    payload = _payload(results, snapshots, scaling)
    BENCH_OUTPUT.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"  wrote {BENCH_OUTPUT.name}")

    for result in results:
        # Zero lost requests under every fault: all offered traffic
        # completes, nothing errors, nothing is shed (no admission policy
        # here, so a rejection would be a router bug).
        assert result.requests > 0
        assert result.completed == result.requests
        assert result.errors == 0 and result.timeouts == 0
        assert result.rejected == 0
        # ... and each scenario holds its (degraded) SLO.
        assert result.slo is not None
        assert result.slo["passed"], (
            f"{result.scenario} violated its SLO: "
            f"{[c for c in result.slo['checks'] if not c['passed']]}"
        )

    by_name = {result.scenario: result for result in results}
    assert by_name["cluster_steady"].faults is None
    for name in ("kill_replica", "slow_replica", "freeze_thaw",
                 "crash_loop_recovery", "brownout_overload"):
        faults = by_name[name].faults
        assert faults, f"{name} recorded no fault events"
        assert all("applied_at" in event for event in faults), faults

    # The kill actually happened and the router bookkeeping saw it.
    kill = snapshots["kill_replica"]["router"]
    assert kill["deaths"] == 1
    assert kill["errors"] == 0
    assert kill["requeued"] >= 0
    assert snapshots["cluster_steady"]["router"]["deaths"] == 0

    # Self-healing: the supervisor repaired every scripted kill with no
    # manual restart, and the MTTR/availability payload records it.
    crash = by_name["crash_loop_recovery"]
    assert crash.restarts >= 3
    assert crash.mttr_seconds and max(crash.mttr_seconds) < 5.0
    assert crash.availability is not None and 0.5 < crash.availability <= 1.0
    assert snapshots["crash_loop_recovery"]["resilience"]["restarts"] >= 3
    assert snapshots["crash_loop_recovery"]["resilience"]["quarantined"] == []

    # Brownout: the controller engaged under pressure, a real slice of the
    # traffic was served degraded, and full quality was restored after.
    brownout = by_name["brownout_overload"]
    assert brownout.degraded > 0, "brownout never shed quality"
    assert 0.0 < brownout.degraded_fraction < 1.0
    resilience = snapshots["brownout_overload"]["resilience"]
    assert resilience["brownout_engagements"] >= 1
    assert resilience["degraded_seconds"] > 0.0
    assert not resilience["degraded_active"]


def test_four_replica_scaling_curve(cluster_results):
    _, _, scaling = cluster_results
    assert set(scaling) == {1, 2, REPLICAS}
    assert all(value > 0 for value in scaling.values())
    speedup = scaling[REPLICAS] / scaling[1]
    print(f"\n  scaling: {[f'{n}x{scaling[n]:.1f}' for n in sorted(scaling)]} "
          f"(4-vs-1 speedup {speedup:.2f}, {CPUS} cpus)")
    if CPUS >= REPLICAS:
        # Real cores behind the replicas: the pool must deliver.
        assert speedup >= 2.5, f"4-replica speedup {speedup:.2f} < 2.5"
        assert scaling[2] / scaling[1] >= 1.3
    else:
        # Fewer cores than replicas (shared CI runner): threads cannot buy
        # parallelism, so only require that pool overhead does not collapse
        # throughput.  The payload records the CPU count so committed
        # baselines are judged on comparable hardware.
        assert speedup >= 0.5, f"pool overhead collapsed throughput ({speedup:.2f})"


def test_regression_gate_on_fresh_cluster_payload(cluster_results):
    """The run passes its own gate; a degraded copy fails it."""
    results, snapshots, scaling = cluster_results
    payload = _payload(results, snapshots, scaling)
    self_report = compare(payload, payload, rtol=0.1, atol=0.05)
    assert self_report.passed, self_report.summary()

    degraded = json.loads(json.dumps(payload))
    for scenario in degraded["scenarios"].values():
        scenario["throughput"] /= 3.0
        for key in ("p50", "p90", "p99", "mean", "max"):
            scenario["latency_ms"][key] *= 3.0
        # The resilience outcomes are gated too: a pool that recovers
        # slower or is down longer must trip the gate.
        if "availability" in scenario:
            scenario["availability"] *= 0.4
        if "mttr_max_seconds" in scenario:
            scenario["mttr_max_seconds"] = scenario["mttr_max_seconds"] * 10 + 1.0
    for name in degraded["scaling"]["throughput"]:
        degraded["scaling"]["throughput"][name] /= 3.0
    gate = compare(degraded, payload, rtol=0.25, atol=0.05)
    assert not gate.passed
    # Throughput and latency regress per scenario, plus the scaling curve.
    assert len(gate.regressions) >= 2 * len(results) + len(scaling)
    regressed = {check.metric for check in gate.regressions}
    assert any("availability" in metric for metric in regressed)
    assert any("mttr_max_seconds" in metric for metric in regressed)
    print()
    print(gate.summary())
