"""Figure 4: meta-learning separates normal from corrupted synthetic data."""

from .conftest import run_once
from repro.eval import format_table


def test_figure4_noise_selection(benchmark, suite):
    result = run_once(benchmark, suite.run_figure4_selection, domain="yugioh", noise_fraction=0.5)
    print()
    print(format_table([result], title="Figure 4 — selection ratio by data source"))
    # The paper reports ~50% of normal data selected vs ~20% of corrupted
    # data; at this scale we only require the ordering to hold.
    assert result["bad_selected_ratio"] <= result["normal_selected_ratio"] + 1e-9
