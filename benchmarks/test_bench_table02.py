"""Table II: qualitative errors of the exact-match-trained model."""

from .conftest import run_once
from repro.eval import format_table


def test_table2_exact_match_errors(benchmark, suite):
    rows = run_once(benchmark, suite.run_table2_examples, domain="yugioh", max_rows=3)
    print()
    print(format_table(rows, title="Table II — errors made by the exact-match model"))
    # The runner only emits rows where syn is right and exact match is wrong,
    # so every returned row is a qualitative error example.
    for row in rows:
        assert row["exact_match_prediction"] != row["gold_entity"]
        assert row["syn_prediction"] == row["gold_entity"]
