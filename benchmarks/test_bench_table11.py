"""Table XI: ROUGE-1 of generated mentions vs golden mentions."""

from .conftest import run_once
from repro.eval import format_table


def test_table11_rouge(benchmark, suite):
    rows = run_once(benchmark, suite.run_table11_rouge, domains=["lego", "yugioh"], sample_size=40)
    print()
    print(format_table(rows, title="Table XI — ROUGE-1 F1 vs golden mentions"))
    assert len(rows) == 2
    for row in rows:
        # Rewritten mentions should be closer to the natural mention
        # distribution than raw titles (the paper's Table XI shape).
        assert row["syn"] >= row["exact_match"]
