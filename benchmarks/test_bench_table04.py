"""Table IV: few-shot split sizes for the four test domains."""

from .conftest import run_once
from repro.eval import format_table


def test_table4_few_shot_splits(benchmark, suite):
    rows = run_once(benchmark, suite.run_table4_splits)
    print()
    print(format_table(rows, title="Table IV — few-shot splits"))
    assert len(rows) == 4
    for row in rows:
        assert row["train"] == suite.config.seed_size
        assert row["dev"] == suite.config.dev_size
        assert row["test"] > 0
