"""Declarative service-level objectives for load scenarios.

An :class:`SLOSpec` states what "good" means for one scenario — latency
bounds, a throughput floor, an accuracy floor, an error-rate ceiling — and
:meth:`SLOSpec.evaluate` turns a measured
:class:`~repro.bench.harness.ScenarioResult` into an :class:`SLOReport` of
per-criterion pass/fail verdicts.  Unset bounds are simply not checked, so
one spec file can mix tight latency gates with accuracy-only scenarios.

Specs serialise to/from plain JSON (``{"name": ..., "max_p99_ms": ...}``;
a file may hold one spec object or a ``{scenario: spec}`` mapping), which
is what ``scripts/run_loadtest.py --slo`` loads.

Example::

    spec = SLOSpec(name="steady", max_p99_ms=250.0, min_throughput=100.0)
    report = spec.evaluate(result)
    report.passed, [c.metric for c in report.failures()]
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .harness import ScenarioResult


@dataclass(frozen=True)
class SLOCheck:
    """One evaluated criterion: ``observed <comparison> bound``."""

    metric: str
    comparison: str  # "<=" or ">="
    bound: float
    observed: float
    passed: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "comparison": self.comparison,
            "bound": self.bound,
            "observed": round(self.observed, 6),
            "passed": self.passed,
        }


@dataclass(frozen=True)
class SLOReport:
    """All checks of one spec against one scenario result."""

    spec_name: str
    checks: Tuple[SLOCheck, ...]

    @property
    def passed(self) -> bool:
        """True when every configured criterion held (vacuously if none)."""
        return all(check.passed for check in self.checks)

    @property
    def verdict(self) -> str:
        return "pass" if self.passed else "fail"

    def failures(self) -> Tuple[SLOCheck, ...]:
        return tuple(check for check in self.checks if not check.passed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec_name,
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }


@dataclass(frozen=True)
class SLOSpec:
    """Bounds a scenario must meet; ``None`` disables a criterion.

    Latency bounds are milliseconds over completed requests; throughput is
    completed requests per wall-clock second; accuracy is the overall
    correct fraction; the error rate counts both pipeline errors and
    harness timeouts against all submitted requests.  The reject rate
    bounds cluster admission-control sheds separately — a degraded-replica
    scenario can tolerate some shedding (that *is* graceful degradation)
    while still failing on real errors.

    The resilience bounds police the self-healing layer:
    ``max_mttr_seconds`` caps the *worst* supervisor recovery (detect →
    fresh replica standing; vacuously ``0.0`` when nothing died);
    ``min_availability`` floors the mean healthy-replica fraction sampled
    over the run (an unsampled bare service counts as ``1.0``);
    ``max_degraded_fraction`` caps how much of the answer volume the
    brownout controller was allowed to serve at reduced quality.
    """

    name: str = "default"
    max_p50_ms: Optional[float] = None
    max_p99_ms: Optional[float] = None
    min_throughput: Optional[float] = None
    min_accuracy: Optional[float] = None
    max_error_rate: Optional[float] = None
    max_reject_rate: Optional[float] = None
    max_mttr_seconds: Optional[float] = None
    min_availability: Optional[float] = None
    max_degraded_fraction: Optional[float] = None

    def evaluate(self, result: ScenarioResult) -> SLOReport:
        checks = []
        if self.max_p50_ms is not None:
            observed = result.latency_ms["p50"]
            checks.append(SLOCheck(
                "latency_p50_ms", "<=", self.max_p50_ms, observed,
                observed <= self.max_p50_ms,
            ))
        if self.max_p99_ms is not None:
            observed = result.latency_ms["p99"]
            checks.append(SLOCheck(
                "latency_p99_ms", "<=", self.max_p99_ms, observed,
                observed <= self.max_p99_ms,
            ))
        if self.min_throughput is not None:
            checks.append(SLOCheck(
                "throughput", ">=", self.min_throughput, result.throughput,
                result.throughput >= self.min_throughput,
            ))
        if self.min_accuracy is not None:
            observed = float(result.accuracy["overall"])
            checks.append(SLOCheck(
                "accuracy", ">=", self.min_accuracy, observed,
                observed >= self.min_accuracy,
            ))
        if self.max_error_rate is not None:
            checks.append(SLOCheck(
                "error_rate", "<=", self.max_error_rate, result.error_rate,
                result.error_rate <= self.max_error_rate,
            ))
        if self.max_reject_rate is not None:
            checks.append(SLOCheck(
                "reject_rate", "<=", self.max_reject_rate, result.reject_rate,
                result.reject_rate <= self.max_reject_rate,
            ))
        if self.max_mttr_seconds is not None:
            observed = max(result.mttr_seconds) if result.mttr_seconds else 0.0
            checks.append(SLOCheck(
                "mttr_max_seconds", "<=", self.max_mttr_seconds, observed,
                observed <= self.max_mttr_seconds,
            ))
        if self.min_availability is not None:
            observed = 1.0 if result.availability is None else result.availability
            checks.append(SLOCheck(
                "availability", ">=", self.min_availability, observed,
                observed >= self.min_availability,
            ))
        if self.max_degraded_fraction is not None:
            observed = result.degraded_fraction
            checks.append(SLOCheck(
                "degraded_fraction", "<=", self.max_degraded_fraction, observed,
                observed <= self.max_degraded_fraction,
            ))
        return SLOReport(spec_name=self.name, checks=tuple(checks))

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {k: v for k, v in asdict(self).items() if v is not None}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SLOSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py3.8 compat
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown SLO field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**payload)  # type: ignore[arg-type]


def load_slo_file(path: Union[str, Path]) -> Dict[str, SLOSpec]:
    """Load one spec or a ``{scenario: spec}`` mapping from a JSON file.

    A single spec object applies to every scenario under the key ``"*"``.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise ValueError("SLO file must hold a JSON object")
    if any(isinstance(value, dict) for value in payload.values()):
        specs = {}
        for scenario, spec_payload in payload.items():
            spec_payload = dict(spec_payload)
            spec_payload.setdefault("name", scenario)
            specs[scenario] = SLOSpec.from_dict(spec_payload)
        return specs
    return {"*": SLOSpec.from_dict(payload)}
