"""Seeded, deterministic workload generation for the serving load lab.

A workload is the composition of an **arrival process** (when requests hit
the service) and a **mention sampler** (what each request asks for).  Both
draw from one :class:`numpy.random.Generator` seeded by the owning
:class:`Workload`, so the same seed always yields the *byte-identical*
arrival schedule and mention order — load scenarios are replayable and the
regression gate compares like with like.

Arrival processes
-----------------
* :class:`PoissonArrivals` — open-loop steady traffic at ``rate`` req/s.
* :class:`BurstyArrivals` — on/off modulated Poisson (burst/idle phases).
* :class:`RampArrivals` — linearly increasing rate (capacity probing),
  sampled exactly via inversion of the cumulative rate function.
* :class:`ClosedLoopArrivals` — ``num_clients`` synchronous clients, each
  submitting its next request as soon as the previous one completes (no
  precomputed offsets; the harness paces the loop).

Mention samplers
----------------
* :class:`UniformMentionSampler` — world uniform, then mention uniform.
* :class:`ZipfMentionSampler` — Zipfian skew across worlds and across the
  mentions inside each world (hot-world / hot-entity traffic).
* :class:`TraceReplaySampler` — replay a recorded mention sequence, cycling
  when the schedule is longer than the trace.

Example::

    workload = Workload(
        arrivals=PoissonArrivals(rate=200.0, duration=2.0),
        sampler=ZipfMentionSampler(mentions_by_world, world_exponent=1.2),
        seed=13,
    )
    schedule = workload.schedule()     # same seed => identical schedule
    schedule.offsets, schedule.mentions, schedule.signature()
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..kb.entity import Mention

#: Schedule kinds: open-loop schedules carry absolute arrival offsets, the
#: closed-loop kind is paced by request completions instead.
OPEN_LOOP = "open"
CLOSED_LOOP = "closed"


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class Schedule:
    """A materialised workload: one arrival offset + mention per request.

    ``offsets`` are seconds from the scenario start, non-decreasing.  For
    the closed-loop kind the offsets are all zero — arrival times emerge
    from the completion-paced client loop, only the mention *order* is part
    of the schedule.

    Equality is object identity (``eq=False`` — a generated ``__eq__``
    would choke on the ndarray field); compare schedules for content
    identity via :meth:`signature`.
    """

    kind: str
    offsets: np.ndarray
    mentions: Tuple[Mention, ...]
    num_clients: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (OPEN_LOOP, CLOSED_LOOP):
            raise ValueError(f"unknown schedule kind {self.kind!r}")
        if len(self.offsets) != len(self.mentions):
            raise ValueError("offsets and mentions must align one-to-one")

    def __len__(self) -> int:
        return len(self.mentions)

    @property
    def duration(self) -> float:
        """Offset of the last arrival (0.0 for an empty schedule)."""
        return float(self.offsets[-1]) if len(self.offsets) else 0.0

    def signature(self) -> str:
        """SHA-256 over the exact offset bytes and the mention-id sequence.

        Two schedules with equal signatures are byte-identical — the
        determinism property tests assert this across generator instances.
        """
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.offsets, dtype=np.float64).tobytes())
        for mention in self.mentions:
            digest.update(mention.mention_id.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
class ArrivalProcess:
    """Interface: produce sorted arrival offsets from a seeded generator."""

    kind: str = OPEN_LOOP
    num_clients: int = 0

    def offsets(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


def _homogeneous_poisson(
    rng: np.random.Generator, rate: float, start: float, duration: float
) -> np.ndarray:
    """Exact Poisson arrivals on ``[start, start + duration)``.

    Conditioned on the count ``N ~ Poisson(rate * duration)``, arrival times
    are N sorted uniforms — equivalent to summed exponential gaps but fully
    vectorized.
    """
    count = int(rng.poisson(rate * duration))
    return start + np.sort(rng.uniform(0.0, duration, size=count))


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Open-loop steady traffic: Poisson process at ``rate`` requests/s."""

    rate: float
    duration: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def offsets(self, rng: np.random.Generator) -> np.ndarray:
        return _homogeneous_poisson(rng, self.rate, 0.0, self.duration)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off traffic: alternating burst/idle phases of Poisson arrivals.

    The process starts in a burst phase; phases alternate until ``duration``
    is covered (the final phase is truncated).  ``idle_rate`` may be 0 for
    fully silent gaps.
    """

    burst_rate: float
    idle_rate: float
    burst_seconds: float
    idle_seconds: float
    duration: float

    def __post_init__(self) -> None:
        if self.burst_rate <= 0:
            raise ValueError("burst_rate must be positive")
        if self.idle_rate < 0:
            raise ValueError("idle_rate must be non-negative")
        if self.burst_seconds <= 0 or self.idle_seconds <= 0:
            raise ValueError("phase lengths must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def offsets(self, rng: np.random.Generator) -> np.ndarray:
        pieces: List[np.ndarray] = []
        start, bursting = 0.0, True
        while start < self.duration:
            length = self.burst_seconds if bursting else self.idle_seconds
            length = min(length, self.duration - start)
            rate = self.burst_rate if bursting else self.idle_rate
            if rate > 0:
                pieces.append(_homogeneous_poisson(rng, rate, start, length))
            start += length
            bursting = not bursting
        if not pieces:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(pieces)


@dataclass(frozen=True)
class RampArrivals(ArrivalProcess):
    """Linearly ramping rate from ``start_rate`` to ``end_rate`` req/s.

    An inhomogeneous Poisson process sampled exactly by inversion: unit-rate
    arrivals are drawn on the cumulative-rate axis ``L(t) = a*t + (b-a)*t^2
    / (2*duration)`` and mapped back through ``L^{-1}`` (a quadratic), so no
    thinning/rejection is needed and the draw count is exact.
    """

    start_rate: float
    end_rate: float
    duration: float

    def __post_init__(self) -> None:
        if self.start_rate < 0 or self.end_rate < 0:
            raise ValueError("rates must be non-negative")
        if self.start_rate == 0 and self.end_rate == 0:
            raise ValueError("at least one of start_rate/end_rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def offsets(self, rng: np.random.Generator) -> np.ndarray:
        a, b, d = self.start_rate, self.end_rate, self.duration
        total = (a + b) * d / 2.0  # L(duration)
        count = int(rng.poisson(total))
        targets = np.sort(rng.uniform(0.0, total, size=count))
        if a == b:
            return targets / a
        # Solve (b-a)/(2d) * t^2 + a*t - target = 0 for t (positive root).
        slope = (b - a) / d
        return (np.sqrt(a * a + 2.0 * slope * targets) - a) / slope


@dataclass(frozen=True)
class ClosedLoopArrivals(ArrivalProcess):
    """``num_clients`` synchronous clients issuing ``num_requests`` total.

    There is no precomputed timetable: each client submits its next request
    the moment the previous one completes, so the offered load self-adjusts
    to service capacity (the classic closed-loop saturation probe).
    """

    num_clients: int = 8
    num_requests: int = 256
    kind: str = field(default=CLOSED_LOOP, init=False)

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ValueError("num_clients must be positive")
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")

    def offsets(self, rng: np.random.Generator) -> np.ndarray:
        return np.zeros(self.num_requests, dtype=np.float64)


# ----------------------------------------------------------------------
# Mention samplers
# ----------------------------------------------------------------------
class MentionSampler:
    """Interface: draw ``count`` mentions from a seeded generator."""

    def sample(self, rng: np.random.Generator, count: int) -> List[Mention]:
        raise NotImplementedError


def _validate_pools(mentions_by_world: Mapping[str, Sequence[Mention]]) -> Dict[str, Tuple[Mention, ...]]:
    pools = {world: tuple(pool) for world, pool in mentions_by_world.items()}
    if not pools:
        raise ValueError("mentions_by_world must not be empty")
    for world, pool in pools.items():
        if not pool:
            raise ValueError(f"world {world!r} has an empty mention pool")
    return pools


class UniformMentionSampler(MentionSampler):
    """Uniform over worlds, then uniform over that world's mentions."""

    def __init__(self, mentions_by_world: Mapping[str, Sequence[Mention]]) -> None:
        self._pools = _validate_pools(mentions_by_world)
        self._worlds = list(self._pools)

    def sample(self, rng: np.random.Generator, count: int) -> List[Mention]:
        world_picks = rng.integers(0, len(self._worlds), size=count)
        out: List[Mention] = []
        for world_index in world_picks:
            pool = self._pools[self._worlds[int(world_index)]]
            out.append(pool[int(rng.integers(0, len(pool)))])
        return out


class ZipfMentionSampler(MentionSampler):
    """Zipf-skewed traffic across worlds and across mentions within a world.

    World ``i`` (0-based, in mapping order) is drawn with probability
    proportional to ``(i + 1) ** -world_exponent``; the mention inside the
    chosen world follows the same law with ``entity_exponent``.  The first
    world/mention is the hot one — order your mapping accordingly, or use
    :meth:`world_probabilities` to inspect the skew.
    """

    def __init__(
        self,
        mentions_by_world: Mapping[str, Sequence[Mention]],
        world_exponent: float = 1.1,
        entity_exponent: float = 1.1,
    ) -> None:
        if world_exponent <= 0 or entity_exponent <= 0:
            raise ValueError("Zipf exponents must be positive")
        self._pools = _validate_pools(mentions_by_world)
        self._worlds = list(self._pools)
        self.world_exponent = world_exponent
        self.entity_exponent = entity_exponent
        self._world_probs = self._zipf_probs(len(self._worlds), world_exponent)
        self._mention_probs = {
            world: self._zipf_probs(len(pool), entity_exponent)
            for world, pool in self._pools.items()
        }

    @staticmethod
    def _zipf_probs(n: int, exponent: float) -> np.ndarray:
        weights = np.arange(1, n + 1, dtype=np.float64) ** -exponent
        return weights / weights.sum()

    def world_probabilities(self) -> Dict[str, float]:
        """The exact world-selection distribution (rank order of the mapping)."""
        return {world: float(p) for world, p in zip(self._worlds, self._world_probs)}

    def sample(self, rng: np.random.Generator, count: int) -> List[Mention]:
        world_picks = rng.choice(len(self._worlds), size=count, p=self._world_probs)
        out: List[Mention] = []
        for world_index in world_picks:
            world = self._worlds[int(world_index)]
            pool = self._pools[world]
            pick = rng.choice(len(pool), p=self._mention_probs[world])
            out.append(pool[int(pick)])
        return out


class TraceReplaySampler(MentionSampler):
    """Replay a recorded mention sequence, cycling past the end.

    Deterministic by construction (no randomness consumed), so a trace
    replay composed with a seeded arrival process still yields an identical
    schedule per seed.
    """

    def __init__(self, trace: Sequence[Mention]) -> None:
        self._trace = tuple(trace)
        if not self._trace:
            raise ValueError("trace must not be empty")

    def sample(self, rng: np.random.Generator, count: int) -> List[Mention]:
        return [self._trace[i % len(self._trace)] for i in range(count)]


# ----------------------------------------------------------------------
# Workload = arrivals + sampler + seed
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Workload:
    """A replayable load scenario: arrival process × mention sampler × seed.

    :meth:`schedule` creates a fresh ``numpy`` generator from ``seed`` on
    every call, so repeated materialisations — including from a different
    ``Workload`` instance with equal fields — are byte-identical.
    """

    arrivals: ArrivalProcess
    sampler: MentionSampler
    seed: int
    name: str = ""

    def schedule(self) -> Schedule:
        rng = np.random.default_rng(self.seed)
        offsets = np.asarray(self.arrivals.offsets(rng), dtype=np.float64)
        mentions = tuple(self.sampler.sample(rng, len(offsets)))
        return Schedule(
            kind=self.arrivals.kind,
            offsets=offsets,
            mentions=mentions,
            num_clients=self.arrivals.num_clients,
        )


def mentions_by_world(mentions: Sequence[Mention]) -> Dict[str, List[Mention]]:
    """Group a mention sequence into per-world pools (insertion-ordered)."""
    pools: Dict[str, List[Mention]] = {}
    for mention in mentions:
        pools.setdefault(mention.domain, []).append(mention)
    return pools


def scenario_catalogue(
    pools: Mapping[str, Sequence[Mention]],
    seed: int = 13,
    duration: float = 2.0,
    rate: float = 150.0,
    num_clients: int = 8,
    zipf_exponent: float = 1.3,
) -> Dict[str, Workload]:
    """The standard scenario set used by the benchmark and the CLI.

    * ``steady_poisson`` — constant open-loop traffic at ``rate`` req/s.
    * ``burst`` — 4:1 on/off phases, bursts at 4x ``rate`` over a trickle.
    * ``ramp`` — linear ramp from ``rate/4`` to ``2*rate`` (capacity probe).
    * ``zipf_worlds`` — steady traffic with Zipf-skewed world/entity mix.
    * ``closed_loop`` — ``num_clients`` synchronous clients, completion-paced.
    """
    uniform = UniformMentionSampler(pools)
    zipf = ZipfMentionSampler(pools, world_exponent=zipf_exponent,
                              entity_exponent=zipf_exponent)
    phase = max(duration / 8.0, 1e-3)
    return {
        "steady_poisson": Workload(
            PoissonArrivals(rate=rate, duration=duration), uniform, seed,
            name="steady_poisson",
        ),
        "burst": Workload(
            BurstyArrivals(
                burst_rate=4.0 * rate, idle_rate=rate / 8.0,
                burst_seconds=phase, idle_seconds=phase, duration=duration,
            ),
            uniform, seed, name="burst",
        ),
        "ramp": Workload(
            RampArrivals(start_rate=rate / 4.0, end_rate=2.0 * rate,
                         duration=duration),
            uniform, seed, name="ramp",
        ),
        "zipf_worlds": Workload(
            PoissonArrivals(rate=rate, duration=duration), zipf, seed,
            name="zipf_worlds",
        ),
        "closed_loop": Workload(
            ClosedLoopArrivals(
                num_clients=num_clients,
                num_requests=max(int(rate * duration), num_clients),
            ),
            uniform, seed, name="closed_loop",
        ),
    }


# ----------------------------------------------------------------------
# Cluster (degraded-replica) scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterScenario:
    """One cluster load scenario: a workload plus an optional fault script.

    The workload is deterministic as usual; the
    :class:`~repro.serving.cluster.FaultPlan` describes the replica
    injuries the harness injects while the workload runs.  ``description``
    states what graceful degradation means for the scenario — the SLO that
    should *still* pass with the fault active.

    ``supervised`` marks scenarios that must run with a
    :class:`~repro.serving.resilience.Supervisor` attached (the faults are
    only survivable if something auto-restarts the dead replicas);
    ``brownout`` marks scenarios that additionally need the supervisor's
    :class:`~repro.serving.resilience.BrownoutController` so degraded mode
    can engage under pressure.
    """

    name: str
    workload: Workload
    fault_plan: Optional["FaultPlan"] = None
    description: str = ""
    supervised: bool = False
    brownout: bool = False


def cluster_scenario_catalogue(
    pools: Mapping[str, Sequence[Mention]],
    replicas: int = 4,
    seed: int = 13,
    duration: float = 2.0,
    rate: float = 150.0,
) -> Dict[str, ClusterScenario]:
    """Degraded-replica scenarios for a ``replicas``-wide pool.

    * ``cluster_steady`` — the healthy baseline: steady Poisson traffic, no
      faults (the reference the degraded runs are judged against).
    * ``kill_replica`` — replica ``replicas - 1`` is killed 40% into the
      run; its queued and in-flight requests must be requeued, none lost.
    * ``slow_replica`` — replica 0 gains a per-batch delay 20% in; the
      router's least-pending balancing should route around it.
    * ``freeze_thaw`` — replica 0 freezes for the middle third of the run,
      then thaws; its backlog must drain without timeouts.
    * ``crash_loop_recovery`` — the same replica is killed at 25%, 50% and
      75% of the run with *no* scripted restarts: only a running
      :class:`~repro.serving.resilience.Supervisor` can bring it back, so
      the scenario proves auto-repair (zero lost requests, bounded MTTR).
    * ``brownout_overload`` — sustained traffic at 4x ``rate`` while every
      replica gains a per-batch drag; the queue pressure is the injury.
      Passes its SLO only because the brownout controller sheds answer
      quality (degraded pipeline) instead of violating the latency bound.

    Fault times scale with ``duration`` so shorter smoke runs exercise the
    same phases.  All scenarios share one ``seed`` — the arrival schedule
    under a fault is byte-identical to the healthy baseline's, so any
    difference in the measurements is the fault, not the traffic.
    """
    from ..serving.cluster import FaultEvent, FaultPlan  # late: avoid import cycle

    if replicas <= 1:
        raise ValueError("cluster scenarios need at least 2 replicas")
    uniform = UniformMentionSampler(pools)

    def steady(name: str) -> Workload:
        return Workload(
            PoissonArrivals(rate=rate, duration=duration), uniform, seed,
            name=name,
        )

    return {
        "cluster_steady": ClusterScenario(
            name="cluster_steady",
            workload=steady("cluster_steady"),
            description="healthy pool baseline; full SLO must pass",
        ),
        "kill_replica": ClusterScenario(
            name="kill_replica",
            workload=steady("kill_replica"),
            fault_plan=FaultPlan.kill(at=duration * 0.4, replica=replicas - 1),
            description=(
                "one replica dies mid-run; in-flight requests requeue, "
                "zero lost, degraded latency allowed"
            ),
        ),
        "slow_replica": ClusterScenario(
            name="slow_replica",
            workload=steady("slow_replica"),
            fault_plan=FaultPlan.slow(
                at=duration * 0.2, replica=0, delay=0.05
            ),
            description=(
                "one replica turns slow; balancing routes new traffic to "
                "the healthy replicas"
            ),
        ),
        "freeze_thaw": ClusterScenario(
            name="freeze_thaw",
            workload=steady("freeze_thaw"),
            fault_plan=FaultPlan.freeze_thaw(
                freeze_at=duration / 3.0, thaw_at=2.0 * duration / 3.0,
                replica=0,
            ),
            description=(
                "one replica stalls for the middle third, then recovers; "
                "its backlog must drain without timeouts"
            ),
        ),
        "crash_loop_recovery": ClusterScenario(
            name="crash_loop_recovery",
            workload=steady("crash_loop_recovery"),
            fault_plan=FaultPlan(tuple(
                FaultEvent(
                    at=duration * fraction, action="kill",
                    replica=replicas - 1,
                )
                for fraction in (0.25, 0.5, 0.75)
            )),
            supervised=True,
            description=(
                "the same replica is killed three times with no scripted "
                "restarts; the supervisor alone recovers each kill — zero "
                "lost requests, bounded MTTR"
            ),
        ),
        "brownout_overload": ClusterScenario(
            name="brownout_overload",
            workload=Workload(
                PoissonArrivals(rate=4.0 * rate, duration=duration),
                uniform, seed, name="brownout_overload",
            ),
            # Every replica gains a per-batch drag early on: 4x arrivals
            # alone cannot saturate a fast machine, so the slowdown is what
            # guarantees sustained queue pressure on any hardware — the
            # brownout controller, not headroom, has to absorb it.
            fault_plan=FaultPlan(tuple(
                FaultEvent(at=duration * 0.05, action="slow", replica=slot,
                           value=0.25)
                for slot in range(replicas)
            )),
            supervised=True,
            brownout=True,
            description=(
                "sustained 4x overload while every replica drags; degraded "
                "mode sheds answer quality so the backlog drains and the "
                "SLO still holds"
            ),
        ),
    }
