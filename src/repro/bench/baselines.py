"""Tolerance-based regression gating over the ``BENCH_*.json`` payloads.

The repo writes four machine-readable benchmark files — serving, decode,
meta-training and the load lab — but until now nothing ever *compared* a
fresh run against a committed baseline, so perf regressions were invisible
unless a hard-coded speedup assertion happened to trip.  :func:`compare`
closes that loop: it flattens both payloads to dotted metric keys, infers
which direction is "better" for each metric from its name (throughputs up,
latencies down), and fails any metric that moved the wrong way by more than
the relative tolerance ``rtol``.

Config blocks (``config.*``) and structural counters are informational and
never gated; a metric present in the baseline but missing from the current
payload is reported as a regression (a silently dropped measurement must
not pass the gate).

Example::

    baseline = load_bench("BENCH_load.json")
    report = compare(current_payload, baseline, rtol=0.25)
    assert report.passed, report.summary()
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

#: Canonical benchmark files at the repo root, in gate order.
BENCH_FILES = (
    "BENCH_serving.json",
    "BENCH_decode.json",
    "BENCH_meta.json",
    "BENCH_load.json",
    "BENCH_cluster.json",
    "BENCH_lint.json",
    "BENCH_index.json",
)

#: Key substrings marking a metric where *smaller* is better.
LOWER_IS_BETTER = (
    "latency", "_ms", "seconds", "queue_depth", "error", "timeout",
)

#: Key substrings marking a metric where *larger* is better.
HIGHER_IS_BETTER = (
    "per_second", "throughput", "accuracy", "_vs_", "speedup", "completed",
    "availability", "recall", "_qps",
)

#: Key substrings that are never gated: configuration, sample counts, ids,
#: and the per-world accuracy breakdown (tiny per-world counts make a
#: relative tolerance meaningless; the overall accuracy is gated instead).
#: Cluster fault bookkeeping (sheds, requeues, deaths, fault-event records)
#: is also ungated — those counters describe *intentional* behaviour under
#: an injected fault and swing with scheduling noise; the gate polices the
#: outcomes instead (throughput, latency, errors, recovery_seconds).
#: Resilience bookkeeping follows the same rule: per-event MTTR samples,
#: restart/quarantine/expiry/brownout counters are ungated noise — the
#: gated outcomes are ``mttr_max_seconds`` (lower is better, via
#: ``seconds``) and ``availability`` (higher is better).
UNGATED = (
    "config.", ".seed", ".count", ".samples", ".requests", "repeats",
    ".per_world.", ".rejected", "reject_rate", ".shed", ".requeued",
    ".deaths", ".affinity_misses", ".faults[",
    ".mttr_seconds[", "degraded_seconds", ".quarantined", ".expired",
    ".degraded", ".restarts", ".breaker_rejects", "brownout_engagements",
)


def load_bench(path: Union[str, Path]) -> Dict[str, object]:
    """Load one ``BENCH_*.json`` payload."""
    return json.loads(Path(path).read_text())


def load_all_baselines(root: Union[str, Path] = ".") -> Dict[str, Dict[str, object]]:
    """All committed benchmark payloads under ``root`` keyed by file name.

    Missing files are skipped — a fresh checkout gates only what exists.
    """
    root = Path(root)
    found = {}
    for name in BENCH_FILES:
        path = root / name
        if path.exists():
            found[name] = load_bench(path)
    return found


def flatten_metrics(payload: Mapping[str, object], prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested payload as ``dotted.key -> float``.

    Booleans (SLO verdicts) and strings are skipped; lists are indexed.
    """
    flat: Dict[str, float] = {}
    for key, value in payload.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[dotted] = float(value)
        elif isinstance(value, Mapping):
            flat.update(flatten_metrics(value, prefix=f"{dotted}."))
        elif isinstance(value, (list, tuple)):
            for index, item in enumerate(value):
                if isinstance(item, Mapping):
                    flat.update(flatten_metrics(item, prefix=f"{dotted}[{index}]."))
                elif isinstance(item, (int, float)) and not isinstance(item, bool):
                    flat[f"{dotted}[{index}]"] = float(item)
    return flat


def metric_direction(key: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` / None (ungated) for a dotted metric key."""
    lowered = key.lower()
    if any(token in lowered for token in UNGATED):
        return None
    if any(token in lowered for token in HIGHER_IS_BETTER):
        return "higher"
    if any(token in lowered for token in LOWER_IS_BETTER):
        return "lower"
    return None


@dataclass(frozen=True)
class MetricCheck:
    """One gated metric: current vs baseline under the tolerance."""

    metric: str
    direction: str
    baseline: float
    current: float
    ratio: float  # current / baseline (inf when baseline == 0)
    passed: bool

    def describe(self) -> str:
        arrow = "↑ok" if self.direction == "higher" else "↓ok"
        verdict = "pass" if self.passed else "REGRESSED"
        return (
            f"{self.metric} [{arrow}]: baseline={self.baseline:.4g} "
            f"current={self.current:.4g} ratio={self.ratio:.3f} -> {verdict}"
        )


@dataclass(frozen=True)
class ComparisonReport:
    """Outcome of gating one payload against one baseline."""

    checks: Tuple[MetricCheck, ...]
    missing: Tuple[str, ...]
    rtol: float

    @property
    def regressions(self) -> Tuple[MetricCheck, ...]:
        return tuple(check for check in self.checks if not check.passed)

    @property
    def improvements(self) -> Tuple[MetricCheck, ...]:
        """Gated metrics that moved in the good direction beyond rtol."""
        out = []
        for check in self.checks:
            if check.direction == "higher" and check.ratio > 1.0 + self.rtol:
                out.append(check)
            elif check.direction == "lower" and check.ratio < 1.0 - self.rtol:
                out.append(check)
        return tuple(out)

    @property
    def passed(self) -> bool:
        return not self.regressions and not self.missing

    def summary(self) -> str:
        lines = [
            f"regression gate (rtol={self.rtol}): "
            f"{len(self.checks)} metrics gated, "
            f"{len(self.regressions)} regressed, {len(self.missing)} missing "
            f"-> {'PASS' if self.passed else 'FAIL'}"
        ]
        for check in self.regressions:
            lines.append(f"  {check.describe()}")
        for metric in self.missing:
            lines.append(f"  {metric}: present in baseline, missing from current run")
        return "\n".join(lines)


def compare(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    rtol: float = 0.25,
    atol: float = 0.0,
    directions: Optional[Mapping[str, str]] = None,
) -> ComparisonReport:
    """Gate a fresh benchmark payload against a committed baseline.

    A "higher is better" metric passes when ``current >= baseline * (1 -
    rtol)``; a "lower is better" metric when ``current <= baseline * (1 +
    rtol)``.  ``atol`` adds absolute slack on top: any metric within
    ``atol`` of its baseline passes regardless of the ratio, which keeps
    near-zero baselines (e.g. a 0.003 accuracy) from failing on noise a
    relative tolerance cannot express.  ``directions`` overrides (or adds
    to) the name-based direction inference per dotted key; map a key to
    ``None``/"skip" to exclude it.  Only metrics present in the *baseline*
    are gated — new metrics in the current run pass freely until they are
    committed.
    """
    if rtol < 0:
        raise ValueError("rtol must be non-negative")
    if atol < 0:
        raise ValueError("atol must be non-negative")
    current_flat = flatten_metrics(current)
    baseline_flat = flatten_metrics(baseline)

    checks: List[MetricCheck] = []
    missing: List[str] = []
    for key, base_value in sorted(baseline_flat.items()):
        if directions is not None and key in directions:
            direction = directions[key]
            if direction in (None, "skip"):
                continue
            if direction not in ("higher", "lower"):
                raise ValueError(
                    f"direction for {key!r} must be 'higher', 'lower' or 'skip'"
                )
        else:
            direction = metric_direction(key)
        if direction is None:
            continue
        if key not in current_flat:
            missing.append(key)
            continue
        value = current_flat[key]
        within_atol = abs(value - base_value) <= atol
        if base_value == 0.0:
            # Nothing to scale a tolerance against: a zero baseline (e.g. an
            # error count) passes only while the current value is also
            # "no worse", i.e. <= 0 for lower-is-better metrics.
            passed = value >= 0.0 if direction == "higher" else within_atol or value <= 0.0
            ratio = float("inf") if value else 1.0
        elif direction == "higher":
            ratio = value / base_value
            passed = within_atol or ratio >= 1.0 - rtol
        else:
            ratio = value / base_value
            passed = within_atol or ratio <= 1.0 + rtol
        checks.append(MetricCheck(
            metric=key, direction=direction, baseline=base_value,
            current=value, ratio=ratio, passed=passed,
        ))
    return ComparisonReport(checks=tuple(checks), missing=tuple(missing), rtol=rtol)
