"""Scenario reporting: the ``BENCH_load.json`` payload and Markdown views.

The JSON payload mirrors the other ``BENCH_*.json`` files at the repo root
(a ``benchmark`` tag, a ``config`` block, then the measured numbers) so the
:mod:`~repro.bench.baselines` regression gate can treat all four uniformly.
The Markdown report is the human view: one summary table across scenarios,
then per-scenario SLO verdict tables.

Example::

    payload = results_payload(results, config={"rate": 150.0})
    Path("BENCH_load.json").write_text(json.dumps(payload, indent=1))
    print(render_markdown(results))
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

from .harness import ScenarioResult
from .slo import SLOReport

#: ``benchmark`` tag of the load-lab payload.
BENCHMARK_NAME = "load_scenarios"


def attach_slo(result: ScenarioResult, report: SLOReport) -> ScenarioResult:
    """Record an SLO verdict on a result (returns the same object)."""
    result.slo = report.to_dict()
    return result


def results_payload(
    results: Sequence[ScenarioResult],
    config: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The machine-readable payload written to ``BENCH_load.json``."""
    return {
        "benchmark": BENCHMARK_NAME,
        "config": dict(config or {}),
        "scenarios": {result.scenario: result.to_dict() for result in results},
    }


def write_json(
    results: Sequence[ScenarioResult],
    path: Union[str, Path],
    config: Optional[Dict[str, object]] = None,
) -> Path:
    """Write the payload as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(results_payload(results, config), indent=1) + "\n")
    return path


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def _verdict(result: ScenarioResult) -> str:
    if result.slo is None:
        return "—"
    return "PASS" if result.slo.get("passed") else "FAIL"


def render_markdown(
    results: Sequence[ScenarioResult], title: str = "Load scenario report"
) -> str:
    """Human-readable scenario report (summary table + SLO details)."""
    sections = [f"# {title}", ""]
    sections.append(_table(
        ["scenario", "kind", "requests", "throughput (req/s)", "p50 (ms)",
         "p99 (ms)", "peak queue", "errors", "timeouts", "rejected",
         "expired", "degraded", "accuracy", "SLO"],
        [
            [
                result.scenario,
                result.kind,
                result.requests,
                f"{result.throughput:.1f}",
                f"{result.latency_ms['p50']:.2f}",
                f"{result.latency_ms['p99']:.2f}",
                int(result.queue_depth.get("peak", result.queue_depth.get("max", 0))),
                result.errors,
                result.timeouts,
                result.rejected,
                result.expired,
                result.degraded,
                f"{float(result.accuracy['overall']):.3f}",
                _verdict(result),
            ]
            for result in results
        ],
    ))
    for result in results:
        if result.slo is None:
            continue
        sections.append("")
        sections.append(
            f"## {result.scenario} — SLO `{result.slo.get('spec', '?')}`: "
            f"{_verdict(result)}"
        )
        sections.append("")
        sections.append(_table(
            ["criterion", "bound", "observed", "verdict"],
            [
                [
                    check["metric"],
                    f"{check['comparison']} {check['bound']}",
                    f"{check['observed']:.3f}",
                    "pass" if check["passed"] else "FAIL",
                ]
                for check in result.slo.get("checks", [])
            ],
        ))
    return "\n".join(sections) + "\n"
