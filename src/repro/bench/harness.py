"""SLO-tracked load harness: drive a :class:`LinkingService` from a schedule.

:class:`LoadHarness` replays a :class:`~repro.bench.workloads.Schedule`
against the dynamic-batching frontend and measures what the serving stack
actually did under that traffic:

* **per-request latency** — submit → completion, captured with a done
  callback so the measurement does not depend on the drain order;
* **queue depth** — ``service.pending`` (or any custom ``depth_fn``, e.g. a
  single replica's queue) sampled on a background ticker plus the service's
  exact :attr:`~repro.serving.service.LinkingService.peak_pending`
  high-watermark;
* **per-world accuracy** — completed results grouped by mention domain;
* **errors, timeouts and rejections** — pipeline exceptions vs requests
  abandoned after ``request_timeout`` (abandoned futures are cancelled so
  they release their batch slot) vs requests shed by cluster admission
  control (:class:`~repro.serving.cluster.RejectedError`), each counted
  separately.

The harness drives anything with the service API — a single
:class:`~repro.serving.service.LinkingService` or a cluster
:class:`~repro.serving.cluster.Router`.  Against a router, a
:class:`~repro.serving.cluster.FaultPlan` can be handed to :meth:`run`:
a background injector replays the scripted replica injuries (kill / slow /
freeze / …) at their scheduled offsets while the scenario runs, and the
events actually applied are recorded on the result — this is how the
degraded-replica scenarios in ``BENCH_cluster.json`` are produced.

Open-loop schedules are paced by their precomputed arrival offsets — the
harness never waits for a response before submitting the next request, so
queueing dynamics are observable.  Closed-loop schedules run
``num_clients`` synchronous client threads, each submitting its next
mention as soon as the previous one completes.

Example::

    harness = LoadHarness(service, tick_interval=0.005)
    result = harness.run(workload)          # ScenarioResult
    result.throughput, result.latency_ms["p99"], result.queue_depth["peak"]
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..kb.entity import Mention
from ..serving.cluster import FaultPlan, RejectedError, Router
from ..serving.pipeline import LinkingResult
from ..serving.service import DeadlineExpiredError, LinkingService
from .workloads import CLOSED_LOOP, Schedule, Workload

#: Default interval of the queue-depth sampling ticker (seconds).
DEFAULT_TICK_INTERVAL = 0.005

#: Default per-request completion budget, measured from each request's own
#: submission; generous because micro-batches complete in bulk.
DEFAULT_REQUEST_TIMEOUT = 30.0


@dataclass
class ScenarioResult:
    """Everything one load scenario produced, ready for SLO evaluation.

    ``latency_ms`` holds ``count/mean/max/p50/p90/p99`` over *completed*
    requests; ``queue_depth`` holds the sampled ``max/mean/samples`` plus
    the service's exact ``peak``; ``accuracy`` has the overall fraction and
    a per-world breakdown (``{world: {correct, total, accuracy}}``).

    ``rejected`` counts requests shed by cluster admission control — shed
    is *intentional* backpressure, so it is tracked apart from errors and
    bounded by its own SLO criterion (``max_reject_rate``).  ``faults``
    lists the fault-plan events actually applied during the run (empty
    list when a plan was given, ``None`` when none was).

    The resilience fields: ``expired`` counts requests dropped past their
    deadline; ``degraded`` counts completed requests answered by the
    brownout pipeline; ``availability`` is the mean healthy-replica
    fraction sampled over the run (``None`` for a bare service);
    ``mttr_seconds`` lists per-recovery detect→restored gaps from the
    supervisor and ``restarts`` how many repairs it made.
    """

    scenario: str
    kind: str
    seed: Optional[int]
    requests: int
    completed: int
    errors: int
    timeouts: int
    wall_seconds: float
    throughput: float
    latency_ms: Dict[str, float]
    queue_depth: Dict[str, float]
    accuracy: Dict[str, object]
    slo: Optional[Dict[str, object]] = None
    rejected: int = 0
    faults: Optional[List[Dict[str, object]]] = None
    expired: int = 0
    degraded: int = 0
    availability: Optional[float] = None
    mttr_seconds: Optional[List[float]] = None
    restarts: int = 0

    @property
    def error_rate(self) -> float:
        """Failed or abandoned requests as a fraction of all submitted.

        Shed requests are excluded — rejection is the cluster *working as
        configured*, policed separately via :attr:`reject_rate`.
        """
        if self.requests == 0:
            return 0.0
        return (self.errors + self.timeouts) / self.requests

    @property
    def reject_rate(self) -> float:
        """Requests shed by admission control as a fraction of submitted."""
        if self.requests == 0:
            return 0.0
        return self.rejected / self.requests

    @property
    def degraded_fraction(self) -> float:
        """Brownout-quality answers as a fraction of completed requests."""
        if self.completed == 0:
            return 0.0
        return self.degraded / self.completed

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "scenario": self.scenario,
            "kind": self.kind,
            "seed": self.seed,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "error_rate": round(self.error_rate, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput": round(self.throughput, 3),
            "latency_ms": {k: round(v, 3) for k, v in self.latency_ms.items()},
            "queue_depth": {k: round(float(v), 3) for k, v in self.queue_depth.items()},
            "accuracy": self.accuracy,
            "rejected": self.rejected,
            "reject_rate": round(self.reject_rate, 6),
            "expired": self.expired,
            "degraded": self.degraded,
            "degraded_fraction": round(self.degraded_fraction, 6),
        }
        if self.availability is not None:
            payload["availability"] = round(self.availability, 6)
        if self.mttr_seconds:
            payload["mttr_seconds"] = [round(v, 6) for v in self.mttr_seconds]
            payload["mttr_max_seconds"] = round(max(self.mttr_seconds), 6)
        if self.restarts:
            payload["restarts"] = self.restarts
        if self.faults is not None:
            payload["faults"] = self.faults
        if self.slo is not None:
            payload["slo"] = self.slo
        return payload


@dataclass
class _RequestRecord:
    """Book-keeping for one submitted request."""

    mention: Mention
    future: "Future[LinkingResult]"
    submitted_at: float
    done_at: Optional[float] = None
    result: Optional[LinkingResult] = None
    failed: bool = False
    timed_out: bool = False
    rejected: bool = False
    expired: bool = False


class _QueueDepthTicker:
    """Background sampler of an arbitrary depth function at a fixed interval.

    The default harness wiring samples the service's aggregate ``pending``;
    any zero-argument callable works — a cluster router's total depth, a
    single replica's queue, or a composite.  A sampling error (e.g. probing
    a replica mid-teardown) records a ``0`` rather than killing the ticker
    thread mid-scenario.

    Against a cluster target the ticker doubles as the availability probe:
    ``health_fn`` (healthy-replica fraction in ``[0, 1]``) is sampled on
    the same cadence, and :meth:`availability` reports the mean — time a
    replica spends dead between supervisor repairs shows up directly.
    """

    def __init__(
        self,
        depth_fn: Callable[[], int],
        interval: float,
        health_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self._depth_fn = depth_fn
        self._interval = interval
        self._health_fn = health_fn
        self._samples: List[int] = []
        self._health_samples: List[float] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="load-harness-ticker", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                depth = int(self._depth_fn())
            except Exception:
                depth = 0
            self._samples.append(depth)
            if self._health_fn is not None:
                try:
                    health = float(self._health_fn())
                except Exception:
                    health = 0.0
                self._health_samples.append(health)
            self._stop.wait(self._interval)

    def __enter__(self) -> "_QueueDepthTicker":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def summary(self) -> Dict[str, float]:
        samples = np.asarray(self._samples, dtype=np.float64)
        if samples.size == 0:
            return {"max": 0.0, "mean": 0.0, "samples": 0.0}
        return {
            "max": float(samples.max()),
            "mean": float(samples.mean()),
            "samples": float(samples.size),
        }

    def availability(self) -> Optional[float]:
        """Mean healthy-replica fraction (``None`` without a health probe)."""
        if self._health_fn is None or not self._health_samples:
            return None
        return float(np.mean(self._health_samples))


class _FaultPlanRunner:
    """Background injector replaying a :class:`FaultPlan` during a scenario.

    Events fire at their scheduled offset from scenario start; each applied
    event is recorded with the offset it *actually* fired at.  When the
    scenario finishes before the plan does, the remaining events are
    recorded as skipped — a chaos scenario that silently outlives its
    injuries would otherwise look like a clean pass.
    """

    def __init__(self, service, plan: FaultPlan, started: float) -> None:
        self._service = service
        self._plan = plan
        self._started = started
        self.applied: List[Dict[str, object]] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="fault-plan-runner", daemon=True
        )

    def _run(self) -> None:
        for event in self._plan.events:
            delay = self._started + event.at - time.perf_counter()
            if delay > 0 and self._stop.wait(delay):
                break
            if self._stop.is_set():
                break
            entry: Dict[str, object] = {
                "action": event.action,
                "replica": event.replica,
                "value": event.value,
                "scheduled_at": event.at,
            }
            try:
                self._service.apply_fault(event)
                entry["applied_at"] = round(time.perf_counter() - self._started, 4)
            except Exception as error:
                entry["error"] = f"{type(error).__name__}: {error}"
            self.applied.append(entry)
        for event in self._plan.events[len(self.applied):]:
            self.applied.append({
                "action": event.action,
                "replica": event.replica,
                "value": event.value,
                "scheduled_at": event.at,
                "skipped": True,
            })

    def __enter__(self) -> "_FaultPlanRunner":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self._stop.set()
        self._thread.join(timeout=30.0)


class LoadHarness:
    """Drive one scenario at a time against a running :class:`LinkingService`.

    Parameters
    ----------
    service:
        A started service (or cluster :class:`~repro.serving.cluster.Router`
        — anything exposing the submit/pending/stats surface); the harness
        does not own its lifecycle.
    tick_interval:
        Queue-depth sampling period of the background ticker (seconds).
    request_timeout:
        Per-request completion budget.  Requests still pending after it are
        cancelled (releasing their batch slot) and counted as timeouts.
    reset_stats:
        Reset the pipeline's :class:`~repro.serving.pipeline.PipelineStats`
        before each run so scenario latency windows do not bleed together.
    depth_fn:
        What the queue-depth ticker samples.  Defaults to the service's
        aggregate ``pending``; pass e.g. ``lambda: router.depths()[2]`` to
        watch one replica's queue instead.
    request_deadline:
        Optional end-to-end deadline (seconds) attached to every submitted
        request.  Requests past it are dropped by the serving tier with
        :class:`~repro.serving.service.DeadlineExpiredError` and counted
        on :attr:`ScenarioResult.expired`.
    """

    def __init__(
        self,
        service: Union[LinkingService, Router],
        tick_interval: float = DEFAULT_TICK_INTERVAL,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        reset_stats: bool = True,
        depth_fn: Optional[Callable[[], int]] = None,
        request_deadline: Optional[float] = None,
    ) -> None:
        if tick_interval <= 0:
            raise ValueError("tick_interval must be positive")
        if request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if request_deadline is not None and request_deadline <= 0:
            raise ValueError("request_deadline must be positive")
        self.service = service
        self.tick_interval = tick_interval
        self.request_timeout = request_timeout
        self.reset_stats = reset_stats
        self.request_deadline = request_deadline
        self.depth_fn: Callable[[], int] = (
            depth_fn if depth_fn is not None else lambda: self.service.pending
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self,
        workload: Union[Workload, Schedule],
        name: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> ScenarioResult:
        """Replay one workload/schedule and collect a :class:`ScenarioResult`.

        ``fault_plan`` (cluster targets only) is replayed in the background
        while the scenario runs; the applied events land on
        :attr:`ScenarioResult.faults`.
        """
        if fault_plan is not None and not hasattr(self.service, "apply_fault"):
            raise ValueError(
                "fault_plan requires a target with apply_fault() — a cluster "
                "Router, not a bare LinkingService"
            )
        if isinstance(workload, Workload):
            schedule = workload.schedule()
            scenario = name or workload.name or type(workload.arrivals).__name__
            seed: Optional[int] = workload.seed
        else:
            schedule = workload
            scenario = name or "schedule"
            seed = None
        if len(schedule) == 0:
            raise ValueError("cannot run an empty schedule")
        if not self.service.running:
            raise RuntimeError("LinkingService is not running")

        if self.reset_stats:
            self.service.stats.reset()
        self.service.reset_peak_pending()

        health_fn: Optional[Callable[[], float]] = None
        pool = getattr(self.service, "pool", None)
        if pool is not None and len(pool) > 0:
            health_fn = lambda: len(pool.healthy_slots()) / len(pool)  # noqa: E731

        faults: Optional[List[Dict[str, object]]] = None
        with _QueueDepthTicker(
            self.depth_fn, self.tick_interval, health_fn=health_fn
        ) as ticker:
            started = time.perf_counter()
            injector = (
                _FaultPlanRunner(self.service, fault_plan, started)
                if fault_plan is not None else None
            )
            try:
                if injector is not None:
                    injector.__enter__()
                if schedule.kind == CLOSED_LOOP:
                    records = self._drive_closed_loop(schedule)
                else:
                    records = self._drive_open_loop(schedule)
                self._drain(records)
            finally:
                if injector is not None:
                    injector.__exit__(None, None, None)
                    faults = injector.applied
            wall_seconds = self._wall_seconds(records, started)
        queue_depth = ticker.summary()
        queue_depth["peak"] = float(self.service.peak_pending)

        # Supervisor repairs land in the target's ClusterStats; with
        # reset_stats=True the window is exactly this run.
        stats = getattr(self.service, "stats", None)
        mttr_seconds = list(getattr(stats, "mttr_seconds", ()) or ())
        restarts = int(getattr(stats, "restarts", 0) or 0)

        return self._summarise(
            scenario, schedule, seed, records, wall_seconds, queue_depth,
            faults=faults, availability=ticker.availability(),
            mttr_seconds=mttr_seconds, restarts=restarts,
        )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------
    def _submit(self, mention: Mention) -> _RequestRecord:
        submitted_at = time.perf_counter()
        if self.request_deadline is None:
            future = self.service.submit(mention)
        elif isinstance(self.service, Router):
            future = self.service.submit(mention, deadline=self.request_deadline)
        else:
            future = self.service.submit(
                mention, deadline_at=submitted_at + self.request_deadline
            )
        record = _RequestRecord(
            mention=mention, future=future, submitted_at=submitted_at
        )
        # Completion time is captured in the callback (scheduler thread), so
        # latency does not include the harness's own drain ordering.
        future.add_done_callback(
            lambda _f, r=record: setattr(r, "done_at", time.perf_counter())
        )
        return record

    def _drive_open_loop(self, schedule: Schedule) -> List[_RequestRecord]:
        """Submit on the precomputed timetable, never waiting on responses.

        A slow service makes the driver fall behind the timetable; it then
        submits as fast as it can (the backlog shows up as queue depth and
        latency, which is exactly the signal an open-loop test exists for).
        """
        records: List[_RequestRecord] = []
        start = time.perf_counter()
        for offset, mention in zip(schedule.offsets, schedule.mentions):
            delay = float(offset) - (time.perf_counter() - start)
            if delay > 0:
                time.sleep(delay)
            records.append(self._submit(mention))
        return records

    def _drive_closed_loop(self, schedule: Schedule) -> List[_RequestRecord]:
        """``num_clients`` threads, each submit → wait → next mention."""
        clients = max(1, schedule.num_clients)
        cursor = {"next": 0}
        cursor_lock = threading.Lock()
        records: List[Optional[_RequestRecord]] = [None] * len(schedule)

        def client() -> None:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(schedule):
                        return
                    cursor["next"] = index + 1
                try:
                    record = self._submit(schedule.mentions[index])
                except Exception as error:
                    # Submit-time failure (e.g. the service closed mid-run):
                    # keep an honest record so the drop shows up as an error
                    # instead of a silently shorter result set.
                    failed: "Future[LinkingResult]" = Future()
                    failed.set_exception(error)
                    record = _RequestRecord(
                        mention=schedule.mentions[index],
                        future=failed,
                        submitted_at=time.perf_counter(),
                    )
                records[index] = record
                try:
                    record.future.result(timeout=self.request_timeout)
                except Exception:
                    pass  # classified uniformly in _drain
        threads = [
            threading.Thread(target=client, name=f"load-client-{i}", daemon=True)
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.request_timeout * len(schedule))
        return [record for record in records if record is not None]

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def _drain(self, records: List[_RequestRecord]) -> None:
        """Resolve every future into result / error / timeout.

        Each request gets its *own* ``request_timeout`` budget measured
        from its submission — a long drain of a large schedule must not
        eat into the budget of requests submitted later.
        """
        for record in records:
            deadline = record.submitted_at + self.request_timeout
            remaining = max(deadline - time.perf_counter(), 0.001)
            try:
                record.result = record.future.result(timeout=remaining)
                # Future.result() can return before the done callback has
                # stamped done_at (waiters are notified first); fall back to
                # now so no completed request drops out of the latency set.
                if record.done_at is None:
                    record.done_at = time.perf_counter()
            except FutureTimeoutError:
                # Cancel so an abandoned request stops consuming a batch
                # slot; if the flush already picked it up the cancel is a
                # no-op and we still classify the request as timed out.
                record.future.cancel()
                record.timed_out = True
            except CancelledError:
                record.timed_out = True
            except DeadlineExpiredError:
                # Must precede RejectedError: expiry is a RejectedError
                # subclass but a *deadline* outcome, not admission shed.
                record.expired = True
            except RejectedError:
                record.rejected = True
            except Exception:
                record.failed = True

    @staticmethod
    def _wall_seconds(records: List[_RequestRecord], started: float) -> float:
        last_done = max(
            (record.done_at for record in records if record.done_at is not None),
            default=time.perf_counter(),
        )
        return max(last_done - started, 1e-9)

    def _summarise(
        self,
        scenario: str,
        schedule: Schedule,
        seed: Optional[int],
        records: List[_RequestRecord],
        wall_seconds: float,
        queue_depth: Dict[str, float],
        faults: Optional[List[Dict[str, object]]] = None,
        availability: Optional[float] = None,
        mttr_seconds: Optional[List[float]] = None,
        restarts: int = 0,
    ) -> ScenarioResult:
        completed = [r for r in records if r.result is not None]
        errors = sum(1 for r in records if r.failed)
        timeouts = sum(1 for r in records if r.timed_out)
        rejected = sum(1 for r in records if r.rejected)
        expired = sum(1 for r in records if r.expired)
        degraded = sum(1 for r in completed if r.result.degraded)

        latencies = np.asarray(
            [
                (r.done_at - r.submitted_at) * 1000.0
                for r in completed
                if r.done_at is not None
            ],
            dtype=np.float64,
        )
        if latencies.size:
            p50, p90, p99 = np.percentile(latencies, [50.0, 90.0, 99.0])
            latency_ms = {
                "count": float(latencies.size),
                "mean": float(latencies.mean()),
                "max": float(latencies.max()),
                "p50": float(p50),
                "p90": float(p90),
                "p99": float(p99),
            }
        else:
            latency_ms = {k: 0.0 for k in ("count", "mean", "max", "p50", "p90", "p99")}

        per_world: Dict[str, Dict[str, float]] = {}
        for record in completed:
            world = record.mention.domain
            bucket = per_world.setdefault(world, {"correct": 0, "total": 0})
            bucket["total"] += 1
            if record.result.correct:
                bucket["correct"] += 1
        for bucket in per_world.values():
            bucket["accuracy"] = round(bucket["correct"] / bucket["total"], 4)
        total = sum(bucket["total"] for bucket in per_world.values())
        correct = sum(bucket["correct"] for bucket in per_world.values())
        accuracy: Dict[str, object] = {
            "overall": round(correct / total, 4) if total else 0.0,
            "per_world": dict(sorted(per_world.items())),
        }

        return ScenarioResult(
            scenario=scenario,
            kind=schedule.kind,
            seed=seed,
            requests=len(records),
            completed=len(completed),
            errors=errors,
            timeouts=timeouts,
            wall_seconds=wall_seconds,
            throughput=len(completed) / wall_seconds,
            latency_ms=latency_ms,
            queue_depth=queue_depth,
            accuracy=accuracy,
            rejected=rejected,
            faults=faults,
            expired=expired,
            degraded=degraded,
            availability=availability,
            mttr_seconds=mttr_seconds or None,
            restarts=restarts,
        )
