"""The serving load lab: workloads, harness, SLOs, reports, regression gate.

``repro.bench`` sits between the serving frontend
(:class:`~repro.serving.service.LinkingService`) and the eval/reporting
stack: it generates deterministic traffic, replays it against the service,
evaluates the measurements against declarative SLOs, and gates fresh
benchmark payloads against the committed ``BENCH_*.json`` baselines.

Quick tour::

    pools = mentions_by_world(test_mentions)
    workload = scenario_catalogue(pools, seed=13)["steady_poisson"]
    result = LoadHarness(service).run(workload)
    attach_slo(result, SLOSpec(max_p99_ms=500.0).evaluate(result))
    print(render_markdown([result]))
    compare(results_payload([result]), load_bench("BENCH_load.json")).passed
"""

from .baselines import (
    BENCH_FILES,
    ComparisonReport,
    MetricCheck,
    compare,
    flatten_metrics,
    load_all_baselines,
    load_bench,
    metric_direction,
)
from .harness import LoadHarness, ScenarioResult
from .report import attach_slo, render_markdown, results_payload, write_json
from .slo import SLOCheck, SLOReport, SLOSpec, load_slo_file
from .synthetic import DEFAULT_NOISE, alias_entity, enlarge_kb, synthetic_kb
from .workloads import (
    BurstyArrivals,
    ClosedLoopArrivals,
    ClusterScenario,
    PoissonArrivals,
    RampArrivals,
    Schedule,
    TraceReplaySampler,
    UniformMentionSampler,
    Workload,
    ZipfMentionSampler,
    cluster_scenario_catalogue,
    mentions_by_world,
    scenario_catalogue,
)

__all__ = [
    "BENCH_FILES",
    "BurstyArrivals",
    "ClosedLoopArrivals",
    "ClusterScenario",
    "ComparisonReport",
    "LoadHarness",
    "MetricCheck",
    "PoissonArrivals",
    "RampArrivals",
    "Schedule",
    "ScenarioResult",
    "SLOCheck",
    "SLOReport",
    "SLOSpec",
    "TraceReplaySampler",
    "UniformMentionSampler",
    "Workload",
    "ZipfMentionSampler",
    "alias_entity",
    "attach_slo",
    "cluster_scenario_catalogue",
    "compare",
    "enlarge_kb",
    "flatten_metrics",
    "load_all_baselines",
    "load_bench",
    "load_slo_file",
    "mentions_by_world",
    "metric_direction",
    "render_markdown",
    "results_payload",
    "scenario_catalogue",
    "synthetic_kb",
    "write_json",
]
