"""Synthetic KB enlarger: scale a real entity slice to benchmark size.

The zeshel slice this repo trains on holds a few hundred entities — three
orders of magnitude short of the million-entity KBs the approximate index
layer (:mod:`repro.index`) exists for.  Rather than ship gigabytes of real
data, the index benchmarks *enlarge* a small real KB deterministically:

* :func:`enlarge_kb` tiles the base entities — replica ``j`` of entity
  ``i`` becomes an *alias* entity (``"<id>~j"``, title suffixed) whose
  embedding is the base embedding plus seeded Gaussian noise.  Tiling
  preserves the base KB's cluster geometry (aliases huddle around their
  base point), which is exactly the structure IVF coarse cells exploit, so
  recall measured on an enlarged KB is a fair proxy for recall on a real
  large KB with natural cluster structure.
* :func:`synthetic_kb` builds the base itself from a seeded generator
  (``num_base`` cluster centres per world) and then enlarges it, so index
  benchmarks need no real data at all.

Everything is a pure function of its arguments and ``seed`` — two calls
with equal arguments produce bit-identical entities and embeddings, which
is what lets the benchmark gate compare runs across machines.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..kb.entity import Entity

#: Relative noise applied to alias embeddings (fraction of the base
#: embedding's RMS norm); small enough that aliases stay in their base
#: point's IVF cell, large enough that they are not duplicate rows.
DEFAULT_NOISE = 0.05


def alias_entity(base: Entity, replica: int) -> Entity:
    """The ``replica``-th alias of a base entity (replica 0 is the base)."""
    if replica == 0:
        return base
    return Entity(
        entity_id=f"{base.entity_id}~{replica}",
        title=f"{base.title} (alias {replica})",
        description=base.description,
        domain=base.domain,
        entity_type=base.entity_type,
    )


def enlarge_kb(
    entities: Sequence[Entity],
    vectors: np.ndarray,
    target_count: int,
    seed: int = 0,
    noise: float = DEFAULT_NOISE,
) -> Tuple[List[Entity], np.ndarray]:
    """Tile ``entities`` with noisy aliases up to ``target_count`` rows.

    Base entities come first (their embeddings bit-identical to the input),
    followed by alias generations in round-robin order — replica 1 of every
    base, then replica 2, ... — so any prefix of the output is itself a
    valid KB.  Alias embeddings are ``base + noise * rms * N(0, I)`` with a
    generator seeded by ``seed`` only; the result is deterministic.
    """
    entities = list(entities)
    vectors = np.asarray(vectors, dtype=np.float64)
    if len(entities) != len(vectors):
        raise ValueError("entities and vectors must align")
    if not entities:
        raise ValueError("cannot enlarge an empty KB")
    if target_count < len(entities):
        raise ValueError(
            f"target_count {target_count} is below the base KB size {len(entities)}"
        )

    rng = np.random.default_rng(seed)
    rms = float(np.sqrt(np.mean(vectors**2))) or 1.0
    out_entities: List[Entity] = list(entities)
    blocks: List[np.ndarray] = [vectors]
    replica = 1
    remaining = target_count - len(entities)
    while remaining > 0:
        take = min(remaining, len(entities))
        out_entities.extend(alias_entity(entities[i], replica) for i in range(take))
        blocks.append(
            vectors[:take] + noise * rms * rng.standard_normal((take, vectors.shape[1]))
        )
        remaining -= take
        replica += 1
    return out_entities, np.concatenate(blocks, axis=0)


def synthetic_kb(
    target_count: int,
    dim: int = 32,
    num_base: int = 512,
    num_worlds: int = 4,
    seed: int = 0,
    noise: float = DEFAULT_NOISE,
) -> Tuple[List[Entity], np.ndarray]:
    """A fully synthetic clustered KB of ``target_count`` entities.

    ``num_base`` seeded Gaussian cluster centres are split round-robin over
    ``num_worlds`` domains and then enlarged with :func:`enlarge_kb` — the
    result has the cluster-around-centres geometry real entity embedding
    spaces exhibit, at any size, with no data files.
    """
    if num_base <= 0 or num_worlds <= 0:
        raise ValueError("num_base and num_worlds must be positive")
    num_base = min(num_base, target_count)
    rng = np.random.default_rng(seed)
    base_vectors = rng.standard_normal((num_base, dim))
    base_entities = [
        Entity(
            entity_id=f"syn{i % num_worlds}:{i}",
            title=f"synthetic entity {i}",
            description=f"synthetic benchmark entity number {i}",
            domain=f"syn{i % num_worlds}",
        )
        for i in range(num_base)
    ]
    return enlarge_kb(
        base_entities, base_vectors, target_count, seed=seed + 1, noise=noise
    )
