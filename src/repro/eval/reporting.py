"""Render experiment results as paper-style text tables."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns))) for line in rendered
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, separator, body])
    return "\n".join(parts)


def format_metric_rows(
    results: Mapping[str, Mapping[str, float]],
    metric_names: Sequence[str] = ("recall", "normalized_accuracy", "unnormalized_accuracy"),
    title: Optional[str] = None,
) -> str:
    """Render a {row_label: {metric: value}} mapping as a table."""
    rows: List[Dict[str, object]] = []
    for label, metrics in results.items():
        row: Dict[str, object] = {"method": label}
        for metric in metric_names:
            row[metric] = metrics.get(metric, float("nan"))
        rows.append(row)
    return format_table(rows, columns=["method", *metric_names], title=title)


def markdown_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    float_digits: int = 2,
) -> str:
    """Render rows as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    if not rows:
        return "(empty)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    lines = ["| " + " | ".join(str(c) for c in columns) + " |",
             "| " + " | ".join("---" for _ in columns) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(render(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)
