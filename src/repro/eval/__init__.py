"""Evaluation harness: metrics, protocol, experiment runners and reporting."""

from .experiments import ExperimentSuite, small_experiment_config
from .metrics import (
    LinkingMetrics,
    accuracy_from_predictions,
    compute_metrics,
    macro_average,
    recall_at_k,
)
from .protocol import (
    EvaluationResult,
    evaluate_meta_trainer,
    evaluate_name_matching,
    evaluate_pipeline,
)
from .reporting import format_metric_rows, format_table, markdown_table

__all__ = [
    "LinkingMetrics",
    "compute_metrics",
    "accuracy_from_predictions",
    "macro_average",
    "recall_at_k",
    "EvaluationResult",
    "evaluate_pipeline",
    "evaluate_meta_trainer",
    "evaluate_name_matching",
    "ExperimentSuite",
    "small_experiment_config",
    "format_table",
    "format_metric_rows",
    "markdown_table",
]
