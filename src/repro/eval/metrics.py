"""Evaluation metrics: Recall@k, normalised and unnormalised accuracy.

The paper's protocol (Section VI-A) splits entity linking into candidate
generation and candidate ranking:

* **Recall@k** — fraction of mentions whose gold entity is among the k
  retrieved candidates;
* **normalised accuracy (N.Acc)** — ranking accuracy restricted to mentions
  whose gold entity was retrieved;
* **unnormalised accuracy (U.Acc)** — recall × N.Acc, i.e. end-to-end accuracy.

All values are reported in percent, matching the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..linking.blink import LinkingPrediction


@dataclass(frozen=True)
class LinkingMetrics:
    """Two-stage evaluation result (values in percent)."""

    recall: float
    normalized_accuracy: float
    unnormalized_accuracy: float
    num_examples: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "recall": self.recall,
            "normalized_accuracy": self.normalized_accuracy,
            "unnormalized_accuracy": self.unnormalized_accuracy,
            "num_examples": float(self.num_examples),
        }

    def rounded(self, digits: int = 2) -> "LinkingMetrics":
        return LinkingMetrics(
            recall=round(self.recall, digits),
            normalized_accuracy=round(self.normalized_accuracy, digits),
            unnormalized_accuracy=round(self.unnormalized_accuracy, digits),
            num_examples=self.num_examples,
        )


def compute_metrics(predictions: Sequence[LinkingPrediction]) -> LinkingMetrics:
    """Compute Recall@k / N.Acc / U.Acc over two-stage predictions."""
    labelled = [p for p in predictions if p.gold_entity_id is not None]
    if not labelled:
        return LinkingMetrics(0.0, 0.0, 0.0, 0)
    retrieved = [p for p in labelled if p.gold_in_candidates]
    correct = [p for p in labelled if p.correct]
    correct_and_retrieved = [p for p in retrieved if p.correct]

    recall = len(retrieved) / len(labelled)
    normalized = len(correct_and_retrieved) / len(retrieved) if retrieved else 0.0
    unnormalized = len(correct) / len(labelled)
    return LinkingMetrics(
        recall=100.0 * recall,
        normalized_accuracy=100.0 * normalized,
        unnormalized_accuracy=100.0 * unnormalized,
        num_examples=len(labelled),
    )


def accuracy_from_predictions(
    predicted_ids: Sequence[Optional[str]],
    gold_ids: Sequence[Optional[str]],
) -> float:
    """Plain accuracy (in percent) between aligned prediction / gold id lists."""
    if len(predicted_ids) != len(gold_ids):
        raise ValueError("prediction and gold lists must align")
    labelled = [(p, g) for p, g in zip(predicted_ids, gold_ids) if g is not None]
    if not labelled:
        return 0.0
    hits = sum(1 for p, g in labelled if p == g)
    return 100.0 * hits / len(labelled)


def recall_at_k(
    approx_results: Sequence[Sequence[str]],
    exact_results: Sequence[Sequence[str]],
    k: Optional[int] = None,
) -> float:
    """Approximate-vs-exact retrieval recall: overlap fraction at cutoff ``k``.

    For each query, the fraction of the *exact* top-k candidate ids that the
    approximate retriever also returned (order-insensitive), averaged over
    queries.  This is the quality metric of an approximate index — 1.0 means
    every probed cell contained the true top-k — distinct from the gold-based
    Recall@k of :func:`compute_metrics`, which measures the embedding model.

    Results may be :class:`~repro.linking.candidates.RetrievalResult` objects
    (their ``entity_ids`` are used) or plain id sequences.  ``k=None`` uses
    each exact result's full length.  Queries whose exact result is empty are
    skipped; if every exact result is empty the recall is defined as 1.0
    (the approximate index missed nothing).
    """
    if len(approx_results) != len(exact_results):
        raise ValueError("approximate and exact result lists must align")

    def ids(result: object) -> Sequence[str]:
        return getattr(result, "entity_ids", result)  # type: ignore[return-value]

    total = 0.0
    counted = 0
    for approx, exact in zip(approx_results, exact_results):
        exact_ids = list(ids(exact))
        if k is not None:
            exact_ids = exact_ids[:k]
        if not exact_ids:
            continue
        approx_ids = set(ids(approx) if k is None else list(ids(approx))[:k])
        total += len(approx_ids.intersection(exact_ids)) / len(exact_ids)
        counted += 1
    if counted == 0:
        return 1.0
    return total / counted


def macro_average(metrics: Sequence[LinkingMetrics]) -> LinkingMetrics:
    """Unweighted mean of several metric sets (used for cross-domain averages)."""
    if not metrics:
        return LinkingMetrics(0.0, 0.0, 0.0, 0)
    return LinkingMetrics(
        recall=sum(m.recall for m in metrics) / len(metrics),
        normalized_accuracy=sum(m.normalized_accuracy for m in metrics) / len(metrics),
        unnormalized_accuracy=sum(m.unnormalized_accuracy for m in metrics) / len(metrics),
        num_examples=sum(m.num_examples for m in metrics),
    )
