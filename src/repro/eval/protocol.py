"""Two-stage evaluation protocol helpers.

``evaluate_pipeline`` runs a BLINK-style pipeline over a mention list and
returns :class:`~repro.eval.metrics.LinkingMetrics`; ``evaluate_name_matching``
does the same for the heuristic baseline (which has no candidate-generation
stage, so only U.Acc is meaningful, as in the paper's tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..kb.entity import Entity, Mention
from ..linking.blink import BlinkPipeline, LinkingPrediction
from ..linking.name_matching import NameMatchingLinker
from ..meta.metablink import MetaBlinkTrainer
from ..serving.pipeline import EntityLinkingPipeline
from .metrics import LinkingMetrics, compute_metrics


@dataclass
class EvaluationResult:
    """Metrics plus the raw predictions (useful for error analysis)."""

    metrics: LinkingMetrics
    predictions: List[LinkingPrediction]


def evaluate_pipeline(
    pipeline: Union[BlinkPipeline, EntityLinkingPipeline],
    mentions: Sequence[Mention],
    entities: Optional[Sequence[Entity]] = None,
    k: Optional[int] = None,
    rerank: Optional[bool] = None,
) -> EvaluationResult:
    """Evaluate a trained BLINK / MetaBLINK / serving pipeline on mentions.

    Accepts either a research :class:`~repro.linking.blink.BlinkPipeline`
    (``entities`` then supplies the candidate pool, searched with Recall@``k``,
    default 16) or a prebuilt :class:`~repro.serving.EntityLinkingPipeline`,
    which already carries its index, ``k`` and rerank setting — passing
    ``entities``/``k``/``rerank`` alongside a serving pipeline raises rather
    than being silently ignored.
    """
    if isinstance(pipeline, EntityLinkingPipeline):
        if entities is not None or k is not None or rerank is not None:
            raise ValueError(
                "an EntityLinkingPipeline already carries its index, k and "
                "rerank setting; configure the pipeline instead of passing "
                "entities/k/rerank here"
            )
        predictions = [
            LinkingPrediction(
                mention_id=result.mention_id,
                gold_entity_id=result.gold_entity_id,
                candidate_ids=list(result.candidate_ids),
                predicted_entity_id=result.predicted_entity_id,
            )
            for result in pipeline.link(mentions)
        ]
    else:
        if entities is None:
            raise ValueError("entities are required when evaluating a BlinkPipeline")
        predictions = pipeline.predict(
            mentions,
            entities,
            k=16 if k is None else k,
            rerank=True if rerank is None else rerank,
        )
    return EvaluationResult(metrics=compute_metrics(predictions), predictions=predictions)


def evaluate_meta_trainer(
    trainer: MetaBlinkTrainer,
    mentions: Sequence[Mention],
    entities: Sequence[Entity],
    k: int = 16,
    rerank: bool = True,
) -> EvaluationResult:
    """Evaluate the pipeline owned by a MetaBLINK trainer."""
    return evaluate_pipeline(trainer.pipeline, mentions, entities, k=k, rerank=rerank)


def evaluate_name_matching(
    entities: Sequence[Entity],
    mentions: Sequence[Mention],
) -> LinkingMetrics:
    """Evaluate the Name Matching baseline (U.Acc only, as in Table V/VI)."""
    linker = NameMatchingLinker(entities)
    labelled = [m for m in mentions if m.gold_entity_id is not None]
    if not labelled:
        return LinkingMetrics(0.0, 0.0, 0.0, 0)
    accuracy = 100.0 * sum(
        1
        for mention in labelled
        if (predicted := linker.predict(mention)) is not None
        and predicted.entity_id == mention.gold_entity_id
    ) / len(labelled)
    return LinkingMetrics(
        recall=0.0,
        normalized_accuracy=0.0,
        unnormalized_accuracy=accuracy,
        num_examples=len(labelled),
    )
