"""Experiment runners: one function per table / figure of the paper.

Every runner returns plain row dictionaries (ready for
:func:`repro.eval.reporting.format_table`), so the same code backs the unit
tests, the benchmark harness and the EXPERIMENTS.md generation script.

The :class:`ExperimentSuite` caches expensive shared artefacts — the corpus,
the tokenizer, few-shot splits, synthetic-data bundles and the
general-domain BLINK model — so running several experiments in one process
does not repeat work.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.few_shot import (
    FewShotSplit,
    pairs_from_mentions,
    remaining_test_mentions,
    sample_training_subset,
    split_all_test_domains,
    table4_rows,
)
from ..data.worlds import DISPLAY_NAMES, TEST_DOMAINS
from ..data.zeshel import Corpus, generate_corpus
from ..generation.noise import mix_with_noise
from ..generation.synthesis import (
    SyntheticDataBundle,
    build_bundle,
    build_tokenizer_for_corpus,
    source_domain_pairs,
)
from ..kb.entity import EntityMentionPair
from ..linking.blink import BlinkPipeline
from ..linking.biencoder import BiEncoder, BiEncoderTrainer
from ..linking.crossencoder import CrossEncoderTrainer, build_ranking_examples
from ..linking.dl4el import DL4ELTrainer
from ..meta.metablink import MetaBlinkTrainer
from ..meta.reweight import ExampleReweighter
from ..meta.seed import build_zero_shot_seed, few_shot_seed
from ..text.rouge import corpus_rouge_1_f1
from ..utils.config import EncoderConfig, ExperimentConfig, MetaConfig
from ..utils.logging import get_logger
from ..utils.rng import derive_seed

_LOGGER = get_logger("experiments")


def small_experiment_config(seed: int = 13) -> ExperimentConfig:
    """The scaled-down configuration used by benchmarks and examples.

    Model and corpus sizes are chosen so a full table reproduces in minutes on
    CPU while keeping the paper's structure (16 domains, 50-sample seeds,
    two-stage evaluation).
    """
    config = ExperimentConfig()
    encoder = EncoderConfig(model_dim=32, num_layers=1, num_heads=2, hidden_dim=64, max_length=40)
    cross_encoder = EncoderConfig(model_dim=32, num_layers=1, num_heads=2, hidden_dim=64, max_length=72)
    return replace(
        config,
        corpus=replace(config.corpus, entities_per_domain=30, mentions_per_domain=160, seed=seed),
        biencoder=replace(config.biencoder, encoder=encoder, epochs=2, batch_size=16,
                          learning_rate=5e-3, seed=seed),
        crossencoder=replace(config.crossencoder, encoder=cross_encoder, epochs=2, batch_size=4,
                             num_candidates=4, learning_rate=5e-3, seed=seed + 1),
        rewriter=replace(config.rewriter, model_dim=32, hidden_dim=64, max_source_length=40,
                         max_target_length=8, epochs=1, denoising_epochs=1, batch_size=16),
        meta=replace(config.meta, use_exact_per_example_gradients=False),
        recall_k=8,
        seed_size=50,
        dev_size=50,
        seed=seed,
    )


class ExperimentSuite:
    """Shared context for all experiment runners."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or small_experiment_config()
        self._corpus: Optional[Corpus] = None
        self._tokenizer = None
        self._splits: Optional[Dict[str, FewShotSplit]] = None
        self._bundles: Dict[str, SyntheticDataBundle] = {}
        self._general_pairs: Optional[List[EntityMentionPair]] = None

    # ------------------------------------------------------------------
    # Cached artefacts
    # ------------------------------------------------------------------
    @property
    def corpus(self) -> Corpus:
        if self._corpus is None:
            self._corpus = generate_corpus(self.config.corpus)
        return self._corpus

    @property
    def tokenizer(self):
        if self._tokenizer is None:
            self._tokenizer = build_tokenizer_for_corpus(
                self.corpus, max_length=self.config.biencoder.encoder.max_length
            )
        return self._tokenizer

    @property
    def splits(self) -> Dict[str, FewShotSplit]:
        if self._splits is None:
            self._splits = split_all_test_domains(
                self.corpus,
                seed_size=self.config.seed_size,
                dev_size=self.config.dev_size,
                seed=self.config.seed,
            )
        return self._splits

    def bundle(self, domain: str, include_syn_star: bool = True) -> SyntheticDataBundle:
        """Exact-match / syn / syn* data for a domain (cached)."""
        key = f"{domain}:{include_syn_star}"
        if key not in self._bundles:
            self._bundles[key] = build_bundle(
                self.corpus,
                domain,
                tokenizer=self.tokenizer,
                rewriter_config=self.config.rewriter,
                per_entity=2,
                include_syn_star=include_syn_star,
                limit_per_domain=40,
                seed=self.config.seed,
            )
        return self._bundles[key]

    def general_pairs(self, limit_per_domain: int = 30) -> List[EntityMentionPair]:
        """Gold pairs from the 8 training (general) domains."""
        if self._general_pairs is None:
            self._general_pairs = source_domain_pairs(self.corpus, limit_per_domain=limit_per_domain)
        return self._general_pairs

    # ------------------------------------------------------------------
    # Training / evaluation helpers
    # ------------------------------------------------------------------
    def seed_pairs(self, domain: str) -> List[EntityMentionPair]:
        return few_shot_seed(
            pairs_from_mentions(self.corpus, domain, self.splits[domain].train, source="seed")
        )

    def _new_pipeline(self) -> BlinkPipeline:
        return BlinkPipeline(self.tokenizer, self.config.biencoder, self.config.crossencoder)

    def _evaluate(self, pipeline: BlinkPipeline, domain: str, mentions=None) -> Dict[str, float]:
        """Evaluate through the batched serving pipeline (one index build)."""
        from ..serving.pipeline import EntityLinkingPipeline
        from .protocol import evaluate_pipeline

        mentions = mentions if mentions is not None else self.splits[domain].test
        serving = EntityLinkingPipeline.from_blink(
            pipeline, entities=self.corpus.entities(domain), k=self.config.recall_k
        )
        result = evaluate_pipeline(serving, mentions)
        return result.metrics.rounded().as_dict()

    def train_blink(self, pairs: Sequence[EntityMentionPair], domain: str, seed: int = 0) -> BlinkPipeline:
        """Train a vanilla BLINK pipeline on the given pairs."""
        pipeline = self._new_pipeline()
        pipeline.train(
            pairs,
            candidate_pool=self.corpus.entities(domain),
            max_crossencoder_examples=60,
            seed=seed,
        )
        return pipeline

    def train_dl4el(self, pairs: Sequence[EntityMentionPair], domain: str, seed: int = 0) -> BlinkPipeline:
        """DL4EL baseline: denoising bi-encoder + standard cross-encoder."""
        pipeline = self._new_pipeline()
        DL4ELTrainer(pipeline.biencoder, self.config.biencoder).fit(pairs, seed=seed)
        pool = self.corpus.entities(domain)
        examples = build_ranking_examples(
            list(pairs)[:60], pool, self.config.crossencoder.num_candidates, seed=seed
        )
        CrossEncoderTrainer(pipeline.crossencoder, self.config.crossencoder).fit(examples, seed=seed)
        return pipeline

    def train_metablink(
        self,
        synthetic: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        domain: str,
        seed: int = 0,
    ) -> MetaBlinkTrainer:
        """Train MetaBLINK (Algorithm 2) on synthetic + seed data."""
        trainer = MetaBlinkTrainer(
            self.tokenizer, self.config.biencoder, self.config.crossencoder, self.config.meta
        )
        trainer.train(
            synthetic,
            seed_pairs,
            candidate_pool=self.corpus.entities(domain),
            max_crossencoder_examples=60,
            seed=seed,
        )
        return trainer

    # ------------------------------------------------------------------
    # Figure 1 — accuracy degradation with less in-domain data
    # ------------------------------------------------------------------
    def run_figure1(
        self,
        domain: str = "yugioh",
        sizes: Sequence[int] = (0, 10, 25, 50),
    ) -> List[Dict[str, object]]:
        """U.Acc of a BLINK-style linker as the in-domain training set shrinks."""
        split = self.splits[domain]
        rows: List[Dict[str, object]] = []
        for size in sizes:
            if size == 0:
                pipeline = self._new_pipeline()  # untrained model
                eval_mentions = split.test
            else:
                train_mentions = sample_training_subset(split, size, self.corpus, seed=self.config.seed)
                pairs = pairs_from_mentions(self.corpus, domain, train_mentions, source="gold")
                pipeline = self.train_blink(pairs, domain, seed=size)
                eval_mentions = remaining_test_mentions(split, train_mentions)
            metrics = self._evaluate(pipeline, domain, mentions=eval_mentions)
            rows.append({"domain": DISPLAY_NAMES[domain], "train_size": size, **metrics})
        return rows

    # ------------------------------------------------------------------
    # Table II — qualitative errors of exact-match training
    # ------------------------------------------------------------------
    def run_table2_examples(self, domain: str = "yugioh", max_rows: int = 3) -> List[Dict[str, object]]:
        """Mentions the exact-match model gets wrong but the syn model gets right."""
        bundle = self.bundle(domain, include_syn_star=False)
        split = self.splits[domain]
        exact_pipeline = self.train_blink(bundle.exact_match, domain, seed=1)
        syn_pipeline = self.train_blink(bundle.syn, domain, seed=1)
        entities = self.corpus.entities(domain)
        exact_preds = exact_pipeline.predict(split.test, entities, k=self.config.recall_k)
        syn_preds = syn_pipeline.predict(split.test, entities, k=self.config.recall_k)

        index = self.corpus.domain(domain).entity_index
        rows: List[Dict[str, object]] = []
        for mention, exact_pred, syn_pred in zip(split.test, exact_preds, syn_preds):
            if len(rows) >= max_rows:
                break
            if exact_pred.correct or not syn_pred.correct:
                continue
            wrong_id = exact_pred.predicted_entity_id
            rows.append(
                {
                    "mention": mention.surface,
                    "context": mention.context[:80],
                    "gold_entity": index[mention.gold_entity_id].title,
                    "exact_match_prediction": index[wrong_id].title if wrong_id in index else str(wrong_id),
                    "syn_prediction": index[syn_pred.predicted_entity_id].title,
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Tables III and IV — dataset statistics and few-shot splits
    # ------------------------------------------------------------------
    def run_table3_statistics(self) -> List[Dict[str, object]]:
        """Per-domain entity counts grouped by split (Table III analogue)."""
        rows: List[Dict[str, object]] = []
        for name, data in sorted(self.corpus.domains.items(), key=lambda item: (item[1].split, item[0])):
            rows.append(
                {
                    "split": data.split,
                    "domain": DISPLAY_NAMES[name],
                    "entities": len(data.entities),
                    "mentions": len(data.mentions),
                }
            )
        return rows

    def run_table4_splits(self) -> List[Dict[str, object]]:
        """Few-shot train/dev/test sizes per test domain (Table IV)."""
        rows = table4_rows(self.splits)
        for row in rows:
            row["domain"] = DISPLAY_NAMES[str(row["domain"])]
        return rows

    # ------------------------------------------------------------------
    # Tables V and VI — few-shot entity linking in specific domains
    # ------------------------------------------------------------------
    def run_table5_6(
        self,
        domains: Sequence[str] = ("forgotten_realms", "lego"),
        methods: Optional[Sequence[str]] = None,
    ) -> List[Dict[str, object]]:
        """The main few-shot comparison (Table V covers FR+Lego, VI covers ST+YuGiOh)."""
        all_methods = [
            "name_matching",
            "blink_seed",
            "blink_syn",
            "blink_syn_seed",
            "dl4el_syn_seed",
            "metablink_syn_seed",
            "metablink_synstar_seed",
        ]
        methods = list(methods) if methods is not None else all_methods
        rows: List[Dict[str, object]] = []
        for domain in domains:
            rows.extend(self._run_domain_method_rows(domain, methods))
        return rows

    def _run_domain_method_rows(self, domain: str, methods: Sequence[str]) -> List[Dict[str, object]]:
        from .protocol import evaluate_name_matching

        split = self.splits[domain]
        seed_pairs = self.seed_pairs(domain)
        needs_syn_star = "metablink_synstar_seed" in methods
        bundle = self.bundle(domain, include_syn_star=needs_syn_star)
        entities = self.corpus.entities(domain)
        rows: List[Dict[str, object]] = []

        for method in methods:
            _LOGGER.debug("running %s on %s", method, domain)
            if method == "name_matching":
                metrics = evaluate_name_matching(entities, split.test).rounded().as_dict()
            elif method == "blink_seed":
                metrics = self._evaluate(self.train_blink(seed_pairs, domain, seed=2), domain)
            elif method == "blink_syn":
                metrics = self._evaluate(self.train_blink(bundle.syn, domain, seed=3), domain)
            elif method == "blink_syn_seed":
                metrics = self._evaluate(
                    self.train_blink(bundle.syn + seed_pairs, domain, seed=4), domain
                )
            elif method == "dl4el_syn_seed":
                metrics = self._evaluate(
                    self.train_dl4el(bundle.syn + seed_pairs, domain, seed=5), domain
                )
            elif method == "metablink_syn_seed":
                trainer = self.train_metablink(bundle.syn, seed_pairs, domain, seed=6)
                metrics = self._evaluate(trainer.pipeline, domain)
            elif method == "metablink_synstar_seed":
                trainer = self.train_metablink(bundle.syn_star, seed_pairs, domain, seed=7)
                metrics = self._evaluate(trainer.pipeline, domain)
            else:
                raise KeyError(f"unknown method {method!r}")
            rows.append({"domain": DISPLAY_NAMES[domain], "method": method, **metrics})
        return rows

    # ------------------------------------------------------------------
    # Table VII — zero-shot domain transfer
    # ------------------------------------------------------------------
    def run_table7_transfer(
        self,
        domains: Sequence[str] = TEST_DOMAINS,
    ) -> List[Dict[str, object]]:
        """Zero-shot transfer: BLINK (general), +heuristic seed, MetaBLINK syn+seed."""
        rows: List[Dict[str, object]] = []
        general = self.general_pairs()
        for domain in domains:
            entities = self.corpus.entities(domain)
            bundle = self.bundle(domain, include_syn_star=False)
            heuristic_seed = build_zero_shot_seed(
                bundle.syn, entities, size=self.config.seed_size, seed=self.config.seed
            )

            base = self.train_blink(general, domain, seed=8)
            base_metrics = self._evaluate(base, domain)

            seeded = self.train_blink(general + heuristic_seed, domain, seed=9)
            seeded_metrics = self._evaluate(seeded, domain)

            meta = self.train_metablink(bundle.syn, heuristic_seed, domain, seed=10)
            meta_metrics = self._evaluate(meta.pipeline, domain)

            display = DISPLAY_NAMES[domain]
            rows.append({"domain": display, "method": "blink", **base_metrics})
            rows.append({"domain": display, "method": "blink_seed", **seeded_metrics})
            rows.append({"domain": display, "method": "metablink_syn_seed", **meta_metrics})
        return rows

    # ------------------------------------------------------------------
    # Table VIII — domain gap
    # ------------------------------------------------------------------
    def run_table8_gap(
        self,
        domains: Sequence[str] = TEST_DOMAINS,
        finetune_size: int = 100,
    ) -> List[Dict[str, object]]:
        """Gap = U.Acc(BLINK fine-tuned on in-domain data) − U.Acc(BLINK general)."""
        rows: List[Dict[str, object]] = []
        general = self.general_pairs()
        for domain in domains:
            split = self.splits[domain]
            base = self.train_blink(general, domain, seed=11)

            available = len(split.train) + len(split.test) - 10
            size = min(finetune_size, max(available, len(split.train)))
            train_mentions = sample_training_subset(split, size, self.corpus, seed=self.config.seed)
            in_domain = pairs_from_mentions(self.corpus, domain, train_mentions, source="gold")
            finetuned = self.train_blink(general + in_domain, domain, seed=12)

            eval_mentions = remaining_test_mentions(split, train_mentions)
            base_metrics = self._evaluate(base, domain, mentions=eval_mentions)
            finetuned_metrics = self._evaluate(finetuned, domain, mentions=eval_mentions)
            rows.append(
                {
                    "domain": DISPLAY_NAMES[domain],
                    "blink": base_metrics["unnormalized_accuracy"],
                    "blink_ft": finetuned_metrics["unnormalized_accuracy"],
                    "gap": round(
                        finetuned_metrics["unnormalized_accuracy"]
                        - base_metrics["unnormalized_accuracy"],
                        2,
                    ),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # Table IX — transfer with different training sources
    # ------------------------------------------------------------------
    def run_table9_sources(
        self,
        domains: Sequence[str] = ("lego", "yugioh"),
    ) -> List[Dict[str, object]]:
        """Zero-shot transfer with different training-source combinations."""
        rows: List[Dict[str, object]] = []
        general = self.general_pairs()
        for domain in domains:
            entities = self.corpus.entities(domain)
            bundle = self.bundle(domain, include_syn_star=True)
            heuristic_seed = build_zero_shot_seed(
                bundle.syn, entities, size=self.config.seed_size, seed=self.config.seed
            )
            display = DISPLAY_NAMES[domain]

            configurations = [
                ("blink", None, False),
                ("blink_seed", general + heuristic_seed, False),
                ("metablink_syn_seed", bundle.syn, True),
                ("metablink_general_seed", general, True),
                ("metablink_general_syn_seed", general + bundle.syn, True),
                ("metablink_general_synstar_seed", general + bundle.syn_star, True),
            ]
            for name, data, is_meta in configurations:
                if name == "blink":
                    pipeline = self.train_blink(general, domain, seed=13)
                    metrics = self._evaluate(pipeline, domain)
                elif not is_meta:
                    pipeline = self.train_blink(data, domain, seed=14)
                    metrics = self._evaluate(pipeline, domain)
                else:
                    trainer = self.train_metablink(data, heuristic_seed, domain, seed=15)
                    metrics = self._evaluate(trainer.pipeline, domain)
                rows.append({"domain": display, "method": name, **metrics})
        return rows

    # ------------------------------------------------------------------
    # Figure 4 — effect of meta-learning on bad data
    # ------------------------------------------------------------------
    def run_figure4_selection(
        self,
        domain: str = "yugioh",
        noise_fraction: float = 0.5,
    ) -> Dict[str, float]:
        """Selection ratio of normal vs corrupted synthetic data (bi-encoder)."""
        bundle = self.bundle(domain, include_syn_star=False)
        seed_pairs = self.seed_pairs(domain)
        entities = self.corpus.entities(domain)

        # Warm up the bi-encoder so gradient alignment is informative, as it is
        # mid-training in Algorithm 1.
        biencoder = BiEncoder(self.config.biencoder, self.tokenizer)
        BiEncoderTrainer(biencoder, self.config.biencoder).fit(
            bundle.syn + seed_pairs, epochs=max(1, self.config.biencoder.epochs), seed=16
        )

        mixed = mix_with_noise(bundle.syn, entities, fraction=noise_fraction, seed=self.config.seed)
        negatives = entities[:16]
        reweighter = ExampleReweighter(
            biencoder,
            lambda pairs, reduction="sum": biencoder.pairs_loss_with_negatives(
                pairs, negatives, reduction=reduction
            ),
            self.config.meta,
        )
        ratios = reweighter.selection_ratio_by_source(
            mixed, seed_pairs, batch_size=self.config.meta.meta_batch_size, seed=17
        )
        return {
            "normal_selected_ratio": round(ratios.get("rewritten", ratios.get("exact_match", 0.0)), 4),
            "bad_selected_ratio": round(ratios.get("noise", 0.0), 4),
        }

    # ------------------------------------------------------------------
    # Table X — effectiveness of mention rewriting
    # ------------------------------------------------------------------
    def run_table10_rewriting(
        self,
        domains: Sequence[str] = ("lego", "yugioh"),
    ) -> List[Dict[str, object]]:
        """Recall / N.Acc of BLINK trained on Exact Match vs Syn vs Syn* data."""
        rows: List[Dict[str, object]] = []
        for domain in domains:
            bundle = self.bundle(domain, include_syn_star=True)
            for source_name in ("exact_match", "syn", "syn_star"):
                data = bundle.by_name(source_name)
                metrics = self._evaluate(self.train_blink(data, domain, seed=18), domain)
                rows.append({"domain": DISPLAY_NAMES[domain], "data": source_name, **metrics})
        return rows

    # ------------------------------------------------------------------
    # Table XI — ROUGE-1 of generated mentions
    # ------------------------------------------------------------------
    def run_table11_rouge(
        self,
        domains: Sequence[str] = ("lego", "yugioh"),
        sample_size: int = 60,
    ) -> List[Dict[str, object]]:
        """ROUGE-1 F1 of Exact Match / Syn / Syn* mentions vs golden mentions."""
        rows: List[Dict[str, object]] = []
        for domain in domains:
            bundle = self.bundle(domain, include_syn_star=True)
            golden_pool = [mention.surface for mention in self.splits[domain].test]
            rng = np.random.default_rng(derive_seed(self.config.seed, "rouge", domain))
            row: Dict[str, object] = {"domain": DISPLAY_NAMES[domain]}
            for source_name in ("exact_match", "syn", "syn_star"):
                candidates = [pair.mention.surface for pair in bundle.by_name(source_name)]
                if not candidates:
                    row[source_name] = 0.0
                    continue
                size = min(sample_size, len(candidates), len(golden_pool))
                candidate_sample = [candidates[i] for i in rng.choice(len(candidates), size=size, replace=False)]
                golden_sample = [golden_pool[i] for i in rng.choice(len(golden_pool), size=size, replace=False)]
                row[source_name] = round(corpus_rouge_1_f1(candidate_sample, golden_sample), 2)
            rows.append(row)
        return rows
