"""Text normalisation used throughout tokenisation and name matching.

Entity linking is sensitive to trivial surface differences (case,
punctuation, disambiguation suffixes), so both the Name Matching baseline and
the exact-match weak-supervision step normalise strings the same way.
"""

from __future__ import annotations

import re
import unicodedata
from typing import List

_WHITESPACE_RE = re.compile(r"\s+")
_PUNCTUATION_RE = re.compile(r"[^\w\s']", flags=re.UNICODE)
_DISAMBIGUATION_RE = re.compile(r"\s*\(([^)]*)\)\s*$")
_TOKEN_RE = re.compile(r"[a-z0-9']+")


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""
    return _WHITESPACE_RE.sub(" ", text).strip()


def normalize_text(text: str) -> str:
    """Lowercase, strip accents and punctuation, collapse whitespace."""
    if not text.isascii():
        # Accent stripping only matters for non-ASCII input; NFKD is the
        # identity on ASCII, so the common case skips the per-character scan.
        text = unicodedata.normalize("NFKD", text)
        text = "".join(char for char in text if not unicodedata.combining(char))
    text = text.lower()
    text = _PUNCTUATION_RE.sub(" ", text)
    return normalize_whitespace(text)


def simple_tokenize(text: str) -> List[str]:
    """Split normalised text into lowercase word tokens."""
    return _TOKEN_RE.findall(normalize_text(text))


def strip_disambiguation(title: str) -> str:
    """Remove a trailing parenthesised disambiguation phrase from a title.

    ``"SORA (satellite)"`` → ``"SORA"``.  Titles without such a phrase are
    returned unchanged.  This mirrors the paper's *Multiple Categories*
    definition ("title text is the mention text followed by a disambiguation
    phrase") and the self-match seed heuristic for zero-shot transfer.
    """
    return _DISAMBIGUATION_RE.sub("", title).strip()


def disambiguation_phrase(title: str) -> str:
    """Return the parenthesised disambiguation phrase of a title, or ''."""
    match = _DISAMBIGUATION_RE.search(title)
    return match.group(1).strip() if match else ""


def has_disambiguation(title: str) -> bool:
    """True when the title carries a disambiguation phrase."""
    return bool(_DISAMBIGUATION_RE.search(title))


def token_overlap_ratio(left: str, right: str) -> float:
    """Jaccard overlap between the token sets of two strings (0 when empty)."""
    left_tokens = set(simple_tokenize(left))
    right_tokens = set(simple_tokenize(right))
    if not left_tokens or not right_tokens:
        return 0.0
    return len(left_tokens & right_tokens) / len(left_tokens | right_tokens)
