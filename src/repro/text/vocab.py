"""Vocabulary mapping tokens to integer ids.

The vocabulary reserves special tokens used by the encoders and the seq2seq
rewriter (padding, unknown, begin/end of sequence, the ``summarize:`` task
prefix, and T5-style sentinel tokens for the denoising objective).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

PAD_TOKEN = "<pad>"
UNK_TOKEN = "<unk>"
BOS_TOKEN = "<bos>"
EOS_TOKEN = "<eos>"
SEP_TOKEN = "<sep>"
MENTION_START = "<m>"
MENTION_END = "</m>"
SUMMARIZE_TOKEN = "<summarize>"
NUM_SENTINELS = 8

SPECIAL_TOKENS: List[str] = [
    PAD_TOKEN,
    UNK_TOKEN,
    BOS_TOKEN,
    EOS_TOKEN,
    SEP_TOKEN,
    MENTION_START,
    MENTION_END,
    SUMMARIZE_TOKEN,
] + [f"<extra_id_{i}>" for i in range(NUM_SENTINELS)]


def sentinel_token(index: int) -> str:
    """Return the ``index``-th sentinel token (``<extra_id_i>``)."""
    if not 0 <= index < NUM_SENTINELS:
        raise ValueError(f"sentinel index {index} out of range [0, {NUM_SENTINELS})")
    return f"<extra_id_{index}>"


class Vocabulary:
    """Token ↔ id mapping with special-token handling."""

    def __init__(self, tokens: Optional[Iterable[str]] = None) -> None:
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in SPECIAL_TOKENS:
            self._add(token)
        for token in tokens or []:
            self._add(token)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add(self, token: str) -> int:
        if token in self._token_to_id:
            return self._token_to_id[token]
        index = len(self._id_to_token)
        self._token_to_id[token] = index
        self._id_to_token.append(token)
        return index

    def add_token(self, token: str) -> int:
        """Add a token (idempotent) and return its id."""
        return self._add(token)

    @classmethod
    def build(
        cls,
        texts: Iterable[Sequence[str]],
        max_size: Optional[int] = None,
        min_frequency: int = 1,
    ) -> "Vocabulary":
        """Build a vocabulary from pre-tokenised texts by frequency."""
        counts: Counter = Counter()
        for tokens in texts:
            counts.update(tokens)
        most_common = [
            token
            for token, count in counts.most_common()
            if count >= min_frequency and token not in SPECIAL_TOKENS
        ]
        budget = None if max_size is None else max(0, max_size - len(SPECIAL_TOKENS))
        if budget is not None:
            most_common = most_common[:budget]
        return cls(most_common)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK_TOKEN]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS_TOKEN]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._token_to_id[SEP_TOKEN]

    @property
    def summarize_id(self) -> int:
        return self._token_to_id[SUMMARIZE_TOKEN]

    def sentinel_id(self, index: int) -> int:
        return self._token_to_id[sentinel_token(index)]

    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self.unk_id)

    def id_to_token(self, index: int) -> str:
        if not 0 <= index < len(self._id_to_token):
            raise IndexError(f"token id {index} out of range")
        return self._id_to_token[index]

    def encode_tokens(self, tokens: Sequence[str]) -> List[int]:
        return [self.token_to_id(token) for token in tokens]

    def decode_ids(self, ids: Sequence[int], skip_special: bool = True) -> List[str]:
        tokens = [self.id_to_token(int(i)) for i in ids]
        if skip_special:
            tokens = [t for t in tokens if t not in SPECIAL_TOKENS]
        return tokens

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the vocabulary to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"tokens": self._id_to_token}
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Vocabulary":
        """Load a vocabulary written by :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        vocabulary = cls()
        for token in payload["tokens"]:
            vocabulary._add(token)
        return vocabulary
