"""Tokeniser producing fixed-length id sequences for the encoders.

The tokeniser is intentionally simple (word-level with normalisation) — the
paper's BERT/T5 word-piece vocabularies are a pre-training artefact we cannot
reuse offline — but it exposes the same interface a sub-word tokeniser would:
``encode`` → padded id array, ``decode`` → text, plus helpers that build the
structured inputs used by the linking models:

* mention-side input:  ``[bos] left-context <m> mention </m> right-context``
* entity-side input:   ``[bos] title <sep> description``
* cross-encoder input: mention-side ``<sep>`` entity-side
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .normalization import simple_tokenize
from .vocab import (
    BOS_TOKEN,
    EOS_TOKEN,
    MENTION_END,
    MENTION_START,
    SEP_TOKEN,
    SUMMARIZE_TOKEN,
    Vocabulary,
)


@dataclass
class EncodedPair:
    """A padded (mention, entity) pair ready for the bi-encoder."""

    mention_ids: np.ndarray
    entity_ids: np.ndarray


class Tokenizer:
    """Word-level tokeniser bound to a :class:`Vocabulary`."""

    def __init__(self, vocabulary: Vocabulary, max_length: int = 48) -> None:
        if max_length < 4:
            raise ValueError("max_length must be at least 4")
        self.vocabulary = vocabulary
        self.max_length = max_length

    # ------------------------------------------------------------------
    # Plain text encoding
    # ------------------------------------------------------------------
    def tokenize(self, text: str) -> List[str]:
        """Normalise and split text into word tokens."""
        return simple_tokenize(text)

    def encode(
        self,
        text: str,
        max_length: Optional[int] = None,
        add_bos: bool = True,
        add_eos: bool = False,
    ) -> np.ndarray:
        """Encode text to a fixed-length padded id vector."""
        tokens = self.tokenize(text)
        if add_bos:
            tokens = [BOS_TOKEN] + tokens
        if add_eos:
            tokens = tokens + [EOS_TOKEN]
        return self._pad(self.vocabulary.encode_tokens(tokens), max_length, keep_eos=add_eos)

    def encode_batch(self, texts: Sequence[str], max_length: Optional[int] = None) -> np.ndarray:
        """Encode a batch of texts into a 2-D id matrix."""
        return np.stack([self.encode(text, max_length=max_length) for text in texts])

    def decode(self, ids: Iterable[int]) -> str:
        """Turn an id sequence back into a (normalised) string."""
        return " ".join(self.vocabulary.decode_ids(list(ids)))

    # ------------------------------------------------------------------
    # Structured linking inputs
    # ------------------------------------------------------------------
    def mention_token_parts(
        self,
        mention_text: str,
        left_context: str = "",
        right_context: str = "",
    ) -> Tuple[List[str], List[str], List[str]]:
        """Tokenized ``(left_context, surface, right_context)`` of a mention."""
        return (
            self.tokenize(left_context),
            self.tokenize(mention_text),
            self.tokenize(right_context),
        )

    def mention_tokens(
        self,
        mention_text: str,
        left_context: str = "",
        right_context: str = "",
    ) -> List[str]:
        """The canonical mention-side token sequence.

        ``[bos] left <m> surface </m> right`` — the single source of truth
        for the bi-encoder mention input *and* the mention half of the
        cross-encoder input (:meth:`encode_cross` prepends exactly this).
        """
        return self.assemble_mention_tokens(
            *self.mention_token_parts(mention_text, left_context, right_context)
        )

    @staticmethod
    def assemble_mention_tokens(
        left: List[str], surface: List[str], right: List[str]
    ) -> List[str]:
        """Assemble already-tokenized mention parts into the canonical sequence."""
        return [BOS_TOKEN] + left + [MENTION_START] + surface + [MENTION_END] + right

    def encode_mention(
        self,
        mention_text: str,
        left_context: str = "",
        right_context: str = "",
        max_length: Optional[int] = None,
    ) -> np.ndarray:
        """Encode a mention in context with mention boundary markers."""
        tokens = self.mention_tokens(mention_text, left_context, right_context)
        return self._pad(self.vocabulary.encode_tokens(tokens), max_length)

    def encode_entity(
        self,
        title: str,
        description: str,
        max_length: Optional[int] = None,
    ) -> np.ndarray:
        """Encode an entity as ``title <sep> description``."""
        tokens = [BOS_TOKEN] + self.tokenize(title) + [SEP_TOKEN] + self.tokenize(description)
        return self._pad(self.vocabulary.encode_tokens(tokens), max_length)

    def encode_cross(
        self,
        mention_text: str,
        left_context: str,
        right_context: str,
        title: str,
        description: str,
        max_length: Optional[int] = None,
    ) -> np.ndarray:
        """Encode the concatenated mention/entity input for the cross-encoder."""
        tokens = (
            self.mention_tokens(mention_text, left_context, right_context)
            + [SEP_TOKEN]
            + self.tokenize(title)
            + [SEP_TOKEN]
            + self.tokenize(description)
        )
        return self._pad(self.vocabulary.encode_tokens(tokens), max_length)

    def encode_summarize_source(self, description: str, max_length: Optional[int] = None) -> np.ndarray:
        """Encode a rewriter source: ``<summarize> description`` (Eq. 1/2)."""
        tokens = [BOS_TOKEN, SUMMARIZE_TOKEN] + self.tokenize(description)
        return self._pad(self.vocabulary.encode_tokens(tokens), max_length)

    def encode_target(self, text: str, max_length: Optional[int] = None) -> np.ndarray:
        """Encode a decoder target: ``<bos> tokens <eos>`` padded.

        The trailing ``<eos>`` survives truncation: a target longer than
        ``max_length`` keeps its stop symbol in the final position, so the
        seq2seq rewriter always sees a termination signal.
        """
        tokens = [BOS_TOKEN] + self.tokenize(text) + [EOS_TOKEN]
        return self._pad(self.vocabulary.encode_tokens(tokens), max_length, keep_eos=True)

    # ------------------------------------------------------------------
    # Vocabulary construction helper
    # ------------------------------------------------------------------
    @classmethod
    def from_texts(
        cls,
        texts: Iterable[str],
        max_vocab_size: int = 4096,
        max_length: int = 48,
        min_frequency: int = 1,
    ) -> "Tokenizer":
        """Build a tokenizer whose vocabulary covers ``texts``."""
        tokenised = (simple_tokenize(text) for text in texts)
        vocabulary = Vocabulary.build(tokenised, max_size=max_vocab_size, min_frequency=min_frequency)
        return cls(vocabulary, max_length=max_length)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pad(self, ids: List[int], max_length: Optional[int], keep_eos: bool = False) -> np.ndarray:
        limit = self.max_length if max_length is None else max_length
        truncated = len(ids) > limit
        ids = ids[:limit]
        padded = np.full(limit, self.vocabulary.pad_id, dtype=np.int64)
        padded[: len(ids)] = ids
        if keep_eos and truncated:
            padded[limit - 1] = self.vocabulary.eos_id
        return padded

    @property
    def vocab_size(self) -> int:
        return len(self.vocabulary)

    @property
    def pad_id(self) -> int:
        return self.vocabulary.pad_id
