"""Text substrate: normalisation, vocabulary, tokenisation and ROUGE."""

from .normalization import (
    disambiguation_phrase,
    has_disambiguation,
    normalize_text,
    normalize_whitespace,
    simple_tokenize,
    strip_disambiguation,
    token_overlap_ratio,
)
from .rouge import (
    RougeScore,
    best_match_rouge_1_f1,
    corpus_rouge_1_f1,
    rouge_1,
    rouge_2,
    rouge_l,
    rouge_n,
)
from .tokenizer import EncodedPair, Tokenizer
from .vocab import (
    BOS_TOKEN,
    EOS_TOKEN,
    MENTION_END,
    MENTION_START,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    SUMMARIZE_TOKEN,
    UNK_TOKEN,
    Vocabulary,
    sentinel_token,
)

__all__ = [
    "normalize_text",
    "normalize_whitespace",
    "simple_tokenize",
    "strip_disambiguation",
    "disambiguation_phrase",
    "has_disambiguation",
    "token_overlap_ratio",
    "RougeScore",
    "rouge_n",
    "rouge_1",
    "rouge_2",
    "rouge_l",
    "corpus_rouge_1_f1",
    "best_match_rouge_1_f1",
    "Tokenizer",
    "EncodedPair",
    "Vocabulary",
    "sentinel_token",
    "PAD_TOKEN",
    "UNK_TOKEN",
    "BOS_TOKEN",
    "EOS_TOKEN",
    "SEP_TOKEN",
    "MENTION_START",
    "MENTION_END",
    "SUMMARIZE_TOKEN",
    "SPECIAL_TOKENS",
]
