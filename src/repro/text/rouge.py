"""ROUGE metrics (ROUGE-1, ROUGE-2, ROUGE-L).

Table XI of the paper reports ROUGE-1 F1 between golden mentions and mentions
produced by Exact Match / Syn / Syn*.  This is a dependency-free
reimplementation of the standard recall/precision/F1 formulation over
n-gram multisets (and LCS for ROUGE-L).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence

from .normalization import simple_tokenize


@dataclass(frozen=True)
class RougeScore:
    """Precision / recall / F1 triple for one ROUGE variant."""

    precision: float
    recall: float
    f1: float


def _ngrams(tokens: Sequence[str], order: int) -> Counter:
    if order <= 0:
        raise ValueError("ngram order must be positive")
    return Counter(tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1))


def _prf(matches: float, candidate_total: float, reference_total: float) -> RougeScore:
    precision = matches / candidate_total if candidate_total else 0.0
    recall = matches / reference_total if reference_total else 0.0
    f1 = 2 * precision * recall / (precision + recall) if (precision + recall) else 0.0
    return RougeScore(precision=precision, recall=recall, f1=f1)


def rouge_n(candidate: str, reference: str, order: int = 1) -> RougeScore:
    """ROUGE-N between a candidate and a reference string."""
    candidate_tokens = simple_tokenize(candidate)
    reference_tokens = simple_tokenize(reference)
    candidate_ngrams = _ngrams(candidate_tokens, order) if len(candidate_tokens) >= order else Counter()
    reference_ngrams = _ngrams(reference_tokens, order) if len(reference_tokens) >= order else Counter()
    overlap = sum((candidate_ngrams & reference_ngrams).values())
    return _prf(overlap, sum(candidate_ngrams.values()), sum(reference_ngrams.values()))


def _lcs_length(left: Sequence[str], right: Sequence[str]) -> int:
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    for left_token in left:
        current = [0] * (len(right) + 1)
        for j, right_token in enumerate(right, start=1):
            if left_token == right_token:
                current[j] = previous[j - 1] + 1
            else:
                current[j] = max(previous[j], current[j - 1])
        previous = current
    return previous[-1]


def rouge_l(candidate: str, reference: str) -> RougeScore:
    """ROUGE-L (longest common subsequence) between candidate and reference."""
    candidate_tokens = simple_tokenize(candidate)
    reference_tokens = simple_tokenize(reference)
    lcs = _lcs_length(candidate_tokens, reference_tokens)
    return _prf(lcs, len(candidate_tokens), len(reference_tokens))


def rouge_1(candidate: str, reference: str) -> RougeScore:
    """ROUGE-1, the primary metric of Table XI."""
    return rouge_n(candidate, reference, order=1)


def rouge_2(candidate: str, reference: str) -> RougeScore:
    """ROUGE-2 bigram overlap."""
    return rouge_n(candidate, reference, order=2)


def corpus_rouge_1_f1(candidates: Sequence[str], references: Sequence[str]) -> float:
    """Mean ROUGE-1 F1 over aligned candidate / reference lists (as %)."""
    if len(candidates) != len(references):
        raise ValueError("candidates and references must have equal length")
    if not candidates:
        return 0.0
    scores = [rouge_1(c, r).f1 for c, r in zip(candidates, references)]
    return 100.0 * sum(scores) / len(scores)


def best_match_rouge_1_f1(candidates: Sequence[str], references: Sequence[str]) -> float:
    """Mean over candidates of the best ROUGE-1 F1 against any reference (as %).

    The paper compares generated mentions against *sampled* golden mentions
    from the domain rather than aligned pairs, so we score each candidate by
    its best match in the reference pool.
    """
    if not candidates or not references:
        return 0.0
    totals: List[float] = []
    for candidate in candidates:
        totals.append(max(rouge_1(candidate, reference).f1 for reference in references))
    return 100.0 * sum(totals) / len(totals)
