"""Self-healing for the replica cluster: supervisor, breakers, brownout.

PR 6 built the pool + router with *manual* recovery — a dead slot stayed
dead until someone called :meth:`~repro.serving.cluster.ReplicaPool.restart`,
and a flapping replica kept receiving traffic until it fully died.  This
module closes the loop:

- :class:`CircuitBreaker` — per-replica closed/open/half-open state machine
  over a windowed error rate, consulted by ``Router`` dispatch so flapping
  replicas are routed around *before* they die.
- :class:`RestartPolicy` — how aggressively the supervisor repairs slots:
  exponential backoff with seeded jitter, a restart budget per rolling
  window, and crash-loop detection that quarantines a slot that keeps
  dying right after restart.
- :class:`BrownoutController` — hysteresis over the router's aggregate
  queue depth; under sustained pressure it flips the cluster into the
  degraded pipeline (shrunken retrieval top-k, rerank off) and restores
  full quality once pressure clears.
- :class:`Supervisor` — the background thread tying it together: runs
  ``Router.health_check()`` on a timer, restarts dead slots under the
  policy, records MTTR and quarantines into :class:`ClusterStats`, and
  drives the brownout controller.

Everything takes an injectable ``clock`` so the state machines are unit
testable without sleeping.
"""

from __future__ import annotations

import collections
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

from .cluster import DEAD, STOPPED, Router

__all__ = [
    "BreakerPolicy",
    "BrownoutController",
    "BrownoutPolicy",
    "CircuitBreaker",
    "RestartPolicy",
    "Supervisor",
]

#: Breaker state names (strings, matching the replica lifecycle idiom).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Default supervisor probe period (seconds).  Small enough that MTTR is
#: dominated by replica warm-up, not detection latency.
DEFAULT_SUPERVISOR_INTERVAL = 0.05


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning for one :class:`CircuitBreaker`.

    ``window`` recent outcomes are kept; once at least ``min_volume`` of
    them exist and the failure fraction reaches ``error_threshold`` the
    breaker opens.  After ``cooldown_seconds`` it admits up to
    ``half_open_max_trials`` concurrent probe requests; ``half_open_successes``
    consecutive probe successes close it again, any probe failure re-opens.
    """

    window: int = 20
    min_volume: int = 5
    error_threshold: float = 0.5
    cooldown_seconds: float = 0.25
    half_open_max_trials: int = 2
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= self.min_volume <= self.window:
            raise ValueError("min_volume must be in [1, window]")
        if not 0.0 < self.error_threshold <= 1.0:
            raise ValueError("error_threshold must be in (0, 1]")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be non-negative")
        if self.half_open_max_trials < 1:
            raise ValueError("half_open_max_trials must be >= 1")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")


class CircuitBreaker:
    """Closed/open/half-open breaker over a count window of outcomes.

    The router consults :meth:`allows` before dispatching to a slot and
    reports each request's fate through :meth:`record_success` /
    :meth:`record_failure`.  Deadline expiries report neither — a replica
    that drops late work is healthy.

    All transitions happen under the internal lock; ``clock`` is
    injectable so tests can drive the cooldown without sleeping.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.policy = policy or BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: Deque[bool] = collections.deque(
            maxlen=self.policy.window
        )
        self._opened_at = 0.0
        self._half_open_inflight = 0
        self._half_open_successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allows(self) -> bool:
        """Whether dispatch to this slot is currently admitted.

        An open breaker past its cooldown transitions to half-open here,
        so the first caller after the cooldown becomes the probe.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.policy.cooldown_seconds:
                    return False
                self._state = HALF_OPEN
                self._half_open_inflight = 0
                self._half_open_successes = 0
            return self._half_open_inflight < self.policy.half_open_max_trials

    def on_dispatch(self) -> None:
        """Called once per actual dispatch; counts half-open probes."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._half_open_inflight += 1

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._half_open_inflight = max(0, self._half_open_inflight - 1)
                self._half_open_successes += 1
                if self._half_open_successes >= self.policy.half_open_successes:
                    self._close_locked()
            elif self._state == CLOSED:
                self._outcomes.append(True)
            # OPEN: a straggler from before the trip — no new information.

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._open_locked()  # probe failed — back to cooldown
            elif self._state == CLOSED:
                self._outcomes.append(False)
                if len(self._outcomes) >= self.policy.min_volume:
                    failures = sum(1 for ok in self._outcomes if not ok)
                    if failures / len(self._outcomes) >= self.policy.error_threshold:
                        self._open_locked()

    def reset(self) -> None:
        """Force-close (the slot was just replaced with a fresh replica)."""
        with self._lock:
            self._close_locked()

    def _close_locked(self) -> None:
        self._state = CLOSED
        self._outcomes.clear()
        self._half_open_inflight = 0
        self._half_open_successes = 0

    def _open_locked(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._outcomes.clear()
        self._half_open_inflight = 0
        self._half_open_successes = 0


# ----------------------------------------------------------------------
# Restart policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RestartPolicy:
    """How aggressively the supervisor repairs dead slots.

    Consecutive failures of the *same* slot back off exponentially from
    ``initial_backoff_seconds`` (×``multiplier`` per strike, capped at
    ``max_backoff_seconds``, with up to ``jitter`` fractional seeded noise
    so replicas don't thunder-herd).  At most ``budget`` restarts happen
    per rolling ``budget_window_seconds`` across the whole pool.  A slot
    whose replica dies within ``min_uptime_seconds`` of standing racks up
    a crash-loop strike; ``crash_loop_threshold`` strikes quarantine it —
    no further restarts, surfaced via ``ClusterStats.quarantined``.
    """

    initial_backoff_seconds: float = 0.05
    max_backoff_seconds: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5
    budget: int = 8
    budget_window_seconds: float = 30.0
    crash_loop_threshold: int = 3
    min_uptime_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.initial_backoff_seconds < 0:
            raise ValueError("initial_backoff_seconds must be non-negative")
        if self.max_backoff_seconds < self.initial_backoff_seconds:
            raise ValueError("max_backoff_seconds must be >= initial_backoff_seconds")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.budget < 1:
            raise ValueError("budget must be >= 1")
        if self.budget_window_seconds <= 0:
            raise ValueError("budget_window_seconds must be positive")
        if self.crash_loop_threshold < 1:
            raise ValueError("crash_loop_threshold must be >= 1")
        if self.min_uptime_seconds < 0:
            raise ValueError("min_uptime_seconds must be non-negative")

    def backoff_for(self, strikes: int, rng: random.Random) -> float:
        """Delay before the next restart attempt after ``strikes``
        consecutive short-lived generations (0 strikes → no delay)."""
        if strikes <= 0:
            return 0.0
        base = self.initial_backoff_seconds * self.multiplier ** (strikes - 1)
        base = min(base, self.max_backoff_seconds)
        return base * (1.0 + self.jitter * rng.random())


# ----------------------------------------------------------------------
# Brownout controller
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BrownoutPolicy:
    """Hysteresis thresholds for degraded-mode engagement.

    Brownout engages after aggregate queue depth stays at or above
    ``enter_depth`` for ``enter_sustain_seconds``; it disengages after
    depth stays at or below ``exit_depth`` for ``exit_sustain_seconds``.
    ``exit_depth < enter_depth`` gives the hysteresis band that prevents
    flapping at the boundary.
    """

    enter_depth: int = 64
    exit_depth: int = 16
    enter_sustain_seconds: float = 0.2
    exit_sustain_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.enter_depth < 1:
            raise ValueError("enter_depth must be >= 1")
        if not 0 <= self.exit_depth < self.enter_depth:
            raise ValueError("exit_depth must be in [0, enter_depth)")
        if self.enter_sustain_seconds < 0 or self.exit_sustain_seconds < 0:
            raise ValueError("sustain durations must be non-negative")


class BrownoutController:
    """Pure decision logic: feed it depth samples, it emits mode flips.

    :meth:`observe` returns ``True`` to engage brownout, ``False`` to
    restore full quality, or ``None`` for no change.  The caller (the
    supervisor, or a test) applies the decision via
    ``Router.set_degraded``.  Stateless about wall time beyond the
    timestamps it is given, so tests drive it with a fake clock.
    """

    def __init__(self, policy: Optional[BrownoutPolicy] = None) -> None:
        self.policy = policy or BrownoutPolicy()
        self._engaged = False
        self._above_since: Optional[float] = None
        self._below_since: Optional[float] = None

    @property
    def engaged(self) -> bool:
        return self._engaged

    def observe(self, depth: int, now: float) -> Optional[bool]:
        policy = self.policy
        if not self._engaged:
            if depth >= policy.enter_depth:
                if self._above_since is None:
                    self._above_since = now
                if now - self._above_since >= policy.enter_sustain_seconds:
                    self._engaged = True
                    self._above_since = None
                    return True
            else:
                self._above_since = None
            return None
        if depth <= policy.exit_depth:
            if self._below_since is None:
                self._below_since = now
            if now - self._below_since >= policy.exit_sustain_seconds:
                self._engaged = False
                self._below_since = None
                return False
        else:
            self._below_since = None
        return None


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
class Supervisor:
    """Background repair loop: probe, restart, quarantine, brownout.

    Each tick it runs ``Router.health_check()`` (which also flushes
    silently-dead replicas so their requests requeue), then restarts any
    ``dead``/``stopped`` slot that is off backoff, inside the restart
    budget and not quarantined.  MTTR (death detected → fresh replica
    standing) and quarantines land in ``router.stats``; quarantines are
    re-asserted every tick so a mid-run ``stats.reset()`` cannot hide
    one.  With a :class:`BrownoutController` attached it also samples
    ``router.pending`` and flips ``router.set_degraded`` on the
    controller's say-so.

    Use as a context manager or call :meth:`close`; the loop waits on a
    stop event with the probe interval as timeout, so shutdown is prompt
    and bounded.
    """

    def __init__(
        self,
        router: Router,
        policy: Optional[RestartPolicy] = None,
        interval: float = DEFAULT_SUPERVISOR_INTERVAL,
        brownout: Optional[BrownoutController] = None,
        seed: int = 0,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.router = router
        self.policy = policy or RestartPolicy()
        self.interval = interval
        self.brownout = brownout
        self._clock = clock
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._down_since: Dict[int, float] = {}
        self._next_attempt_at: Dict[int, float] = {}
        self._strikes: Dict[int, int] = {}
        self._restarted_at: Dict[int, float] = {}
        self._quarantined: set = set()
        self._restart_times: Deque[float] = collections.deque()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="cluster-supervisor", daemon=True
        )
        self._thread.start()

    # -- lifecycle ------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop the repair loop (does not close the router)."""
        self._stop.set()
        self._thread.join(timeout)

    def __enter__(self) -> "Supervisor":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    @property
    def quarantined(self) -> Tuple[int, ...]:
        """Slots withdrawn from repair after crash-looping."""
        with self._lock:
            return tuple(sorted(self._quarantined))

    # -- repair loop ----------------------------------------------------
    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # noqa: BLE001 - repair must outlive any tick
                # A tick racing a concurrent close/kill can throw; the
                # supervisor's job is to try again next tick, not to die.
                continue

    def tick(self) -> None:
        """One probe-and-repair cycle (public so tests can step it)."""
        now = self._clock()
        probes = self.router.health_check()
        for slot, probe in enumerate(probes):
            if probe.state not in (DEAD, STOPPED):
                continue
            self._repair(slot, now)
        if self.brownout is not None:
            decision = self.brownout.observe(self.router.pending, self._clock())
            if decision is not None:
                self.router.set_degraded(decision)

    def _repair(self, slot: int, now: float) -> None:
        policy = self.policy
        with self._lock:
            if slot in self._quarantined:
                # Re-assert every tick: ClusterStats.reset() clears the
                # quarantine set, and a hidden quarantine would read as a
                # healthy pool in the benchmark payload.
                self.router.stats.record_quarantine(slot)
                return
            if slot not in self._down_since:
                self._down_since[slot] = now
                # Crash-loop scoring: dying this soon after our own
                # restart counts as a strike; surviving past min_uptime
                # clears the slate.
                restarted_at = self._restarted_at.get(slot)
                if (
                    restarted_at is not None
                    and now - restarted_at < policy.min_uptime_seconds
                ):
                    self._strikes[slot] = self._strikes.get(slot, 0) + 1
                else:
                    self._strikes[slot] = 0
                if self._strikes[slot] >= policy.crash_loop_threshold:
                    self._quarantined.add(slot)
                    self.router.stats.record_quarantine(slot)
                    return
                self._next_attempt_at[slot] = now + policy.backoff_for(
                    self._strikes[slot], self._rng
                )
            if now < self._next_attempt_at.get(slot, 0.0):
                return
            cutoff = now - policy.budget_window_seconds
            while self._restart_times and self._restart_times[0] < cutoff:
                self._restart_times.popleft()
            if len(self._restart_times) >= policy.budget:
                return  # budget exhausted — retry once the window rolls
        try:
            self.router.restart_replica(slot)
        except Exception:  # noqa: BLE001 - failed repair = another strike
            # The slot stays in _down_since: it IS still down, the repair
            # attempt just failed.  Keeping it marked preserves the strike
            # count across ticks (so a permanently broken slot quarantines)
            # and keeps MTTR honest from the *first* detection.
            with self._lock:
                self._strikes[slot] = self._strikes.get(slot, 0) + 1
                if self._strikes[slot] >= policy.crash_loop_threshold:
                    self._quarantined.add(slot)
                    self.router.stats.record_quarantine(slot)
                else:
                    self._next_attempt_at[slot] = self._clock() + (
                        policy.backoff_for(self._strikes[slot], self._rng)
                    )
            return
        done = self._clock()
        with self._lock:
            down_at = self._down_since.pop(slot, now)
            self._restarted_at[slot] = done
            self._restart_times.append(done)
            self._next_attempt_at.pop(slot, None)
        self.router.stats.record_restart(slot, done - down_at)
