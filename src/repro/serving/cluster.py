"""Replica pool + router: multi-worker serving with load shedding.

The single :class:`~repro.serving.service.LinkingService` caps throughput at
one scheduler thread feeding one pipeline, and any stall freezes the whole
service.  This module scales the front door out to N workers:

* :class:`Replica` — the worker interface: submit/pending/probe plus the
  lifecycle verbs (``drain``, ``kill``) and fault hooks (``set_delay``,
  ``freeze``/``unfreeze``) the chaos tests drive.
* :class:`ThreadReplica` — a replica backed by its own scheduler thread and
  an :meth:`~repro.serving.pipeline.EntityLinkingPipeline.clone` of the
  pipeline; the heavyweight read-only state (encoder weights, the index
  snapshot) is shared across the pool.
* :class:`ProcessReplica` — the same interface backed by a worker *process*
  (fork by default); batches cross a pipe, faults and batching stay on the
  parent side, so every lifecycle/fault path behaves identically.
* :class:`ReplicaPool` — owns the replica slots and their factories:
  graceful drain, restart (a fresh clone from the shared snapshot state),
  kill, and construction straight from an on-disk index snapshot.
* :class:`Router` — the front door.  Exposes the familiar service API
  (``submit`` / ``link`` / ``close`` / ``warm_up`` / ``pending`` /
  ``peak_pending`` / ``stats``) over the pool with:

  - **world-affinity dispatch** — a mention's world hashes to a home
    replica, keeping per-world cache locality, falling back to balancing
    only when the home replica is unhealthy;
  - **least-pending balancing** — ties broken by a seeded permutation, so
    the same seed and replica count always produce the same assignment;
  - **per-class admission control** — when the aggregate pending depth
    (the live value behind the ``peak_pending`` high-watermark) crosses the
    class's watermark, the submit is *shed*: the returned future already
    holds a :class:`RejectedError`.  Shedding is explicit and immediate,
    never a timeout;
  - **automatic requeue** — a dead replica's in-flight requests fail with
    :class:`ReplicaDiedError` and the router resubmits them to healthy
    replicas; callers only see an error when every retry is exhausted.

* :class:`FaultPlan` — a timed script of replica injuries (kill / slow /
  freeze / unfreeze / drain / restart) that the load harness replays
  against the router mid-scenario, so the degraded-replica benchmarks can
  assert graceful degradation instead of collapse.

Example::

    pool = ReplicaPool.from_pipeline(pipeline, replicas=4)
    router = Router(pool, admission=AdmissionPolicy(watermark=512), seed=13)
    router.warm_up()
    future = router.submit(mention)             # routed + balanced
    result = future.result(timeout=1.0)
    router.stats.snapshot()["aggregate"]        # merged per-replica counters
    router.close()
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..kb.entity import Mention
from ..linking.biencoder import BiEncoder
from ..linking.crossencoder import CrossEncoder
from .pipeline import (
    DEFAULT_BATCH_SIZE,
    LATENCY_WINDOW,
    EntityLinkingPipeline,
    LinkingResult,
    PipelineStats,
)
from .service import (
    DEFAULT_MAX_WAIT_MS,
    DeadlineExpiredError,
    LinkingService,
    OverCapacityError,
    RejectedError,
    warm_up_index,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .resilience import BreakerPolicy

#: Replica lifecycle states.
HEALTHY = "healthy"
DRAINING = "draining"
STOPPED = "stopped"
DEAD = "dead"

#: Poll period of loops that must stay responsive to kill/unfreeze (seconds).
FAULT_POLL_SECONDS = 0.02

#: Recognised fault-plan actions.
FAULT_ACTIONS = ("kill", "slow", "freeze", "unfreeze", "drain", "restart")


class BreakerOpenError(RejectedError):
    """Every healthy replica's circuit breaker is open — dispatch refused.

    Non-retryable: the breakers exist precisely because those replicas keep
    failing, so bouncing the request between them only adds load.  Callers
    should back off and retry after the breaker cooldown.
    """


class ReplicaDiedError(RuntimeError):
    """A replica died (kill/crash) with this request outstanding.

    The router treats this error as retryable and requeues the request on a
    healthy replica; callers only observe it when no healthy replica remains
    or the retry budget is exhausted.  Contrast the non-retryable
    :class:`~repro.serving.service.RejectedError` taxonomy: "over capacity"
    (:class:`~repro.serving.service.OverCapacityError`), "too late"
    (:class:`~repro.serving.service.DeadlineExpiredError`) and "replica
    unhealthy" (:class:`BreakerOpenError`).
    """


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class FaultInjector:
    """Per-replica fault switchboard: slow-down, freeze and thaw.

    The replica's scheduler passes through :meth:`pause_point` before every
    batch.  ``freeze`` holds it there (queue depth grows, nothing completes)
    until :meth:`unfreeze` — or until the replica is aborted, so a kill
    always releases a frozen worker.  ``set_delay`` adds a per-batch sleep,
    modelling a degraded-but-alive replica the router should route around.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._resume = threading.Condition(self._lock)
        self._delay = 0.0
        self._frozen = False

    @property
    def delay(self) -> float:
        with self._lock:
            return self._delay

    @property
    def frozen(self) -> bool:
        with self._lock:
            return self._frozen

    def set_delay(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("delay must be non-negative")
        with self._lock:
            self._delay = seconds

    def freeze(self) -> None:
        with self._lock:
            self._frozen = True

    def unfreeze(self) -> None:
        with self._lock:
            self._frozen = False
            self._resume.notify_all()

    def pause_point(self, aborted: Callable[[], bool]) -> None:
        """Block while frozen, then serve the injected delay.

        ``aborted`` is polled so a killed replica escapes both the freeze
        and the delay within :data:`FAULT_POLL_SECONDS`.
        """
        with self._resume:
            while self._frozen and not aborted():
                self._resume.wait(timeout=FAULT_POLL_SECONDS)
            delay = self._delay
        if delay > 0:
            deadline = time.perf_counter() + delay
            while not aborted():
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                time.sleep(min(FAULT_POLL_SECONDS, remaining))


class _FaultableService(LinkingService):
    """A :class:`LinkingService` whose flushes pass through a fault gate."""

    def __init__(self, pipeline, faults: FaultInjector, **kwargs) -> None:
        self._faults = faults
        super().__init__(pipeline, **kwargs)

    def _flush(self, batch) -> None:
        self._faults.pause_point(lambda: self.aborted)
        super()._flush(batch)


# ----------------------------------------------------------------------
# Replicas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaHealth:
    """One health probe: lifecycle state plus live queue/progress counters."""

    replica_id: int
    name: str
    state: str
    alive: bool
    pending: int
    processed: int
    frozen: bool
    delay: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "replica_id": self.replica_id,
            "name": self.name,
            "state": self.state,
            "alive": self.alive,
            "pending": self.pending,
            "processed": self.processed,
            "frozen": self.frozen,
            "delay": self.delay,
        }


class Replica:
    """Interface of one pool worker; see :class:`ThreadReplica` for the
    canonical implementation and :class:`ProcessReplica` for the
    process-backed one.

    A replica accepts single-mention submits (returning futures), owns its
    own dynamic micro-batching, and supports two shutdown modes: ``drain``
    (graceful — queued work completes) and ``kill`` (crash-style — every
    outstanding future fails with :class:`ReplicaDiedError` so the router
    can requeue).
    """

    replica_id: int = 0
    name: str = "replica"

    @property
    def state(self) -> str:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        raise NotImplementedError

    @property
    def stats(self) -> PipelineStats:
        raise NotImplementedError

    def submit(
        self, mention: Mention, deadline_at: Optional[float] = None
    ) -> "Future[LinkingResult]":
        raise NotImplementedError

    def probe(self) -> ReplicaHealth:
        raise NotImplementedError

    def drain(self, timeout: Optional[float] = None) -> None:
        raise NotImplementedError

    def kill(self) -> int:
        raise NotImplementedError

    def set_delay(self, seconds: float) -> None:
        raise NotImplementedError

    def freeze(self) -> None:
        raise NotImplementedError

    def unfreeze(self) -> None:
        raise NotImplementedError

    def set_degraded(self, degraded: bool) -> None:
        raise NotImplementedError


class ThreadReplica(Replica):
    """A replica backed by its own scheduler thread and pipeline clone.

    Parameters
    ----------
    pipeline:
        This replica's own pipeline (typically
        :meth:`~repro.serving.pipeline.EntityLinkingPipeline.clone` of a
        shared base, so the index snapshot and encoder weights are shared
        read-only while stats and stage objects are private).
    replica_id / name:
        Slot index and display name within the pool.
    max_batch_size / max_wait_ms:
        Dynamic micro-batching knobs, as on :class:`LinkingService`.
    """

    def __init__(
        self,
        pipeline: EntityLinkingPipeline,
        replica_id: int = 0,
        name: Optional[str] = None,
        max_batch_size: Optional[int] = None,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        start: bool = True,
    ) -> None:
        self.replica_id = replica_id
        self.name = name or f"replica-{replica_id}"
        self.pipeline = pipeline
        self.faults = FaultInjector()
        self._state_lock = threading.Lock()
        self._state = HEALTHY
        self._service = _FaultableService(
            pipeline, self.faults,
            max_batch_size=max_batch_size, max_wait_ms=max_wait_ms, start=start,
        )

    # -- state ----------------------------------------------------------
    @property
    def state(self) -> str:
        with self._state_lock:
            state = self._state
        if state == HEALTHY and not self._service.running:
            # The scheduler thread died without going through drain/kill —
            # report it dead so the router stops routing here.
            with self._state_lock:
                if self._state == HEALTHY:
                    self._state = DEAD
                state = self._state
        return state

    def _set_state(self, state: str) -> None:
        with self._state_lock:
            self._state = state

    @property
    def pending(self) -> int:
        # Outstanding (queued + in-flight), so least-pending balancing sees
        # a replica that is mid-batch as busy, not idle.
        return self._service.outstanding

    @property
    def stats(self) -> PipelineStats:
        return self.pipeline.stats

    # -- request path ---------------------------------------------------
    def submit(
        self, mention: Mention, deadline_at: Optional[float] = None
    ) -> "Future[LinkingResult]":
        if self.state != HEALTHY:
            raise ReplicaDiedError(f"{self.name} is {self.state}")
        try:
            return self._service.submit(mention, deadline_at=deadline_at)
        except RejectedError:
            raise  # non-retryable by design — do not disguise as a death
        except RuntimeError as error:
            # Lost the race against a concurrent drain/kill: surface it as
            # a retryable replica error so the router re-picks.
            raise ReplicaDiedError(f"{self.name} rejected submit: {error}") from error

    # -- lifecycle ------------------------------------------------------
    def probe(self) -> ReplicaHealth:
        return ReplicaHealth(
            replica_id=self.replica_id,
            name=self.name,
            state=self.state,
            alive=self._service.running,
            pending=self.pending,
            processed=self.pipeline.stats.mentions,
            frozen=self.faults.frozen,
            delay=self.faults.delay,
        )

    def drain(self, timeout: Optional[float] = None) -> None:
        """Graceful stop: no new submits, queued requests complete."""
        self._set_state(DRAINING)
        self.faults.unfreeze()  # a frozen replica must still drain
        self._service.close(timeout=timeout)
        self._set_state(STOPPED)

    def kill(self) -> int:
        """Crash-style stop: fail all outstanding work with
        :class:`ReplicaDiedError`; returns how many requests were failed.

        The outstanding futures are failed (and requeued by the router)
        immediately; the scheduler thread is then reaped so no stray
        inference keeps running after the replica is declared dead.
        """
        self._set_state(DEAD)
        failed = self._service.abort(ReplicaDiedError(f"{self.name} was killed"))
        self._service.close(timeout=5.0)
        return failed

    # -- fault hooks ----------------------------------------------------
    def set_delay(self, seconds: float) -> None:
        self.faults.set_delay(seconds)

    def freeze(self) -> None:
        self.faults.freeze()

    def unfreeze(self) -> None:
        self.faults.unfreeze()

    # -- brownout -------------------------------------------------------
    def set_degraded(self, degraded: bool) -> None:
        """Flip this replica's pipeline into/out of brownout mode."""
        self.pipeline.set_degraded(degraded)


# ----------------------------------------------------------------------
# Process-backed replica
# ----------------------------------------------------------------------
def _process_worker_main(conn, pipeline: EntityLinkingPipeline) -> None:
    """Loop of the worker process: receive a batch, link it, send results."""
    try:
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "degrade":
                # Fire-and-forget control message: messages are handled in
                # order, so the next batch already runs in the new mode.
                pipeline.set_degraded(message[1])
            elif kind == "batch":
                try:
                    conn.send(("results", pipeline.link(message[1])))
                except Exception as error:  # surface, do not kill the worker
                    conn.send(("error", f"{type(error).__name__}: {error}"))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away or terminated us — nothing left to serve
    finally:
        try:
            conn.close()
        except OSError:
            pass


class _PipelineProxy:
    """Parent-side stand-in for a pipeline living in a worker process.

    Implements exactly the surface :class:`LinkingService` uses — ``link``,
    ``stats``, ``batch_size``, ``index`` — so the proxy slots into the same
    scheduler/fault machinery as an in-process pipeline.  One batch is in
    flight per worker at a time; the reply wait polls the child's liveness
    so a terminated worker turns into :class:`ReplicaDiedError` (which the
    router treats as retryable) instead of a hang.
    """

    def __init__(self, conn, batch_size: int, index) -> None:
        self._conn = conn
        self._io_lock = threading.Lock()
        self.batch_size = batch_size
        self.index = index
        self.stats = PipelineStats()
        self.process: Optional[multiprocessing.process.BaseProcess] = None

    def link(self, mentions: Sequence[Mention]) -> List[LinkingResult]:
        started = time.perf_counter()
        with self._io_lock:
            try:
                self._conn.send(("batch", list(mentions)))
                while not self._conn.poll(FAULT_POLL_SECONDS):
                    if self.process is not None and not self.process.is_alive():
                        raise ReplicaDiedError("worker process died mid-batch")
                kind, payload = self._conn.recv()
            except (EOFError, OSError, BrokenPipeError) as error:
                raise ReplicaDiedError(f"worker pipe closed: {error}") from error
        if kind == "error":
            raise RuntimeError(payload)
        self.stats.record("remote", time.perf_counter() - started)
        self.stats.record_batch(len(mentions))
        return payload

    def set_degraded(self, degraded: bool) -> None:
        # Mirrors EntityLinkingPipeline.set_degraded across the pipe.  No
        # reply: the worker loop handles messages in order, so the flip is
        # visible to the next batch; a dead worker is caught by the next
        # link() anyway, so send failures are ignored here.
        with self._io_lock:
            try:
                self._conn.send(("degrade", bool(degraded)))
            except (OSError, BrokenPipeError):
                pass


class ProcessReplica(ThreadReplica):
    """A replica whose pipeline runs in a separate worker process.

    The parent keeps the dynamic batching, fault gate and lifecycle logic of
    :class:`ThreadReplica`; only ``pipeline.link`` crosses the process
    boundary (one micro-batch per round trip).  The default ``fork`` start
    method inherits the parent's pipeline memory copy-on-write — create the
    pool (or restart a replica) while no traffic flows, as with index
    warm-up.  ``spawn`` also works when every pipeline component pickles.

    ``kill()`` additionally terminates the worker process, modelling a hard
    machine failure; ``drain()`` stops it gracefully after the queue
    flushes.
    """

    def __init__(
        self,
        pipeline: EntityLinkingPipeline,
        replica_id: int = 0,
        name: Optional[str] = None,
        max_batch_size: Optional[int] = None,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        start: bool = True,
        mp_context: str = "fork",
    ) -> None:
        context = multiprocessing.get_context(mp_context)
        parent_conn, child_conn = context.Pipe()
        proxy = _PipelineProxy(
            parent_conn, batch_size=pipeline.batch_size, index=pipeline.index
        )
        self._process = context.Process(
            target=_process_worker_main,
            args=(child_conn, pipeline),
            name=name or f"replica-{replica_id}-worker",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        proxy.process = self._process
        super().__init__(
            proxy,  # type: ignore[arg-type] - duck-typed pipeline surface
            replica_id=replica_id,
            name=name or f"replica-{replica_id}",
            max_batch_size=max_batch_size or pipeline.batch_size,
            max_wait_ms=max_wait_ms,
            start=start,
        )

    @property
    def process_alive(self) -> bool:
        return self._process.is_alive()

    def probe(self) -> ReplicaHealth:
        health = super().probe()
        if health.state == HEALTHY and not self._process.is_alive():
            self._set_state(DEAD)
            health = super().probe()
        return health

    def drain(self, timeout: Optional[float] = None) -> None:
        super().drain(timeout=timeout)
        try:
            self.pipeline._conn.send(("stop",))
        except (OSError, BrokenPipeError):
            pass
        self._process.join(timeout=timeout or 5.0)

    def kill(self) -> int:
        # Terminate the worker BEFORE reaping the scheduler thread: the
        # scheduler may be blocked in the proxy waiting for a reply, and it
        # only bails out once it observes the process is gone.
        self._set_state(DEAD)
        failed = self._service.abort(ReplicaDiedError(f"{self.name} was killed"))
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._service.close(timeout=5.0)
        return failed


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdmissionPolicy:
    """Per-class watermarks on the aggregate pending depth.

    A submit of class ``c`` is admitted while the router's aggregate pending
    count is *below* ``limit_for(c)``; at or above it, the request is shed
    with :class:`RejectedError`.  Unlisted classes use ``watermark``.  Lower
    watermarks for best-effort classes make background traffic yield first:
    ``AdmissionPolicy(watermark=512, per_class={"batch": 64})`` sheds bulk
    work at depth 64 while interactive requests ride to 512.
    """

    watermark: int = 1024
    per_class: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.watermark <= 0:
            raise ValueError("watermark must be positive")
        for request_class, limit in self.per_class.items():
            if limit <= 0:
                raise ValueError(
                    f"watermark for class {request_class!r} must be positive"
                )

    def limit_for(self, request_class: str) -> int:
        return int(self.per_class.get(request_class, self.watermark))


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injury: at ``at`` seconds, do ``action`` to ``replica``.

    ``value`` carries the action parameter (per-batch delay seconds for
    ``slow``); it is ignored by the other actions.
    """

    at: float
    action: str
    replica: int
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("event time must be non-negative")
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; known: {', '.join(FAULT_ACTIONS)}"
            )
        if self.replica < 0:
            raise ValueError("replica index must be non-negative")
        if self.value < 0:
            raise ValueError("value must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A time-ordered script of :class:`FaultEvent` injuries.

    The load harness replays the plan against the router while a scenario
    runs (see :meth:`~repro.bench.harness.LoadHarness.run`), recording when
    each event was actually applied.  Builders cover the common chaos
    shapes::

        FaultPlan.kill(at=1.0, replica=1)
        FaultPlan.slow(at=0.5, replica=0, delay=0.2)
        FaultPlan.freeze_thaw(freeze_at=0.5, thaw_at=1.0, replica=0)
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.at))
        )

    def __len__(self) -> int:
        return len(self.events)

    def then(self, event: FaultEvent) -> "FaultPlan":
        """A new plan with ``event`` merged in (kept time-ordered)."""
        return FaultPlan(self.events + (event,))

    @classmethod
    def kill(cls, at: float, replica: int) -> "FaultPlan":
        return cls((FaultEvent(at=at, action="kill", replica=replica),))

    @classmethod
    def slow(cls, at: float, replica: int, delay: float) -> "FaultPlan":
        return cls((FaultEvent(at=at, action="slow", replica=replica, value=delay),))

    @classmethod
    def freeze_thaw(cls, freeze_at: float, thaw_at: float, replica: int) -> "FaultPlan":
        if thaw_at < freeze_at:
            raise ValueError("thaw_at must not precede freeze_at")
        return cls((
            FaultEvent(at=freeze_at, action="freeze", replica=replica),
            FaultEvent(at=thaw_at, action="unfreeze", replica=replica),
        ))


# ----------------------------------------------------------------------
# Aggregated stats
# ----------------------------------------------------------------------
class ClusterStats:
    """Aggregate view over the router and every replica's pipeline stats.

    Router-level counters (submits, sheds per class, requeues, deaths) and
    the per-request latency window live here; per-replica throughput
    counters stay in each replica's :class:`PipelineStats` and are merged on
    demand from consistent :meth:`~PipelineStats.snapshot` copies.  Restarted
    replicas start fresh stats — the aggregate reflects the *current* pool
    generation, which is what capacity dashboards want.

    The recovery metric: :attr:`recovery_seconds` is the gap between the
    first replica death and the completion of the last request that had to
    be requeued because of a death — how long the cluster took to fully
    absorb the failure.
    """

    def __init__(self, pool: "ReplicaPool") -> None:
        self._pool = pool
        self._lock = threading.Lock()
        self._latencies = deque(maxlen=LATENCY_WINDOW)
        self._submitted = 0
        self._completed = 0
        self._errors = 0
        self._shed: Dict[str, int] = {}
        self._requeues = 0
        self._deaths = 0
        self._affinity_misses = 0
        self._first_death_at: Optional[float] = None
        self._last_requeue_done_at: Optional[float] = None
        # Resilience bookkeeping (supervisor restarts, breaker/brownout).
        self._expired = 0
        self._breaker_rejects = 0
        self._restarts = 0
        self._mttr: List[float] = []
        self._quarantined: set = set()
        self._brownout_engagements = 0
        self._degraded_active = False
        self._degraded_since: Optional[float] = None
        self._degraded_seconds = 0.0

    # -- recording (router hot path) ------------------------------------
    def record_submit(self) -> None:
        with self._lock:
            self._submitted += 1

    def record_completed(self, latency_seconds: float, requeued: bool) -> None:
        now = time.perf_counter()
        with self._lock:
            self._completed += 1
            self._latencies.append(latency_seconds)
            if requeued:
                self._last_requeue_done_at = now

    def record_error(self) -> None:
        with self._lock:
            self._errors += 1

    def record_shed(self, request_class: str) -> None:
        with self._lock:
            self._shed[request_class] = self._shed.get(request_class, 0) + 1

    def record_requeue(self) -> None:
        with self._lock:
            self._requeues += 1

    def record_death(self) -> None:
        now = time.perf_counter()
        with self._lock:
            self._deaths += 1
            if self._first_death_at is None:
                self._first_death_at = now

    def record_affinity_miss(self) -> None:
        with self._lock:
            self._affinity_misses += 1

    def record_expired(self) -> None:
        with self._lock:
            self._expired += 1

    def record_breaker_reject(self) -> None:
        with self._lock:
            self._breaker_rejects += 1

    # -- resilience recording (supervisor / brownout controller) ---------
    def record_restart(self, slot: int, mttr_seconds: float) -> None:
        """One supervisor-driven slot recovery; ``mttr_seconds`` is the gap
        between the death being detected and the fresh replica standing."""
        with self._lock:
            self._restarts += 1
            self._mttr.append(max(mttr_seconds, 0.0))
            self._quarantined.discard(slot)

    def record_quarantine(self, slot: int) -> None:
        """Mark a slot as crash-looping (idempotent — the supervisor
        re-asserts quarantines each tick so a stats reset cannot hide one)."""
        with self._lock:
            self._quarantined.add(slot)

    def record_brownout(self, active: bool) -> None:
        """Track brownout transitions and cumulative degraded wall time."""
        now = time.perf_counter()
        with self._lock:
            if active and not self._degraded_active:
                self._brownout_engagements += 1
                self._degraded_since = now
            elif not active and self._degraded_active:
                if self._degraded_since is not None:
                    self._degraded_seconds += now - self._degraded_since
                self._degraded_since = None
            self._degraded_active = active

    # -- aggregate reads -------------------------------------------------
    @property
    def submitted(self) -> int:
        with self._lock:
            return self._submitted

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    @property
    def shed_total(self) -> int:
        with self._lock:
            return sum(self._shed.values())

    def shed_by_class(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._shed)

    @property
    def requeued(self) -> int:
        with self._lock:
            return self._requeues

    @property
    def deaths(self) -> int:
        with self._lock:
            return self._deaths

    @property
    def recovery_seconds(self) -> Optional[float]:
        with self._lock:
            if self._first_death_at is None or self._last_requeue_done_at is None:
                return None
            return max(self._last_requeue_done_at - self._first_death_at, 0.0)

    @property
    def expired(self) -> int:
        with self._lock:
            return self._expired

    @property
    def restarts(self) -> int:
        with self._lock:
            return self._restarts

    @property
    def mttr_seconds(self) -> Tuple[float, ...]:
        """Per-incident recovery times of supervisor-driven restarts."""
        with self._lock:
            return tuple(self._mttr)

    @property
    def quarantined(self) -> Tuple[int, ...]:
        """Slots the supervisor has quarantined as crash-looping."""
        with self._lock:
            return tuple(sorted(self._quarantined))

    @property
    def brownout_engagements(self) -> int:
        with self._lock:
            return self._brownout_engagements

    @property
    def degraded_active(self) -> bool:
        with self._lock:
            return self._degraded_active

    @property
    def degraded_seconds(self) -> float:
        """Cumulative wall time spent in brownout, including a live spell."""
        now = time.perf_counter()
        with self._lock:
            total = self._degraded_seconds
            if self._degraded_active and self._degraded_since is not None:
                total += now - self._degraded_since
            return total

    @property
    def mentions(self) -> int:
        """Mentions processed across the current pool generation."""
        return sum(r.stats.snapshot()["mentions"] for r in self._pool.replicas)

    @property
    def batches(self) -> int:
        return sum(r.stats.snapshot()["batches"] for r in self._pool.replicas)

    def _latency_array(self) -> np.ndarray:
        with self._lock:
            return np.fromiter(self._latencies, dtype=np.float64)

    def latency_percentile(self, percentile: float) -> float:
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        samples = self._latency_array()
        if samples.size == 0:
            return 0.0
        return float(np.percentile(samples, percentile))

    def latency_summary(self) -> Dict[str, float]:
        samples = self._latency_array()
        if samples.size == 0:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        p50, p90, p99 = np.percentile(samples, [50.0, 90.0, 99.0])
        return {
            "count": float(samples.size),
            "mean": float(samples.mean()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }

    def snapshot(self) -> Dict[str, object]:
        """One consistent report: router counters + merged replica stats."""
        per_replica = []
        total_mentions = 0
        total_batches = 0
        stage_seconds: Dict[str, float] = {}
        for replica in self._pool.replicas:
            shot = replica.stats.snapshot()
            total_mentions += shot["mentions"]
            total_batches += shot["batches"]
            for stage, seconds in shot["stage_seconds"].items():
                stage_seconds[stage] = stage_seconds.get(stage, 0.0) + seconds
            per_replica.append({
                "name": replica.name,
                "state": replica.state,
                "pending": replica.pending,
                "mentions": shot["mentions"],
                "batches": shot["batches"],
            })
        with self._lock:
            router = {
                "submitted": self._submitted,
                "completed": self._completed,
                "errors": self._errors,
                "shed": dict(self._shed),
                "shed_total": sum(self._shed.values()),
                "requeued": self._requeues,
                "deaths": self._deaths,
                "affinity_misses": self._affinity_misses,
                "expired": self._expired,
                "breaker_rejects": self._breaker_rejects,
            }
            resilience = {
                "restarts": self._restarts,
                "mttr_seconds": list(self._mttr),
                "mttr_max_seconds": max(self._mttr) if self._mttr else 0.0,
                "quarantined": sorted(self._quarantined),
                "brownout_engagements": self._brownout_engagements,
                "degraded_active": self._degraded_active,
            }
        resilience["degraded_seconds"] = self.degraded_seconds
        recovery = self.recovery_seconds
        if recovery is not None:
            router["recovery_seconds"] = recovery
        return {
            "router": router,
            "aggregate": {
                "mentions": total_mentions,
                "batches": total_batches,
                "stage_seconds": stage_seconds,
            },
            "latency": self.latency_summary(),
            "per_replica": per_replica,
            "resilience": resilience,
        }

    def reset(self) -> None:
        """Clear router counters and every live replica's pipeline stats."""
        with self._lock:
            self._latencies.clear()
            self._submitted = 0
            self._completed = 0
            self._errors = 0
            self._shed.clear()
            self._requeues = 0
            self._deaths = 0
            self._affinity_misses = 0
            self._first_death_at = None
            self._last_requeue_done_at = None
            self._expired = 0
            self._breaker_rejects = 0
            self._restarts = 0
            self._mttr.clear()
            self._quarantined.clear()
            self._brownout_engagements = 0
            self._degraded_seconds = 0.0
            # A live brownout spell survives the reset: only the accumulated
            # time is cleared, so a scenario starting mid-brownout still
            # accounts the ongoing spell from its own start.
            if self._degraded_active:
                self._degraded_since = time.perf_counter()
        for replica in self._pool.replicas:
            replica.stats.reset()


# ----------------------------------------------------------------------
# Replica pool
# ----------------------------------------------------------------------
class ReplicaPool:
    """Fixed slots of replicas plus the factories that (re)build them.

    Every slot keeps a zero-argument factory so :meth:`restart` can stand up
    a fresh generation of the same replica — for thread replicas a new
    pipeline clone over the shared read-only index snapshot, for process
    replicas a fresh worker process.  Slot count is fixed for the pool's
    lifetime (the router's affinity hash depends on it).
    """

    def __init__(self, factories: Sequence[Callable[[], Replica]]) -> None:
        if not factories:
            raise ValueError("a pool needs at least one replica factory")
        self._factories = list(factories)
        self._lock = threading.Lock()
        self._generations = [0] * len(self._factories)
        self._replicas: List[Replica] = [factory() for factory in self._factories]

    # -- construction helpers -------------------------------------------
    @classmethod
    def from_pipeline(
        cls,
        pipeline: EntityLinkingPipeline,
        replicas: int = 2,
        max_batch_size: Optional[int] = None,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        process_replicas: int = 0,
        mp_context: str = "fork",
    ) -> "ReplicaPool":
        """A pool of clones of ``pipeline``: thread replicas, then
        ``process_replicas`` process-backed ones in the last slots.

        All clones share the pipeline's read-only index snapshot and encoder
        weights; each replica owns its stats and scheduler.
        """
        if replicas <= 0:
            raise ValueError("replicas must be positive")
        if not 0 <= process_replicas <= replicas:
            raise ValueError("process_replicas must be within [0, replicas]")

        def thread_factory(slot: int) -> Callable[[], Replica]:
            def build() -> Replica:
                return ThreadReplica(
                    pipeline.clone(), replica_id=slot,
                    max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
                )
            return build

        def process_factory(slot: int) -> Callable[[], Replica]:
            def build() -> Replica:
                return ProcessReplica(
                    pipeline.clone(), replica_id=slot,
                    max_batch_size=max_batch_size, max_wait_ms=max_wait_ms,
                    mp_context=mp_context,
                )
            return build

        threaded = replicas - process_replicas
        factories = [thread_factory(slot) for slot in range(threaded)]
        factories += [process_factory(slot) for slot in range(threaded, replicas)]
        return cls(factories)

    @classmethod
    def from_snapshot(
        cls,
        biencoder: BiEncoder,
        path,
        crossencoder: Optional[CrossEncoder] = None,
        replicas: int = 2,
        k: int = 16,
        rerank: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        route_by_domain: bool = True,
        max_batch_size: Optional[int] = None,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        process_replicas: int = 0,
        mmap: bool = True,
        backend=None,
    ) -> "ReplicaPool":
        """A pool serving a persisted index snapshot (PR 2 format).

        The snapshot is loaded *once* and shared read-only by every replica
        — the restart path therefore costs a pipeline clone, not an index
        reload, exactly like a warm rolling restart in production.  With the
        default ``mmap=True``, version-2 snapshot arrays are memory-mapped,
        so forked process replicas share the snapshot's pages instead of
        each copying the float64 matrices (version-1 npz snapshots fall back
        to in-RAM loading).  ``backend`` (e.g.
        :class:`repro.index.IVFBackend`) rebuilds exact-saved shards under
        an approximate backend.
        """
        index = biencoder.load_sharded_index(path, mmap=mmap, backend=backend)
        base = EntityLinkingPipeline(
            biencoder, index, crossencoder, k=k, rerank=rerank,
            batch_size=batch_size, route_by_domain=route_by_domain,
        )
        return cls.from_pipeline(
            base, replicas=replicas, max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms, process_replicas=process_replicas,
        )

    # -- access ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._factories)

    @property
    def replicas(self) -> Tuple[Replica, ...]:
        with self._lock:
            return tuple(self._replicas)

    def replica(self, slot: int) -> Replica:
        with self._lock:
            return self._replicas[slot]

    def generation(self, slot: int) -> int:
        with self._lock:
            return self._generations[slot]

    def healthy_slots(self) -> List[int]:
        return [
            slot for slot, replica in enumerate(self.replicas)
            if replica.state == HEALTHY
        ]

    # -- lifecycle -------------------------------------------------------
    def kill(self, slot: int) -> int:
        return self.replica(slot).kill()

    def drain(self, slot: int, timeout: Optional[float] = None) -> None:
        self.replica(slot).drain(timeout=timeout)

    def restart(self, slot: int, timeout: Optional[float] = None) -> Replica:
        """Replace the slot's replica with a fresh generation.

        The old replica is drained first if it is still healthy (rolling
        restart); a dead/stopped one is simply replaced.
        """
        old = self.replica(slot)
        if old.state in (HEALTHY, DRAINING):
            old.drain(timeout=timeout)
        fresh = self._factories[slot]()
        with self._lock:
            self._generations[slot] += 1
            fresh.name = f"{fresh.name}@g{self._generations[slot]}"
            self._replicas[slot] = fresh
        return fresh

    def close(self, timeout: Optional[float] = None) -> None:
        for replica in self.replicas:
            if replica.state in (HEALTHY, DRAINING):
                replica.drain(timeout=timeout)

    def probe(self) -> List[ReplicaHealth]:
        return [replica.probe() for replica in self.replicas]


# ----------------------------------------------------------------------
# Router
# ----------------------------------------------------------------------
@dataclass
class _ClusterRequest:
    """Router-side bookkeeping for one admitted request."""

    mention: Mention
    caller: "Future[LinkingResult]"
    request_class: str
    submitted_at: float
    deadline_at: Optional[float] = None
    attempts: int = 0
    requeued: bool = False


def _affinity_hash(world: str) -> int:
    """Stable world → integer hash (process-independent, unlike ``hash``)."""
    return int.from_bytes(
        hashlib.sha256(world.encode("utf-8")).digest()[:8], "big"
    )


class Router:
    """Front door over a :class:`ReplicaPool`, API-compatible with
    :class:`~repro.serving.service.LinkingService`.

    Dispatch policy, in order:

    1. **Admission** — if the aggregate pending count has reached the
       class's watermark, the request is shed with :class:`RejectedError`
       (set on the returned future; nothing is queued).
    2. **World affinity** — with ``affinity=True``, the mention's world
       hashes to a home slot; if that replica is healthy it wins, keeping
       per-world shard/cache locality.  A request only leaves its home slot
       when the replica is unhealthy (counted as an affinity miss).
    3. **Least pending** — otherwise the healthy replica with the smallest
       queue wins; ties break by a permutation drawn once from ``seed``, so
       the same seed and replica count always produce the same assignment
       (see :meth:`assignment_plan` for the pure version the property tests
       assert on).

    Requests on a replica that dies fail with :class:`ReplicaDiedError` and
    are requeued automatically (bounded by ``max_attempts``); callers see an
    error only when the cluster is truly out of healthy capacity.
    """

    def __init__(
        self,
        pool: ReplicaPool,
        admission: Optional[AdmissionPolicy] = None,
        affinity: bool = True,
        seed: int = 0,
        max_attempts: Optional[int] = None,
        record_dispatch: bool = False,
        breakers: bool = True,
        breaker_policy: Optional["BreakerPolicy"] = None,
    ) -> None:
        if max_attempts is not None and max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.pool = pool
        self.admission = admission or AdmissionPolicy()
        self.affinity = affinity
        self.seed = seed
        self.max_attempts = max_attempts or (len(pool) + 1)
        self._lock = threading.Lock()
        self._pending = 0
        self._peak_pending = 0
        self._closing = False
        self._degraded = False
        # Seeded tie-break: rank[i] orders replicas with equal queue depth.
        permutation = np.random.default_rng(seed).permutation(len(pool))
        self._tiebreak_rank = {int(slot): rank for rank, slot in enumerate(permutation)}
        self.stats = ClusterStats(pool)
        self.dispatch_log: Optional[List[Tuple[str, int]]] = (
            [] if record_dispatch else None
        )
        # Per-slot circuit breakers: flapping replicas are routed around
        # before they fully die.  The default policy never opens on a
        # healthy replica (it needs a windowed error-rate majority), so
        # breakers are on unless explicitly disabled.
        self._breakers: Dict[int, "CircuitBreaker"] = {}
        if breakers:
            from .resilience import BreakerPolicy, CircuitBreaker  # late: cycle

            policy = breaker_policy or BreakerPolicy()
            self._breakers = {
                slot: CircuitBreaker(policy) for slot in range(len(pool))
            }
        elif breaker_policy is not None:
            raise ValueError("breaker_policy given but breakers=False")

    # ------------------------------------------------------------------
    # Dispatch policy
    # ------------------------------------------------------------------
    def home_slot(self, world: str) -> int:
        """The world's affinity slot (fixed for the pool's slot count)."""
        return _affinity_hash(world) % len(self.pool)

    def _least_pending(self, slots: Sequence[int], depths: Mapping[int, int]) -> int:
        return min(slots, key=lambda slot: (depths[slot], self._tiebreak_rank[slot]))

    def _pick_slot(self, mention: Mention) -> Optional[int]:
        """The dispatch slot for one mention, or ``None`` with no healthy
        replicas.  Raises :class:`BreakerOpenError` when healthy replicas
        exist but every breaker is open — a different failure from "dead":
        capacity is nominally there, it just keeps erroring.
        """
        healthy = self.pool.healthy_slots()
        if not healthy:
            return None
        allowed = [slot for slot in healthy if self._breaker_allows(slot)]
        if not allowed:
            self.stats.record_breaker_reject()
            raise BreakerOpenError(
                f"all {len(healthy)} healthy replica(s) have open circuit "
                f"breakers; retry after the cooldown"
            )
        if self.affinity:
            home = self.home_slot(mention.domain)
            if home in allowed:
                return home
            # Unhealthy home slot *or* a healthy one with an open breaker:
            # either way the request spills to least-pending, and the miss
            # counter records that affinity was not honoured.
            self.stats.record_affinity_miss()
        depths = {slot: self.pool.replica(slot).pending for slot in allowed}
        return self._least_pending(allowed, depths)

    def _breaker_allows(self, slot: int) -> bool:
        breaker = self._breakers.get(slot)
        return breaker is None or breaker.allows()

    def assignment_plan(self, mentions: Sequence[Mention]) -> List[int]:
        """The deterministic dispatch assignment for a mention sequence.

        A pure simulation of the live policy over an idle, fully healthy
        pool: affinity requests go to their home slot; balanced requests go
        least-pending with the seeded tie-break, each assignment deepening
        its simulated queue by one.  Two routers with equal ``seed``,
        ``affinity`` and pool size produce identical plans — the property
        the dispatch-determinism tests pin down.
        """
        slots = list(range(len(self.pool)))
        depths = {slot: 0 for slot in slots}
        plan: List[int] = []
        for mention in mentions:
            if self.affinity:
                slot = self.home_slot(mention.domain)
            else:
                slot = self._least_pending(slots, depths)
            depths[slot] += 1
            plan.append(slot)
        return plan

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self,
        mention: Mention,
        request_class: str = "default",
        deadline: Optional[float] = None,
    ) -> "Future[LinkingResult]":
        """Admit, dispatch and return a future for one mention.

        Shed requests get a future that already holds
        :class:`~repro.serving.service.OverCapacityError` — callers
        distinguish "over capacity" from "slow" without waiting.  Raises
        ``RuntimeError`` after :meth:`close`.

        ``deadline`` is a *relative* budget in seconds: once it elapses the
        request is dropped with
        :class:`~repro.serving.service.DeadlineExpiredError` wherever it
        happens to be queued — at the router, awaiting requeue after a
        replica death, or in a replica's batch queue — instead of consuming
        a batch slot on an answer nobody waits for.
        """
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        caller: "Future[LinkingResult]" = Future()
        submitted_at = time.perf_counter()
        deadline_at = None if deadline is None else submitted_at + deadline
        limit = self.admission.limit_for(request_class)
        with self._lock:
            if self._closing:
                raise RuntimeError("Router is closed")
            if self._pending >= limit:
                depth = self._pending
                shed = True
            else:
                shed = False
                self._pending += 1
                if self._pending > self._peak_pending:
                    self._peak_pending = self._pending
        if shed:
            self.stats.record_shed(request_class)
            caller.set_exception(OverCapacityError(
                f"request class {request_class!r} shed: aggregate pending "
                f"{depth} >= watermark {limit}"
            ))
            return caller
        self.stats.record_submit()
        request = _ClusterRequest(
            mention=mention, caller=caller, request_class=request_class,
            submitted_at=submitted_at, deadline_at=deadline_at,
        )
        self._dispatch(request)
        return caller

    def link(
        self,
        mention: Mention,
        timeout: Optional[float] = None,
        request_class: str = "default",
    ) -> LinkingResult:
        """Blocking convenience wrapper; cancels the request on timeout."""
        future = self.submit(mention, request_class=request_class)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise

    def _dispatch(self, request: _ClusterRequest) -> None:
        while True:
            if (
                request.deadline_at is not None
                and time.perf_counter() >= request.deadline_at
            ):
                self.stats.record_expired()
                self._finalize(request, error=DeadlineExpiredError(
                    f"request {request.mention.mention_id} expired before "
                    f"dispatch"
                ))
                return
            if request.attempts >= self.max_attempts:
                self._finalize(request, error=ReplicaDiedError(
                    f"request {request.mention.mention_id} exhausted "
                    f"{self.max_attempts} attempts"
                ))
                return
            try:
                slot = self._pick_slot(request.mention)
            except BreakerOpenError as error:
                self._finalize(request, error=error)
                return
            if slot is None:
                self._finalize(request, error=ReplicaDiedError(
                    "no healthy replicas available"
                ))
                return
            request.attempts += 1
            replica = self.pool.replica(slot)
            try:
                inner = replica.submit(
                    request.mention, deadline_at=request.deadline_at
                )
            except ReplicaDiedError:
                continue  # lost a race with drain/kill — re-pick
            breaker = self._breakers.get(slot)
            if breaker is not None:
                breaker.on_dispatch()
            if self.dispatch_log is not None:
                self.dispatch_log.append((request.mention.mention_id, slot))
            inner.add_done_callback(
                lambda done, request=request, slot=slot: (
                    self._on_inner_done(request, slot, done)
                )
            )
            return

    def _on_inner_done(
        self, request: _ClusterRequest, slot: int,
        inner: "Future[LinkingResult]",
    ) -> None:
        breaker = self._breakers.get(slot)
        if inner.cancelled():
            self._finalize(request, cancelled=True)
            return
        error = inner.exception()
        if error is None:
            if breaker is not None:
                breaker.record_success()
            # Done-callback context: the future is settled, so this never
            # blocks (timeout=0 keeps that machine-checked).
            self._finalize(request, result=inner.result(timeout=0))
            return
        if isinstance(error, DeadlineExpiredError):
            # The replica dropped the request for being late — the replica
            # itself is fine, so the breaker sees neither success nor
            # failure, and retrying a request that is already past its
            # deadline would be wasted work.
            self.stats.record_expired()
            self._finalize(request, error=error)
            return
        if breaker is not None:
            breaker.record_failure()
        retryable = isinstance(error, ReplicaDiedError)
        if retryable and request.attempts < self.max_attempts and not self._closing:
            request.requeued = True
            self.stats.record_requeue()
            self._dispatch(request)
            return
        self._finalize(request, error=error)

    def _finalize(
        self,
        request: _ClusterRequest,
        result: Optional[LinkingResult] = None,
        error: Optional[BaseException] = None,
        cancelled: bool = False,
    ) -> None:
        with self._lock:
            self._pending -= 1
        if error is not None:
            self.stats.record_error()
        elif not cancelled:
            self.stats.record_completed(
                time.perf_counter() - request.submitted_at, request.requeued
            )
        try:
            if cancelled:
                request.caller.cancel()
            elif error is not None:
                request.caller.set_exception(error)
            else:
                request.caller.set_result(result)
        except InvalidStateError:
            pass  # caller cancelled (e.g. harness timeout) — result discarded

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests admitted but not yet completed, across the cluster."""
        with self._lock:
            return self._pending

    @property
    def peak_pending(self) -> int:
        """High-watermark of the aggregate pending count (exact)."""
        with self._lock:
            return self._peak_pending

    def reset_peak_pending(self) -> int:
        with self._lock:
            self._peak_pending = self._pending
            return self._peak_pending

    def depths(self) -> Dict[int, int]:
        """Per-slot queue depth (replica-local pending), for monitoring."""
        return {
            slot: replica.pending
            for slot, replica in enumerate(self.pool.replicas)
        }

    @property
    def running(self) -> bool:
        """Whether at least one replica can take traffic."""
        with self._lock:
            if self._closing:
                return False
        return bool(self.pool.healthy_slots())

    def health_check(self) -> List[ReplicaHealth]:
        """Probe every replica; silently-dead ones are killed so their
        outstanding requests requeue instead of hanging."""
        probes = []
        for replica in self.pool.replicas:
            health = replica.probe()
            if health.state == DEAD and health.pending > 0:
                replica.kill()  # idempotent; flushes outstanding into requeue
                health = replica.probe()
            probes.append(health)
        return probes

    def breaker_states(self) -> Dict[int, str]:
        """Per-slot circuit-breaker state names (empty when disabled)."""
        return {slot: breaker.state for slot, breaker in self._breakers.items()}

    def reset_breaker(self, slot: int) -> None:
        """Force one slot's breaker back to closed (fresh replica)."""
        breaker = self._breakers.get(slot)
        if breaker is not None:
            breaker.reset()

    @property
    def degraded(self) -> bool:
        """Whether the cluster is currently serving in brownout mode."""
        with self._lock:
            return self._degraded

    def set_degraded(self, degraded: bool) -> None:
        """Flip every replica between full-quality and brownout pipelines.

        Idempotent; the flag is remembered so replicas restarted later (by
        the supervisor or :meth:`restart_replica`) inherit the current mode.
        Dead replicas are skipped best-effort — they pick the mode up on
        restart.
        """
        degraded = bool(degraded)
        with self._lock:
            if self._degraded == degraded:
                return
            self._degraded = degraded
        self.stats.record_brownout(degraded)
        for replica in self.pool.replicas:
            try:
                replica.set_degraded(degraded)
            except (ReplicaDiedError, RuntimeError, OSError):
                continue  # dead/closing replica inherits the mode on restart

    def restart_replica(self, slot: int, timeout: Optional[float] = None) -> None:
        """Replace one slot with a fresh replica, resetting its breaker and
        re-applying the current brownout mode (the supervisor's repair
        primitive; also what ``apply_fault("restart")`` routes through)."""
        self.pool.restart(slot, timeout=timeout)
        self.reset_breaker(slot)
        with self._lock:
            degraded = self._degraded
        if degraded:
            try:
                self.pool.replica(slot).set_degraded(True)
            except (ReplicaDiedError, RuntimeError, OSError):
                pass  # died immediately after restart — next cycle handles it

    # ------------------------------------------------------------------
    # Lifecycle & faults
    # ------------------------------------------------------------------
    def warm_up(self, worlds: Optional[Sequence[str]] = None) -> List[str]:
        """Materialise index shards before traffic (one shared snapshot —
        warming any replica warms them all)."""
        for replica in self.pool.replicas:
            index = getattr(replica, "pipeline", None)
            if index is not None:
                return warm_up_index(replica.pipeline.index, worlds)
        return []

    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: stop admitting, drain every replica."""
        with self._lock:
            self._closing = True
        self.pool.close(timeout=timeout)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one :class:`FaultEvent` to the pool (harness hook)."""
        slot = event.replica
        if not 0 <= slot < len(self.pool):
            raise ValueError(
                f"fault targets replica {slot}, pool has {len(self.pool)} slots"
            )
        if event.action == "kill":
            self.stats.record_death()
            self.pool.kill(slot)
        elif event.action == "slow":
            self.pool.replica(slot).set_delay(event.value)
        elif event.action == "freeze":
            self.pool.replica(slot).freeze()
        elif event.action == "unfreeze":
            self.pool.replica(slot).unfreeze()
        elif event.action == "drain":
            # Draining blocks until the replica's queue flushes; run it off
            # the injector thread so later plan events stay on schedule.
            threading.Thread(
                target=self.pool.drain, args=(slot,),
                name=f"drain-replica-{slot}", daemon=True,
            ).start()
        elif event.action == "restart":
            self.restart_replica(slot)
        else:  # pragma: no cover - FaultEvent validates actions
            raise ValueError(f"unknown fault action {event.action!r}")
