"""High-throughput batched entity-linking pipeline.

:class:`EntityLinkingPipeline` is the serving-path counterpart of the
research-oriented :class:`~repro.linking.blink.BlinkPipeline`: it takes a
batch of raw :class:`~repro.kb.entity.Mention` objects and runs

    tokenize → batched bi-encoder embedding → sharded MIPS retrieval
             → (optional) batched cross-encoder rerank

as vectorized stages over fixed-size micro-batches, returning one structured
:class:`LinkingResult` per mention.  Per-stage wall-clock totals are
accumulated in :class:`PipelineStats` for throughput accounting.

Example::

    pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=64)
    results = pipeline.link(mentions)            # List[LinkingResult]
    results[0].predicted_entity_id, results[0].candidate_ids
    pipeline.stats.throughput()                  # mentions / second
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..kb.entity import Entity, Mention
from ..linking.biencoder import BiEncoder
from ..linking.candidates import EntityIndex, ShardedEntityIndex
from ..linking.crossencoder import CrossEncoder
from .stages import (
    AnyIndex,
    EmbedStage,
    PipelineBatch,
    RerankStage,
    RetrieveStage,
    TokenizeStage,
    TopCandidateStage,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..linking.blink import BlinkPipeline

#: Default micro-batch size of the serving pipeline.
DEFAULT_BATCH_SIZE = 64

#: Per-request latency samples retained by :class:`PipelineStats`; a rolling
#: window keeps the memory of a long-running serving process bounded while
#: the percentiles track recent traffic.
LATENCY_WINDOW = 8192


@dataclass
class LinkingResult:
    """Structured outcome of linking one mention through the pipeline.

    ``candidate_ids`` / ``retrieval_scores`` come from the MIPS stage (ranked
    by decreasing inner product); ``rerank_scores`` aligns with
    ``candidate_ids`` when the rerank stage ran, and is None otherwise.
    """

    mention_id: str
    surface: str
    gold_entity_id: Optional[str]
    candidate_ids: List[str]
    retrieval_scores: List[float]
    predicted_entity_id: Optional[str]
    rerank_scores: Optional[List[float]] = None
    #: True when the result was produced in brownout (degraded) mode —
    #: rerank skipped and a shrunken retrieval top-k.  Callers that care
    #: about answer quality can retry later; SLO accounting tracks the
    #: degraded fraction separately.
    degraded: bool = False

    @property
    def gold_in_candidates(self) -> bool:
        """Whether the gold entity survived candidate generation."""
        return self.gold_entity_id is not None and self.gold_entity_id in set(self.candidate_ids)

    @property
    def correct(self) -> bool:
        """Whether the end-to-end prediction matches the gold entity."""
        return (
            self.predicted_entity_id is not None
            and self.gold_entity_id is not None
            and self.predicted_entity_id == self.gold_entity_id
        )


@dataclass
class PipelineStats:
    """Cumulative serving counters: mentions, batches, per-stage seconds.

    ``request_latencies`` holds per-request wall-clock samples (seconds,
    submit → completion) recorded by the :class:`~repro.serving.service.LinkingService`
    frontend, kept in a rolling :data:`LATENCY_WINDOW`-sized window so the
    percentiles reflect recent traffic with bounded memory.

    All mutation happens under one internal lock: counters and stage seconds
    are written by the scheduler thread while monitoring callers (e.g. the
    load harness) read summaries or :meth:`reset` between scenarios, so
    every read-modify-write below must be atomic against a concurrent
    ``reset()`` — otherwise a cleared dict can resurrect a stale stage total
    or a percentile read can iterate a deque mid-append.
    """

    mentions: int = 0
    batches: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    request_latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def _total_seconds_locked(self) -> float:
        # Caller must hold self._lock (plain Lock — re-acquiring deadlocks).
        return sum(self.stage_seconds.values())

    @property
    def total_seconds(self) -> float:
        with self._lock:
            return self._total_seconds_locked()

    def throughput(self) -> float:
        """Processed mentions per second of stage time (0.0 when idle)."""
        with self._lock:
            seconds = self._total_seconds_locked()
            return self.mentions / seconds if seconds > 0 else 0.0

    def record(self, stage_name: str, seconds: float) -> None:
        with self._lock:
            self.stage_seconds[stage_name] = (
                self.stage_seconds.get(stage_name, 0.0) + seconds
            )

    def record_batch(self, num_mentions: int) -> None:
        """Count one processed micro-batch of ``num_mentions`` mentions."""
        with self._lock:
            self.mentions += num_mentions
            self.batches += 1

    def record_latency(self, seconds: float) -> None:
        """Add one per-request latency sample (submit → completion)."""
        with self._lock:
            self.request_latencies.append(seconds)

    def _latency_samples(self) -> np.ndarray:
        with self._lock:
            return np.fromiter(self.request_latencies, dtype=np.float64)

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile in seconds over the rolling window (0.0 if empty).

        ``percentile`` is in [0, 100]; linear interpolation between samples,
        matching ``numpy.percentile``'s default behaviour.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        samples = self._latency_samples()
        if samples.size == 0:
            return 0.0
        return float(np.percentile(samples, percentile))

    def latency_summary(self) -> Dict[str, float]:
        """p50 / p90 / p99 / mean / count of the rolling latency window."""
        samples = self._latency_samples()
        if samples.size == 0:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        p50, p90, p99 = np.percentile(samples, [50.0, 90.0, 99.0])
        return {
            "count": float(samples.size),
            "mean": float(samples.mean()),
            "p50": float(p50),
            "p90": float(p90),
            "p99": float(p99),
        }

    def snapshot(self) -> Dict[str, object]:
        """Consistent point-in-time copy of every counter, taken under the lock.

        The cluster layer merges snapshots from many replicas into one
        aggregate view; each snapshot is internally consistent (no counter
        can be mid-update) even while the owning scheduler thread keeps
        recording.  ``request_latencies`` is materialised as a tuple so the
        caller never aliases the live rolling deque.
        """
        with self._lock:
            return {
                "mentions": self.mentions,
                "batches": self.batches,
                "stage_seconds": dict(self.stage_seconds),
                "request_latencies": tuple(self.request_latencies),
            }

    def reset(self) -> None:
        with self._lock:
            self.mentions = 0
            self.batches = 0
            self.stage_seconds.clear()
            self.request_latencies.clear()

    # Pickle support for process-backed replicas: a lock cannot cross a
    # process boundary, so it is dropped on the way out and recreated on the
    # way in (the child gets a fresh, unheld lock).
    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        del state["_lock"]
        state["request_latencies"] = list(self.request_latencies)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        latencies = state.pop("request_latencies")
        self.__dict__.update(state)
        self.request_latencies = deque(latencies, maxlen=LATENCY_WINDOW)
        self._lock = threading.Lock()


class EntityLinkingPipeline:
    """Batched tokenize → embed → retrieve → rerank entity linker.

    Parameters
    ----------
    biencoder:
        Trained (or fresh) :class:`~repro.linking.biencoder.BiEncoder` used by
        the embed stage.
    index:
        A flat :class:`~repro.linking.candidates.EntityIndex` or a
        :class:`~repro.linking.candidates.ShardedEntityIndex`.  Sharded
        indexes enable per-mention world routing.
    crossencoder:
        Optional :class:`~repro.linking.crossencoder.CrossEncoder`; when
        absent (or ``rerank=False``) the top retrieval candidate is predicted.
    k:
        Candidates retrieved per mention (the paper's Recall@k budget).
    batch_size:
        Micro-batch size; incoming mention lists are chunked to this size so
        memory stays bounded under arbitrarily large requests.
    route_by_domain:
        With a sharded index, route each mention to its own world's shard
        (the zero-shot serving setup) instead of fanning out to all shards.
    degraded_k:
        Retrieval budget of the brownout (degraded) stage list; defaults to
        ``max(1, k // 4)``.  See :meth:`set_degraded`.
    """

    def __init__(
        self,
        biencoder: BiEncoder,
        index: AnyIndex,
        crossencoder: Optional[CrossEncoder] = None,
        k: int = 16,
        rerank: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        route_by_domain: bool = True,
        degraded_k: Optional[int] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        if degraded_k is None:
            degraded_k = max(1, k // 4)
        if degraded_k <= 0:
            raise ValueError("degraded_k must be positive")
        self.biencoder = biencoder
        self.index = index
        self.crossencoder = crossencoder
        self.k = k
        self.degraded_k = degraded_k
        self.batch_size = batch_size
        self.rerank = rerank and crossencoder is not None
        self.route_by_domain = route_by_domain
        self.stats = PipelineStats()
        self._degraded = False

        self.stages = [
            TokenizeStage(biencoder.tokenizer),
            EmbedStage(biencoder, batch_size=None),  # micro-batching happens in link()
            RetrieveStage(index, k=k, route_by_domain=route_by_domain),
            RerankStage(crossencoder) if self.rerank else TopCandidateStage(),
        ]
        # The brownout stage list: same tokenize/embed stages (their caches
        # stay warm), a shrunken retrieval budget and no cross-encoder — the
        # cheapest configuration that still answers.  Built up front so
        # flipping modes mid-traffic allocates nothing.
        self._degraded_stages = [
            self.stages[0],
            self.stages[1],
            RetrieveStage(index, k=degraded_k, route_by_domain=route_by_domain),
            TopCandidateStage(),
        ]

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_blink(
        cls,
        blink: "BlinkPipeline",
        entities: Optional[Sequence[Entity]] = None,
        index: Optional[AnyIndex] = None,
        k: int = 16,
        rerank: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        sharded: bool = True,
        route_by_domain: bool = True,
    ) -> "EntityLinkingPipeline":
        """Wrap a trained :class:`~repro.linking.blink.BlinkPipeline` for serving.

        Either pass a prebuilt ``index`` or an ``entities`` collection to
        index (sharded per world by default).

        Example::

            serving = EntityLinkingPipeline.from_blink(blink, entities, k=64)
            predictions = serving.link(mentions)
        """
        if index is None:
            if entities is None:
                raise ValueError("either entities or index must be provided")
            if sharded:
                index = blink.biencoder.build_sharded_index(entities)
            else:
                index = blink.biencoder.build_index(entities)
        return cls(
            biencoder=blink.biencoder,
            index=index,
            crossencoder=blink.crossencoder,
            k=k,
            rerank=rerank,
            batch_size=batch_size,
            route_by_domain=route_by_domain,
        )

    def clone(self) -> "EntityLinkingPipeline":
        """A new pipeline over the *same* models and index, with fresh stats.

        This is the unit of replication for the cluster layer: every replica
        owns its own pipeline (own stage objects, own :class:`PipelineStats`,
        own micro-batch loop) while the heavyweight read-only state — encoder
        weights and the index snapshot — is shared.  The shared components
        only mutate deterministic-value caches (tokenisation, entity
        features, embedding LRU), so concurrent replicas can at worst repeat
        a computation, never corrupt a result.
        """
        return EntityLinkingPipeline(
            biencoder=self.biencoder,
            index=self.index,
            crossencoder=self.crossencoder,
            k=self.k,
            rerank=self.rerank,
            batch_size=self.batch_size,
            route_by_domain=self.route_by_domain,
            degraded_k=self.degraded_k,
        )

    # ------------------------------------------------------------------
    # Brownout (degraded) mode
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the pipeline is currently in brownout (degraded) mode."""
        return self._degraded

    def set_degraded(self, degraded: bool) -> None:
        """Flip between the full and the degraded stage list.

        Degraded mode drops the cross-encoder rerank and shrinks retrieval
        to ``degraded_k`` candidates — quality is shed instead of latency
        when the cluster is under sustained queue pressure.  Results carry
        :attr:`LinkingResult.degraded` so callers and SLO accounting can
        tell.  The flag is a plain attribute read once per micro-batch; a
        mid-batch flip affects the *next* batch, never splits one.
        """
        self._degraded = bool(degraded)

    # ------------------------------------------------------------------
    # Linking
    # ------------------------------------------------------------------
    def link(self, mentions: Sequence[Mention]) -> List[LinkingResult]:
        """Link a batch of mentions; returns one result per mention, in order.

        The input is chunked into ``batch_size`` micro-batches; each chunk
        flows through the stage list with every stage vectorized over the
        whole chunk.
        """
        mentions = list(mentions)
        results: List[LinkingResult] = []
        for start in range(0, len(mentions), self.batch_size):
            chunk = mentions[start:start + self.batch_size]
            results.extend(self._link_chunk(chunk))
        return results

    def link_one(self, mention: Mention) -> LinkingResult:
        """Convenience wrapper linking a single mention."""
        return self.link([mention])[0]

    def _link_chunk(self, mentions: List[Mention]) -> List[LinkingResult]:
        if not mentions:
            return []
        degraded = self._degraded  # one read: the whole chunk runs one mode
        stages = self._degraded_stages if degraded else self.stages
        batch = PipelineBatch(mentions=mentions)
        for stage in stages:
            started = time.perf_counter()
            batch = stage(batch)
            self.stats.record(stage.name, time.perf_counter() - started)
        self.stats.record_batch(len(mentions))
        return self._assemble(batch, degraded=degraded)

    def _assemble(
        self, batch: PipelineBatch, degraded: bool = False
    ) -> List[LinkingResult]:
        assert batch.retrievals is not None and batch.predictions is not None
        results: List[LinkingResult] = []
        for position, (mention, retrieval, predicted) in enumerate(
            zip(batch.mentions, batch.retrievals, batch.predictions)
        ):
            rerank_scores = None
            if batch.rerank_scores is not None:
                rerank_scores = [float(score) for score in batch.rerank_scores[position]]
            results.append(
                LinkingResult(
                    mention_id=mention.mention_id,
                    surface=mention.surface,
                    gold_entity_id=mention.gold_entity_id,
                    candidate_ids=list(retrieval.entity_ids),
                    retrieval_scores=list(retrieval.scores),
                    predicted_entity_id=predicted.entity_id if predicted is not None else None,
                    rerank_scores=rerank_scores,
                    degraded=degraded,
                )
            )
        return results
