"""Serving layer: the high-throughput batched entity-linking pipeline.

This package turns the research pipeline (bi-encoder candidate generation +
cross-encoder reranking) into a production-shaped serving path:

* :class:`~repro.serving.pipeline.EntityLinkingPipeline` — batched
  tokenize → embed → retrieve → rerank over micro-batches, returning
  structured :class:`~repro.serving.pipeline.LinkingResult` objects.
* :mod:`repro.serving.stages` — the vectorized stage implementations and the
  :class:`~repro.serving.stages.PipelineBatch` carrier they transform.

Quickstart::

    from repro.serving import EntityLinkingPipeline

    pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=64)
    for result in pipeline.link(mentions):
        print(result.surface, "->", result.predicted_entity_id)
"""

from .pipeline import (
    DEFAULT_BATCH_SIZE,
    EntityLinkingPipeline,
    LinkingResult,
    PipelineStats,
)
from .stages import (
    EmbedStage,
    MentionTokens,
    PipelineBatch,
    RerankStage,
    RetrieveStage,
    TokenizeStage,
    TopCandidateStage,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "EntityLinkingPipeline",
    "LinkingResult",
    "PipelineStats",
    "PipelineBatch",
    "MentionTokens",
    "TokenizeStage",
    "EmbedStage",
    "RetrieveStage",
    "RerankStage",
    "TopCandidateStage",
]
