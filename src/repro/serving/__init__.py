"""Serving layer: the high-throughput batched entity-linking pipeline.

This package turns the research pipeline (bi-encoder candidate generation +
cross-encoder reranking) into a production-shaped serving path:

* :class:`~repro.serving.pipeline.EntityLinkingPipeline` — batched
  tokenize → embed → retrieve → rerank over micro-batches, returning
  structured :class:`~repro.serving.pipeline.LinkingResult` objects.
* :class:`~repro.serving.service.LinkingService` — the asynchronous frontend:
  per-mention submits, dynamic micro-batching (flush on ``max_batch_size`` or
  ``max_wait_ms``), per-request futures and latency percentiles.
* :mod:`repro.serving.stages` — the vectorized stage implementations and the
  :class:`~repro.serving.stages.PipelineBatch` carrier they transform.

Quickstart::

    from repro.serving import EntityLinkingPipeline, LinkingService

    pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=64)
    for result in pipeline.link(mentions):
        print(result.surface, "->", result.predicted_entity_id)

    with LinkingService(pipeline, max_wait_ms=5.0) as service:
        service.warm_up()
        future = service.submit(mentions[0])      # one request at a time
        print(future.result().predicted_entity_id)
"""

from .pipeline import (
    DEFAULT_BATCH_SIZE,
    EntityLinkingPipeline,
    LinkingResult,
    PipelineStats,
)
from .service import DEFAULT_MAX_WAIT_MS, LinkingService
from .stages import (
    EmbedStage,
    MentionTokens,
    PipelineBatch,
    RerankStage,
    RetrieveStage,
    TokenizeStage,
    TopCandidateStage,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_WAIT_MS",
    "EntityLinkingPipeline",
    "LinkingResult",
    "LinkingService",
    "PipelineStats",
    "PipelineBatch",
    "MentionTokens",
    "TokenizeStage",
    "EmbedStage",
    "RetrieveStage",
    "RerankStage",
    "TopCandidateStage",
]
