"""Serving layer: the high-throughput batched entity-linking pipeline.

This package turns the research pipeline (bi-encoder candidate generation +
cross-encoder reranking) into a production-shaped serving path:

* :class:`~repro.serving.pipeline.EntityLinkingPipeline` — batched
  tokenize → embed → retrieve → rerank over micro-batches, returning
  structured :class:`~repro.serving.pipeline.LinkingResult` objects.
* :class:`~repro.serving.service.LinkingService` — the asynchronous frontend:
  per-mention submits, dynamic micro-batching (flush on ``max_batch_size`` or
  ``max_wait_ms``), per-request futures and latency percentiles.
* :mod:`repro.serving.stages` — the vectorized stage implementations and the
  :class:`~repro.serving.stages.PipelineBatch` carrier they transform.
* :mod:`repro.serving.cluster` — the multi-worker tier: a
  :class:`~repro.serving.cluster.ReplicaPool` of pipeline clones behind a
  :class:`~repro.serving.cluster.Router` with world-affinity dispatch,
  least-pending balancing, admission control (explicit
  :class:`~repro.serving.cluster.RejectedError` sheds) and automatic requeue
  from dead replicas, plus :class:`~repro.serving.cluster.FaultPlan` scripts
  for chaos testing.
* :mod:`repro.serving.resilience` — the self-healing layer: a
  :class:`~repro.serving.resilience.Supervisor` thread that auto-restarts
  dead replicas under a :class:`~repro.serving.resilience.RestartPolicy`,
  per-replica circuit breakers, end-to-end request deadlines and a
  :class:`~repro.serving.resilience.BrownoutController` that trades answer
  quality for latency under sustained overload.

Quickstart::

    from repro.serving import EntityLinkingPipeline, LinkingService

    pipeline = EntityLinkingPipeline.from_blink(blink, entities, k=64)
    for result in pipeline.link(mentions):
        print(result.surface, "->", result.predicted_entity_id)

    with LinkingService(pipeline, max_wait_ms=5.0) as service:
        service.warm_up()
        future = service.submit(mentions[0])      # one request at a time
        print(future.result().predicted_entity_id)

    pool = ReplicaPool.from_pipeline(pipeline, replicas=4)
    with Router(pool, admission=AdmissionPolicy(watermark=512)) as router:
        router.warm_up()
        print(router.link(mentions[0]).predicted_entity_id)
"""

from .cluster import (
    AdmissionPolicy,
    BreakerOpenError,
    ClusterStats,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ProcessReplica,
    RejectedError,
    Replica,
    ReplicaDiedError,
    ReplicaHealth,
    ReplicaPool,
    Router,
    ThreadReplica,
)
from .pipeline import (
    DEFAULT_BATCH_SIZE,
    EntityLinkingPipeline,
    LinkingResult,
    PipelineStats,
)
from .resilience import (
    BreakerPolicy,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    RestartPolicy,
    Supervisor,
)
from .service import (
    DEFAULT_MAX_WAIT_MS,
    DeadlineExpiredError,
    LinkingService,
    OverCapacityError,
)
from .stages import (
    EmbedStage,
    MentionTokens,
    PipelineBatch,
    RerankStage,
    RetrieveStage,
    TokenizeStage,
    TopCandidateStage,
)

__all__ = [
    "AdmissionPolicy",
    "BreakerOpenError",
    "BreakerPolicy",
    "BrownoutController",
    "BrownoutPolicy",
    "CircuitBreaker",
    "ClusterStats",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_WAIT_MS",
    "DeadlineExpiredError",
    "EntityLinkingPipeline",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkingResult",
    "LinkingService",
    "OverCapacityError",
    "PipelineStats",
    "ProcessReplica",
    "RejectedError",
    "Replica",
    "ReplicaDiedError",
    "ReplicaHealth",
    "ReplicaPool",
    "RestartPolicy",
    "Router",
    "Supervisor",
    "ThreadReplica",
    "PipelineBatch",
    "MentionTokens",
    "TokenizeStage",
    "EmbedStage",
    "RetrieveStage",
    "RerankStage",
    "TopCandidateStage",
]
