"""Vectorized pipeline stages for the serving path.

Each stage is a callable object transforming a :class:`PipelineBatch` in
place and returning it.  The stage contract (see ``docs/architecture.md``) is
strictly additive — a stage only *fills* fields, never removes them — so
stages compose linearly and a partial pipeline (e.g. retrieval without
reranking) is just a shorter stage list:

=================  ============================  ==============================
Stage              Reads                         Fills
=================  ============================  ==============================
TokenizeStage      ``mentions``                  ``mention_tokens``
EmbedStage         ``mention_tokens``            ``query_vectors``
RetrieveStage      ``query_vectors, mentions``   ``retrievals``, ``candidates``
RerankStage        ``mention_tokens,             ``rerank_scores``,
                   candidates``                  ``predictions``
TopCandidateStage  ``candidates``                ``predictions``
=================  ============================  ==============================

All stages are batch-first: one encoder forward for the whole micro-batch on
the embed side, one blocked matmul per routed shard group on the retrieval
side, and one cross-encoder forward over every (mention, candidate) row on
the rerank side.  No stage loops a model call per example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..kb.entity import Entity, Mention
from ..linking.biencoder import BiEncoder
from ..linking.candidates import EntityIndex, RetrievalResult, ShardedEntityIndex
from ..linking.crossencoder import CrossEncoder
from ..text.normalization import normalize_text
from ..text.tokenizer import Tokenizer

AnyIndex = Union[EntityIndex, ShardedEntityIndex]


@dataclass
class MentionTokens:
    """Tokenisation artefacts of one mention, shared by the later stages.

    ``prefix_ids`` is the unpadded ``[bos] left <m> surface </m> right`` id
    sequence — the bi-encoder mention input *and* the mention half of every
    cross-encoder row.  The token sets feed the cross-encoder's lexical
    features without re-tokenising.
    """

    prefix_ids: List[int]
    surface_tokens: frozenset
    context_tokens: frozenset
    normalized_surface: str


@dataclass
class PipelineBatch:
    """Mutable carrier threaded through the pipeline stages.

    Fields start empty and are filled by the stage that owns them; the
    docstring table in :mod:`repro.serving.stages` records which stage fills
    what.
    """

    mentions: List[Mention]
    mention_tokens: Optional[List[MentionTokens]] = None
    query_vectors: Optional[np.ndarray] = None
    retrievals: Optional[List[RetrievalResult]] = None
    candidates: Optional[List[List[Entity]]] = None
    rerank_scores: Optional[List[np.ndarray]] = None
    predictions: Optional[List[Optional[Entity]]] = None

    def __len__(self) -> int:
        return len(self.mentions)


class TokenizeStage:
    """Tokenize each mention exactly once for the whole pipeline.

    Contract: reads ``batch.mentions``, fills ``batch.mention_tokens``.  The
    embed and rerank stages consume these artefacts instead of re-running the
    tokenizer (the seed code tokenised every mention three times: once for
    the bi-encoder input, once per cross-encoder row, once for the lexical
    features).
    """

    name = "tokenize"

    def __init__(self, tokenizer: Tokenizer) -> None:
        self.tokenizer = tokenizer

    def __call__(self, batch: PipelineBatch) -> PipelineBatch:
        encode_tokens = self.tokenizer.vocabulary.encode_tokens
        artefacts: List[MentionTokens] = []
        for mention in batch.mentions:
            left, surface, right = self.tokenizer.mention_token_parts(
                mention.surface, mention.context_left, mention.context_right
            )
            tokens = self.tokenizer.assemble_mention_tokens(left, surface, right)
            artefacts.append(
                MentionTokens(
                    prefix_ids=encode_tokens(tokens),
                    surface_tokens=frozenset(surface),
                    context_tokens=frozenset(left) | frozenset(right),
                    normalized_surface=normalize_text(mention.surface),
                )
            )
        batch.mention_tokens = artefacts
        return batch


class EmbedStage:
    """Embed the mention micro-batch with one bi-encoder forward.

    Contract: reads ``batch.mention_tokens`` (falling back to raw
    ``batch.mentions`` when no TokenizeStage ran), fills
    ``batch.query_vectors`` with a ``(len(batch), model_dim)`` unit-norm
    float64 matrix.
    """

    name = "embed"

    def __init__(self, biencoder: BiEncoder, batch_size: Optional[int] = None) -> None:
        self.biencoder = biencoder
        self.batch_size = batch_size

    def __call__(self, batch: PipelineBatch) -> PipelineBatch:
        if batch.mention_tokens is not None:
            max_length = self.biencoder.config.encoder.max_length
            pad_id = self.biencoder.tokenizer.pad_id
            ids = np.full((len(batch), max_length), pad_id, dtype=np.int64)
            for row, tokens in enumerate(batch.mention_tokens):
                prefix = tokens.prefix_ids[:max_length]
                ids[row, : len(prefix)] = prefix
            batch.query_vectors = self.biencoder.embed_mention_id_matrix(ids)
        else:
            batch.query_vectors = self.biencoder.embed_mentions(
                batch.mentions, batch_size=self.batch_size
            )
        return batch


class RetrieveStage:
    """Sharded MIPS retrieval with per-mention world routing.

    Contract: reads ``batch.query_vectors`` (and each mention's ``domain``
    when the index is sharded), fills ``batch.retrievals`` (one
    :class:`RetrievalResult` per mention) and ``batch.candidates`` (resolved
    Entity lists, ranking order preserved).
    """

    name = "retrieve"

    def __init__(self, index: AnyIndex, k: int, route_by_domain: bool = True) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.index = index
        self.k = k
        self.route_by_domain = route_by_domain

    def __call__(self, batch: PipelineBatch) -> PipelineBatch:
        assert batch.query_vectors is not None, "EmbedStage must run before RetrieveStage"
        if isinstance(self.index, ShardedEntityIndex):
            routes: Sequence[Optional[str]]
            if self.route_by_domain:
                routes = [mention.domain for mention in batch.mentions]
            else:
                routes = [None] * len(batch)
            batch.retrievals = self.index.search_routed(batch.query_vectors, self.k, routes)
        else:
            batch.retrievals = self.index.search(batch.query_vectors, self.k)
        batch.candidates = [
            [self.index.entity(entity_id) for entity_id in retrieval.entity_ids]
            for retrieval in batch.retrievals
        ]
        return batch


class RerankStage:
    """Cross-encoder reranking of every candidate list in one forward pass.

    Contract: reads ``batch.mentions`` and ``batch.candidates``, fills
    ``batch.rerank_scores`` (one score array per mention, aligned with its
    candidates) and ``batch.predictions`` (argmax candidate, None when the
    candidate list is empty).
    """

    name = "rerank"

    def __init__(self, crossencoder: CrossEncoder) -> None:
        self.crossencoder = crossencoder

    def __call__(self, batch: PipelineBatch) -> PipelineBatch:
        assert batch.candidates is not None, "RetrieveStage must run before RerankStage"
        batch.rerank_scores = self.crossencoder.score_candidate_batch(
            batch.mentions, batch.candidates, mention_tokens=batch.mention_tokens
        )
        batch.predictions = [
            candidates[int(np.argmax(scores))] if len(candidates) else None
            for scores, candidates in zip(batch.rerank_scores, batch.candidates)
        ]
        return batch


class TopCandidateStage:
    """Rerank-free fallback: predict the best retrieval candidate.

    Contract: reads ``batch.candidates``, fills ``batch.predictions`` with
    each mention's top-ranked candidate (None when retrieval came up empty).
    """

    name = "top_candidate"

    def __call__(self, batch: PipelineBatch) -> PipelineBatch:
        assert batch.candidates is not None, "RetrieveStage must run before TopCandidateStage"
        batch.predictions = [
            candidates[0] if candidates else None for candidates in batch.candidates
        ]
        return batch
