"""Asynchronous serving frontend: dynamic micro-batching over the pipeline.

:class:`LinkingService` is the piece that turns the batched
:class:`~repro.serving.pipeline.EntityLinkingPipeline` into something a server
process can run: callers submit *individual* :class:`~repro.kb.entity.Mention`
requests and receive futures, while a background scheduler thread accumulates
the queue into dynamic micro-batches and flushes one into the pipeline when
either

* ``max_batch_size`` requests are waiting (throughput-bound flush), or
* the oldest waiting request has aged ``max_wait_ms`` (latency-bound flush).

Per-request submit→completion latency is recorded into the pipeline's
:class:`~repro.serving.pipeline.PipelineStats` rolling window, so the p50/p99
serving percentiles sit next to the per-stage throughput counters.

Example::

    service = LinkingService(pipeline, max_batch_size=64, max_wait_ms=5.0)
    service.warm_up()                      # materialise shards before traffic
    future = service.submit(mention)       # non-blocking
    result = future.result(timeout=1.0)    # LinkingResult
    service.close()                        # drains the queue, then stops

The service is also a context manager (``with LinkingService(...) as s:``);
leaving the block drains outstanding requests and joins the worker thread.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence

from ..kb.entity import Mention
from ..linking.candidates import ShardedEntityIndex
from .pipeline import EntityLinkingPipeline, LinkingResult

#: Default maximum age of the oldest queued request before a partial batch is
#: flushed anyway (milliseconds).
DEFAULT_MAX_WAIT_MS = 10.0

#: Heartbeat of the scheduler's idle wait (seconds).  The scheduler never
#: blocks longer than this without re-checking ``_closing`` and sweeping
#: expired deadlines, so a missed wakeup (e.g. a notify lost to a frozen
#: fault-injected replica) can strand it for at most one heartbeat.
SCHEDULER_HEARTBEAT_SECONDS = 0.1


class RejectedError(RuntimeError):
    """Base of the "request refused without being processed" taxonomy.

    Raised *through the returned future*, at classification time: a rejected
    request never occupies a batch slot and never times out.  Callers that
    only care about "was my request dropped on purpose" catch this base;
    the subclasses say why:

    * :class:`OverCapacityError` — shed by admission control (over the
      pending watermark);
    * :class:`DeadlineExpiredError` — the caller's deadline passed before
      the request reached a batch;
    * :class:`~repro.serving.cluster.BreakerOpenError` — every healthy
      replica's circuit breaker is open.
    """


class OverCapacityError(RejectedError):
    """A submit shed by admission control — the service is over its watermark.

    Set on the returned future immediately at submit time: a shed request
    never occupies a queue slot and never times out.
    """


class DeadlineExpiredError(RejectedError):
    """The request's deadline passed before it reached a batch.

    Deadline-expired requests are dropped *before* consuming a batch slot —
    nobody is waiting for the answer, so the compute is not spent.  The
    router treats this as non-retryable: requeueing a request that is
    already too late only wastes another replica's time.
    """


def warm_up_index(index, worlds: Optional[Sequence[str]] = None) -> List[str]:
    """Materialise shards of a sharded index ahead of traffic.

    Shared by :meth:`LinkingService.warm_up` and the cluster router (whose
    replicas all serve from one read-only index snapshot, so one warm-up
    covers the whole pool).  A flat index has nothing to warm and returns an
    empty list; unknown world names raise ``ValueError`` before any shard is
    built.
    """
    if not isinstance(index, ShardedEntityIndex):
        return []
    if worlds is not None:
        known = index.worlds()
        unknown = sorted(set(worlds) - set(known))
        if unknown:
            raise ValueError(
                f"unknown world(s) {', '.join(map(repr, unknown))}; "
                f"known worlds: {', '.join(known)}"
            )
    warmed: List[str] = []
    for world in (index.worlds() if worlds is None else worlds):
        index.shard(world)
        warmed.append(world)
    return warmed


@dataclass
class _PendingRequest:
    """One queued mention with its caller-facing future and submit time.

    ``deadline_at`` is an absolute ``time.perf_counter()`` instant; a request
    still queued past it is failed with :class:`DeadlineExpiredError` instead
    of occupying a batch slot.
    """

    mention: Mention
    future: "Future[LinkingResult]"
    submitted_at: float
    deadline_at: Optional[float] = None

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at


class LinkingService:
    """Dynamic-batching frontend over an :class:`EntityLinkingPipeline`.

    Parameters
    ----------
    pipeline:
        The batched pipeline doing the actual linking work.
    max_batch_size:
        Flush as soon as this many requests are queued.  Defaults to the
        pipeline's own micro-batch size so one flush is one pipeline chunk.
    max_wait_ms:
        Flush a partial batch once its oldest request has waited this long —
        the latency bound under trickling traffic.
    start:
        Start the scheduler thread immediately (pass False to start manually
        via :meth:`start`, e.g. after :meth:`warm_up`).
    """

    def __init__(
        self,
        pipeline: EntityLinkingPipeline,
        max_batch_size: Optional[int] = None,
        max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
        start: bool = True,
    ) -> None:
        if max_batch_size is None:
            max_batch_size = pipeline.batch_size
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.pipeline = pipeline
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms

        self._queue: Deque[_PendingRequest] = deque()
        self._inflight: List[_PendingRequest] = []
        self._has_deadlines = False
        self._peak_pending = 0
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._closing = False
        self._aborted = False
        self._worker: Optional[threading.Thread] = None
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the scheduler thread (idempotent while running)."""
        with self._lock:
            if self._closing:
                raise RuntimeError("cannot restart a closed LinkingService")
            if self._worker is not None and self._worker.is_alive():
                return
            self._worker = threading.Thread(
                target=self._run, name="linking-service-scheduler", daemon=True
            )
            self._worker.start()

    @property
    def running(self) -> bool:
        """Whether the scheduler thread is alive."""
        return self._worker is not None and self._worker.is_alive()

    def close(self, timeout: Optional[float] = None) -> None:
        """Graceful shutdown: reject new submits, drain the queue, join.

        Requests already queued at close time are still flushed and their
        futures completed; only *new* submissions are rejected.  Idempotent.
        """
        with self._lock:
            self._closing = True
            self._work_ready.notify_all()
            worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)

    def abort(self, error: Optional[BaseException] = None) -> int:
        """Crash-style shutdown: fail every outstanding request immediately.

        Unlike :meth:`close`, nothing is drained — queued *and* in-flight
        requests get ``error`` (default ``RuntimeError``) set on their
        futures right away and the scheduler thread exits at the next batch
        boundary.  The cluster layer uses this to model a replica dying
        mid-stream: the router sees the per-request exceptions and requeues
        the work on healthy replicas.  Returns the number of requests that
        were failed.  Idempotent; :meth:`submit` raises afterwards.
        """
        if error is None:
            error = RuntimeError("LinkingService aborted")
        with self._lock:
            self._closing = True
            self._aborted = True
            doomed = list(self._queue) + list(self._inflight)
            self._queue.clear()
            self._work_ready.notify_all()
        failed = 0
        for request in doomed:
            try:
                request.future.set_exception(error)
                failed += 1
            except InvalidStateError:
                pass  # completed or cancelled before the abort won the race
        return failed

    @property
    def aborted(self) -> bool:
        """Whether :meth:`abort` has been called (the crash-style shutdown)."""
        with self._lock:
            return self._aborted

    def __enter__(self) -> "LinkingService":
        self.start()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(
        self, mention: Mention, deadline_at: Optional[float] = None
    ) -> "Future[LinkingResult]":
        """Enqueue one mention; returns a future resolving to its result.

        Non-blocking: the scheduler thread batches queued mentions and the
        future completes when its micro-batch has been linked.  Raises
        ``RuntimeError`` after :meth:`close`.

        ``deadline_at`` (absolute ``time.perf_counter()`` seconds) bounds how
        long the request may wait: if it is still queued past the deadline,
        its future fails with :class:`DeadlineExpiredError` *before* the
        request consumes a batch slot.
        """
        request = _PendingRequest(
            mention=mention, future=Future(), submitted_at=time.perf_counter(),
            deadline_at=deadline_at,
        )
        with self._lock:
            if self._closing:
                raise RuntimeError("LinkingService is closed")
            if self._worker is None:
                raise RuntimeError("LinkingService is not started")
            if deadline_at is not None:
                self._has_deadlines = True
            self._queue.append(request)
            if len(self._queue) > self._peak_pending:
                self._peak_pending = len(self._queue)
            # Wake the scheduler only when its state can change: the first
            # request arms the max_wait deadline, a full batch flushes
            # immediately.  Intermediate submits would only make the worker
            # wake, re-count and sleep again — per-request wakeups are the
            # dominant dynamic-batching overhead at high submission rates.
            queued = len(self._queue)
            if queued == 1 or queued >= self.max_batch_size:
                self._work_ready.notify()
        return request.future

    def link(self, mention: Mention, timeout: Optional[float] = None) -> LinkingResult:
        """Blocking convenience wrapper: submit one mention and wait.

        On timeout the request's future is *cancelled* before the error
        propagates: the entry stays queued (and counts in :attr:`pending`)
        until the scheduler pops it, but :meth:`_flush` then skips it via
        ``set_running_or_notify_cancel``, so no pipeline work is spent on
        an abandoned request.  If the flush already started (the future is
        RUNNING) the cancel is a no-op and the result is simply discarded.
        """
        future = self.submit(mention)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            raise

    @property
    def pending(self) -> int:
        """Number of requests currently waiting in the queue."""
        with self._lock:
            return len(self._queue)

    @property
    def outstanding(self) -> int:
        """Queued plus in-flight requests (the batch being flushed).

        The cluster router balances on this rather than :attr:`pending` —
        a replica mid-batch is busy even when its queue reads empty.
        """
        with self._lock:
            return len(self._queue) + len(self._inflight)

    @property
    def peak_pending(self) -> int:
        """High-watermark of the queue depth since start (or the last reset).

        Exact — updated on every submit — unlike sampling :attr:`pending`
        from a monitoring ticker, which can miss short spikes between ticks.
        """
        with self._lock:
            return self._peak_pending

    def reset_peak_pending(self) -> int:
        """Restart the queue-depth high-watermark from the current depth."""
        with self._lock:
            self._peak_pending = len(self._queue)
            return self._peak_pending

    @property
    def stats(self):
        """The underlying pipeline's :class:`PipelineStats` (shared object)."""
        return self.pipeline.stats

    # ------------------------------------------------------------------
    # Warm-up
    # ------------------------------------------------------------------
    def warm_up(self, worlds: Optional[Sequence[str]] = None) -> List[str]:
        """Materialise index shards ahead of traffic; returns warmed worlds.

        With a :class:`~repro.linking.candidates.ShardedEntityIndex` this
        builds (embeds) the selected shards — all of them by default — so the
        first request to each world does not pay the lazy embedding cost.
        A flat index has nothing to warm and returns an empty list.

        Call this *before* traffic flows (e.g. construct with ``start=False``,
        warm up, then :meth:`start`): the index does not lock its lazy shard
        builds, so warming a world the scheduler is concurrently searching
        can embed that shard twice.  With a deterministic ``embed_fn`` (the
        bi-encoder in eval mode) the duplicate build is wasted work, never
        wrong results.
        """
        return warm_up_index(self.pipeline.index, worlds)

    # ------------------------------------------------------------------
    # Scheduler
    # ------------------------------------------------------------------
    def _run(self) -> None:
        max_wait = self.max_wait_ms / 1000.0
        while True:
            with self._lock:
                # Sleep until there is work or a shutdown request.  The wait
                # is bounded by a heartbeat: a lost wakeup (or a notify that
                # raced a fault-injected freeze) stalls the scheduler for at
                # most one heartbeat instead of forever, so drain/close and
                # the cluster supervisor always make progress.
                while not self._queue and not self._closing:
                    self._work_ready.wait(timeout=SCHEDULER_HEARTBEAT_SECONDS)
                if not self._queue and self._closing:
                    return
                expired = self._sweep_expired_locked()
                if not self._queue:
                    self._fail_expired(expired)
                    continue
                # Work exists: hold out for a full batch until the oldest
                # request hits the latency bound (skip the wait on shutdown —
                # drain as fast as possible).
                deadline = self._queue[0].submitted_at + max_wait
                while (
                    len(self._queue) < self.max_batch_size
                    and not self._closing
                ):
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0 or not self._work_ready.wait(timeout=remaining):
                        break
                expired.extend(self._sweep_expired_locked())
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.max_batch_size, len(self._queue)))
                ]
                # Track the in-flight batch so abort() can reach requests
                # that have already left the queue.
                self._inflight = batch
            self._fail_expired(expired)
            try:
                self._flush(batch)
            finally:
                with self._lock:
                    self._inflight = []

    def _sweep_expired_locked(self) -> List[_PendingRequest]:
        # Caller holds self._lock.  Splits expired requests out of the queue;
        # their futures are failed *outside* the lock (future callbacks run
        # inline and must not re-enter the scheduler under its own lock).
        if not self._has_deadlines or not self._queue:
            return []
        now = time.perf_counter()
        if not any(request.expired(now) for request in self._queue):
            return []
        expired = [request for request in self._queue if request.expired(now)]
        survivors = [request for request in self._queue if not request.expired(now)]
        self._queue.clear()
        self._queue.extend(survivors)
        return expired

    @staticmethod
    def _fail_expired(expired: List[_PendingRequest]) -> None:
        for request in expired:
            LinkingService._settle(request.future, error=DeadlineExpiredError(
                f"request {request.mention.mention_id} expired "
                f"while queued (deadline passed before batching)"
            ))

    def _flush(self, batch: List[_PendingRequest]) -> None:
        # Transition each future to RUNNING; a False return means the caller
        # cancelled while queued, and after a True return cancellation is no
        # longer possible, so the set_result/set_exception below cannot race.
        # An InvalidStateError means abort() already failed the future — the
        # request is dead, skip it.
        live: List[_PendingRequest] = []
        now = time.perf_counter()
        for request in batch:
            if request.expired(now):
                # Last line of defence: the sweep runs at batch boundaries,
                # but a request can expire between being popped and flushed
                # (e.g. while a fault-injected freeze held the batch).  Drop
                # it here so no pipeline compute is spent on it.
                self._settle(request.future, error=DeadlineExpiredError(
                    f"request {request.mention.mention_id} expired "
                    f"before its batch was flushed"
                ))
                continue
            try:
                if request.future.set_running_or_notify_cancel():
                    live.append(request)
            except (InvalidStateError, RuntimeError):
                # InvalidStateError when abort() already failed the future;
                # set_running_or_notify_cancel raises a bare RuntimeError when
                # a concurrent kill() settled it between queue-pop and flush.
                # Either way the request is dead — skip it, don't let the
                # scheduler thread die.
                pass
        batch = live
        if not batch:
            return
        try:
            results = self.pipeline.link([request.mention for request in batch])
        except BaseException as error:  # propagate failures to every caller
            for request in batch:
                self._settle(request.future, error=error)
            return
        completed_at = time.perf_counter()
        stats = self.pipeline.stats
        for request, result in zip(batch, results):
            stats.record_latency(completed_at - request.submitted_at)
            self._settle(request.future, result=result)

    @staticmethod
    def _settle(
        future: "Future[LinkingResult]",
        result: Optional[LinkingResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        # abort() can fail a RUNNING future between the pipeline call and
        # the result delivery; the abort exception wins and the late result
        # is discarded (the router has already requeued the request).
        try:
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(result)
        except InvalidStateError:
            pass
