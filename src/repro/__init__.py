"""Reproduction of "Effective Few-Shot Named Entity Linking by Meta-Learning".

The package is organised as a set of substrates (``nn``, ``text``, ``kb``,
``data``, ``generation``, ``linking``) underneath the paper's contribution
(``meta``), plus an evaluation harness (``eval``) that regenerates every table
and figure of the paper.  See DESIGN.md for the full inventory and
EXPERIMENTS.md for paper-vs-measured numbers.

Typical usage::

    from repro import default_config
    from repro.data import generate_corpus
    from repro.meta import MetaBlinkTrainer

    config = default_config(seed=13)
    corpus = generate_corpus(config.corpus)
    trainer = MetaBlinkTrainer(config)
    result = trainer.train(domain="lego", corpus=corpus)
"""

from .utils.config import ExperimentConfig, default_config

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "default_config", "__version__"]
