"""Whole-project symbol table and call graph for interprocedural lint rules.

The per-file rules in :mod:`repro.analysis.rules` can only see one function
at a time, but every hard bug this repo shipped — the process-global grad
flag, the lock-starved ``PipelineStats``, the unbounded scheduler ``wait()``
— was a *cross-function* property.  This module builds the project-wide
structures those properties are stated over:

* :class:`ModuleSymbols` — one file's classes (with raw base names and
  inferred ``self.<attr>`` types), functions, and import aliases.
* :class:`SymbolTable` — all modules merged: class-hierarchy linearisation
  (left-to-right BFS, which matches C3 on the diamond shapes this codebase
  uses), a global function index, and a by-bare-name index for the
  conservative dynamic-dispatch fallback.
* :class:`CallResolver` — maps one :class:`~repro.analysis.dataflow.CallSite`
  descriptor to candidate callee function ids:

  - plain names resolve through local defs, then ``from x import y`` /
    ``import x as y`` aliases (project modules only);
  - ``self.method(...)`` resolves through the enclosing class's MRO;
  - ``super().method(...)`` resolves through the MRO *after* the defining
    class;
  - ``self.attr.method(...)`` resolves through the attr's inferred type
    (``self.attr = ClassName(...)`` in any method, or an ``__init__``
    parameter annotation flowing into ``self.attr = param``);
  - calling a class yields its ``__init__``; calling an instance-typed
    attribute yields its ``__call__`` (or ``forward``);
  - anything else falls back to **dynamic dispatch**: every known method
    with that bare name, tagged ``kind="dynamic"`` so rules can decide how
    much conservatism they want.

* :class:`CallGraph` — resolved edges plus a reverse index, giving
  :meth:`CallGraph.reverse_dependency_paths` (the file closure used by
  ``run_lint.py --changed-only``).

Function ids are ``"module:qualname"`` strings (``repro.serving.cluster:
Router.submit``) — stable across line drift, unique across the project.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: Blocking primitive method names are *never* resolved to project methods —
#: ``fut.result()`` means the concurrent.futures primitive, even though a
#: project class could in principle define a ``result`` method.  Kept in one
#: place so dataflow extraction and resolution agree.
PRIMITIVE_NAMES = frozenset({"wait", "join", "result", "recv"})

#: Calls resolved through the dynamic-dispatch fallback are capped at this
#: many candidates; beyond it the name is considered too common to carry
#: signal and the call is treated as external (documented conservatism cap).
DYNAMIC_CANDIDATE_CAP = 12


def path_to_module(path: str) -> str:
    """Dotted module name for a repo(-relative or seeded absolute) path.

    ``src/repro/serving/cluster.py`` → ``repro.serving.cluster``; a seeded
    copy like ``/tmp/x/src/repro/serving/cluster.py`` resolves identically
    (anything before the last ``src/`` segment is stripped), so fixture
    trees analyse exactly like the checkout.
    """
    norm = path.replace("\\", "/")
    marker = "src/"
    idx = norm.rfind("/" + marker)
    if idx >= 0:
        norm = norm[idx + 1 + len(marker):]
    elif norm.startswith(marker):
        norm = norm[len(marker):]
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    if norm.endswith("/__init__"):
        norm = norm[: -len("/__init__")]
    return norm.strip("/").replace("/", ".")


@dataclass
class FunctionInfo:
    """One function/method definition: where it lives and how it is scoped."""

    module: str
    qualname: str
    path: str
    line: int
    class_name: str = ""  # innermost enclosing class ("" for module level)
    decorators: Tuple[str, ...] = ()

    @property
    def fid(self) -> str:
        return f"{self.module}:{self.qualname}"

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_public(self) -> bool:
        return not any(
            part.startswith("_") for part in self.qualname.split(".")
        )


@dataclass
class ClassInfo:
    """One class definition: raw base names, methods, inferred attr types."""

    module: str
    name: str
    path: str
    line: int
    bases: Tuple[str, ...] = ()          # raw dotted names as written
    methods: Dict[str, str] = field(default_factory=dict)  # name -> qualname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> raw class name
    lock_attrs: Dict[str, str] = field(default_factory=dict)  # attr -> canonical attr

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class ModuleSymbols:
    """Symbol table for one file, JSON-serialisable for the summary cache."""

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)  # local -> full target
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(self.imports),
            "classes": {
                name: {
                    "line": info.line,
                    "bases": list(info.bases),
                    "methods": dict(info.methods),
                    "attr_types": dict(info.attr_types),
                    "lock_attrs": dict(info.lock_attrs),
                }
                for name, info in self.classes.items()
            },
            "functions": {
                qualname: {
                    "line": info.line,
                    "class": info.class_name,
                    "decorators": list(info.decorators),
                }
                for qualname, info in self.functions.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ModuleSymbols":
        module = str(payload["module"])
        path = str(payload["path"])
        symbols = cls(module=module, path=path, imports=dict(payload["imports"]))
        for name, row in dict(payload["classes"]).items():
            symbols.classes[name] = ClassInfo(
                module=module, name=name, path=path, line=int(row["line"]),
                bases=tuple(row["bases"]), methods=dict(row["methods"]),
                attr_types=dict(row["attr_types"]),
                lock_attrs=dict(row["lock_attrs"]),
            )
        for qualname, row in dict(payload["functions"]).items():
            symbols.functions[qualname] = FunctionInfo(
                module=module, qualname=qualname, path=path,
                line=int(row["line"]), class_name=str(row["class"]),
                decorators=tuple(row["decorators"]),
            )
        return symbols


class SymbolTable:
    """Every module's symbols merged, with hierarchy-aware lookups."""

    def __init__(self, modules: Iterable[ModuleSymbols]) -> None:
        self.modules: Dict[str, ModuleSymbols] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_name: Dict[str, List[str]] = {}
        self.classes: Dict[str, ClassInfo] = {}        # "module:Class" -> info
        self.class_by_name: Dict[str, List[ClassInfo]] = {}
        for symbols in modules:
            self.modules[symbols.module] = symbols
            for info in symbols.functions.values():
                self.functions[info.fid] = info
                self.by_name.setdefault(info.name, []).append(info.fid)
            for cls in symbols.classes.values():
                self.classes[cls.key] = cls
                self.class_by_name.setdefault(cls.name, []).append(cls)
        self._mro_cache: Dict[str, Tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def resolve_class(self, raw: str, module: str) -> Optional[ClassInfo]:
        """Resolve a raw (possibly dotted / aliased) class name from ``module``."""
        symbols = self.modules.get(module)
        leaf = raw.rsplit(".", 1)[-1]
        if symbols is not None:
            if raw in symbols.classes:
                return symbols.classes[raw]
            target = symbols.imports.get(raw.split(".", 1)[0])
            if target is not None:
                # "alias.Class" through `import pkg.mod as alias`, or a
                # direct `from pkg.mod import Class [as alias]`.
                full = target if "." not in raw else f"{target}.{raw.split('.', 1)[1]}"
                owner, _, name = full.rpartition(".")
                owned = self.modules.get(owner)
                if owned is not None and name in owned.classes:
                    return owned.classes[name]
                # Re-exported through a package __init__: fall through to
                # the global by-name lookup below.
        candidates = self.class_by_name.get(leaf, [])
        if len(candidates) == 1:
            return candidates[0]
        for candidate in candidates:
            if candidate.module == module:
                return candidate
        return candidates[0] if candidates else None

    def linearize(self, cls: ClassInfo) -> Tuple[str, ...]:
        """Left-to-right BFS linearisation of ``cls``'s hierarchy.

        Matches C3 for the single-inheritance chains and classic diamonds in
        this codebase; the point is a deterministic method-resolution order,
        not full C3 fidelity.
        """
        cached = self._mro_cache.get(cls.key)
        if cached is not None:
            return cached
        order: List[str] = []
        seen: Set[str] = set()
        queue = deque([cls])
        while queue:
            current = queue.popleft()
            if current.key in seen:
                continue
            seen.add(current.key)
            order.append(current.key)
            for base in current.bases:
                resolved = self.resolve_class(base, current.module)
                if resolved is not None and resolved.key not in seen:
                    queue.append(resolved)
        result = tuple(order)
        self._mro_cache[cls.key] = result
        return result

    def lookup_method(
        self, cls: ClassInfo, name: str, skip_owner: bool = False
    ) -> Optional[FunctionInfo]:
        """First definition of ``name`` along the MRO (after ``cls`` when
        ``skip_owner`` — the ``super()`` path)."""
        order = self.linearize(cls)
        if skip_owner:
            order = order[1:]
        for key in order:
            owner = self.classes[key]
            qualname = owner.methods.get(name)
            if qualname is not None:
                info = self.modules[owner.module].functions.get(qualname)
                if info is not None:
                    return info
        return None

    def subclasses_of(self, class_name: str) -> Set[str]:
        """Names of all project classes transitively deriving from
        ``class_name`` (matched by bare name, hierarchy-resolved)."""
        out: Set[str] = set()
        for cls in self.classes.values():
            for key in self.linearize(cls):
                if self.classes[key].name == class_name and cls.name != class_name:
                    out.add(cls.name)
                    break
        return out

    def attr_type(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """Inferred type of ``self.<attr>`` for ``cls``, searching the MRO."""
        for key in self.linearize(cls):
            owner = self.classes[key]
            raw = owner.attr_types.get(attr)
            if raw is not None:
                return self.resolve_class(raw, owner.module)
        return None


class CallResolver:
    """Resolve call descriptors against a :class:`SymbolTable`."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table

    def resolve(
        self,
        kind: str,
        name: str,
        receiver: str,
        caller: FunctionInfo,
    ) -> List[Tuple[str, str]]:
        """Candidate ``(fid, edge_kind)`` pairs for one call site.

        ``edge_kind`` is one of ``direct`` / ``method`` / ``super`` /
        ``attr`` / ``dynamic``; an empty list means the call leaves the
        project (stdlib, numpy, an unresolvable callable value).
        """
        if name in PRIMITIVE_NAMES:
            return []  # blocking primitives are effects, never project calls
        table = self.table
        symbols = table.modules.get(caller.module)
        cls = self._enclosing_class(caller)

        if kind == "super":
            if cls is not None:
                found = table.lookup_method(cls, name, skip_owner=True)
                if found is not None:
                    return [(found.fid, "super")]
            return self._dynamic(name, caller)

        if kind == "self":
            if cls is not None:
                found = table.lookup_method(cls, name)
                if found is not None:
                    return [(found.fid, "method")]
                # `self.attr(...)` calling a stored instance or callable.
                target = table.attr_type(cls, name)
                if target is not None:
                    return self._instance_call(target)
            return self._dynamic(name, caller)

        if kind == "name":
            if symbols is not None:
                # Sibling definition in the same scope, innermost first.
                prefix = caller.qualname.rsplit(".", 1)[0] if "." in caller.qualname else ""
                for qualname in (f"{prefix}.{name}" if prefix else name, name):
                    info = symbols.functions.get(qualname)
                    if info is not None:
                        return [(info.fid, "direct")]
                if name in symbols.classes:
                    return self._constructor(symbols.classes[name])
                target = symbols.imports.get(name)
                if target is not None:
                    return self._imported(target)
            return []  # unknown plain name: builtin or external

        if kind == "attr":
            # receiver is "self.<attr>" (typed attribute) or a module alias.
            if receiver.startswith("self.") and cls is not None:
                target = table.attr_type(cls, receiver[len("self."):])
                if target is not None:
                    found = table.lookup_method(target, name)
                    if found is not None:
                        return [(found.fid, "attr")]
                return self._dynamic(name, caller)
            if symbols is not None and receiver in symbols.imports:
                target_module = symbols.imports[receiver]
                owned = table.modules.get(target_module)
                if owned is not None:
                    if name in owned.functions:
                        return [(owned.functions[name].fid, "direct")]
                    if name in owned.classes:
                        return self._constructor(owned.classes[name])
                return []  # external module (numpy, threading, ...)
            return self._dynamic(name, caller)

        return self._dynamic(name, caller)

    # ------------------------------------------------------------------
    def _enclosing_class(self, caller: FunctionInfo) -> Optional[ClassInfo]:
        if not caller.class_name:
            return None
        symbols = self.table.modules.get(caller.module)
        if symbols is None:
            return None
        return symbols.classes.get(caller.class_name)

    def _constructor(self, cls: ClassInfo) -> List[Tuple[str, str]]:
        found = self.table.lookup_method(cls, "__init__")
        return [(found.fid, "direct")] if found is not None else []

    def _instance_call(self, cls: ClassInfo) -> List[Tuple[str, str]]:
        for name in ("__call__", "forward"):
            found = self.table.lookup_method(cls, name)
            if found is not None:
                return [(found.fid, "attr")]
        return []

    def _imported(self, target: str) -> List[Tuple[str, str]]:
        owner, _, name = target.rpartition(".")
        symbols = self.table.modules.get(owner)
        if symbols is not None:
            if name in symbols.functions:
                return [(symbols.functions[name].fid, "direct")]
            if name in symbols.classes:
                return self._constructor(symbols.classes[name])
        # Re-export through a package __init__ (from repro.nn import no_grad):
        # fall back to the unique global definition if there is one.
        fids = self.table.by_name.get(name, [])
        if len(fids) == 1:
            return [(fids[0], "direct")]
        return []

    def _dynamic(self, name: str, caller: FunctionInfo) -> List[Tuple[str, str]]:
        """Conservative fallback: every known def with this bare name.

        Over-approximates dynamic dispatch the way a race detector would —
        better a tagged ``dynamic`` edge a rule can weigh than a silently
        missing one.  Dunders and too-common names (over
        :data:`DYNAMIC_CANDIDATE_CAP` candidates) resolve to nothing.
        """
        if name.startswith("__") and name.endswith("__"):
            return []
        fids = [fid for fid in self.table.by_name.get(name, []) if fid != caller.fid]
        if not fids or len(fids) > DYNAMIC_CANDIDATE_CAP:
            return []
        return [(fid, "dynamic") for fid in sorted(fids)]


@dataclass
class ResolvedCall:
    """One call site with its resolved candidates (graph edge bundle)."""

    caller: str
    line: int
    name: str
    callees: Tuple[Tuple[str, str], ...]  # (fid, edge_kind)
    locks: Tuple[str, ...] = ()
    no_grad: bool = False
    caught: Tuple[str, ...] = ()


class CallGraph:
    """Resolved project call graph with a reverse index."""

    def __init__(self) -> None:
        self.sites: Dict[str, List[ResolvedCall]] = {}
        self.reverse: Dict[str, Set[str]] = {}

    def add(self, call: ResolvedCall) -> None:
        self.sites.setdefault(call.caller, []).append(call)
        for fid, _kind in call.callees:
            self.reverse.setdefault(fid, set()).add(call.caller)

    def calls_from(self, fid: str) -> List[ResolvedCall]:
        return self.sites.get(fid, [])

    def callers_of(self, fid: str) -> Set[str]:
        return self.reverse.get(fid, set())

    @property
    def edge_count(self) -> int:
        return sum(
            len(call.callees) for calls in self.sites.values() for call in calls
        )

    def reverse_dependency_paths(
        self, table: SymbolTable, paths: Iterable[str]
    ) -> Set[str]:
        """Files whose functions transitively call into ``paths``.

        The closure ``run_lint.py --changed-only`` lints: the changed files
        plus every file that could see a different interprocedural verdict
        because a callee's summary changed.
        """
        wanted = {p.replace("\\", "/") for p in paths}
        frontier = deque(
            info.fid for info in table.functions.values() if info.path in wanted
        )
        seen: Set[str] = set(frontier)
        while frontier:
            fid = frontier.popleft()
            for caller in self.callers_of(fid):
                if caller not in seen:
                    seen.add(caller)
                    frontier.append(caller)
        out = set(wanted)
        for fid in seen:
            info = table.functions.get(fid)
            if info is not None:
                out.add(info.path)
        return out
