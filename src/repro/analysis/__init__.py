"""Project-native static analysis for the repro codebase.

An AST-based lint framework whose rules encode *this repo's* invariants —
thread-local grad state, ``self._lock`` discipline, probe-mode restore,
the ``compute_dtype`` switch, future settlement in ``repro.serving`` and
pytest marker registration.  Every rule is distilled from a bug this
codebase actually shipped.

Entry points:

* ``scripts/run_lint.py`` — the CLI gate (exit code = verdict).
* :func:`run_lint` / :func:`lint_source` — the library API.
* ``lint_baseline.json`` — committed grandfathered findings, matched by
  ``(rule, path, symbol)`` fingerprint with per-entry justifications.

Suppress a single finding inline with ``# repro: disable=<rule>``.
"""

from .baseline import (
    Baseline,
    BaselineEntry,
    DEFAULT_BASELINE_NAME,
    TODO_JUSTIFICATION,
)
from .callgraph import CallGraph, CallResolver, SymbolTable
from .core import (
    FileContext,
    Finding,
    LintConfig,
    LintResult,
    ProjectRule,
    Rule,
    SYNTAX_ERROR_RULE,
    iter_python_files,
    lint_source,
    lint_sources,
    register,
    registered_rules,
    run_lint,
)
from .dataflow import ProjectContext, Summary
from .reporters import render_json, render_rule_table, render_text, summarize

# Importing the rules package registers every domain rule.
from . import rules as _rules  # noqa: F401

__all__ = [
    "Baseline",
    "BaselineEntry",
    "DEFAULT_BASELINE_NAME",
    "TODO_JUSTIFICATION",
    "CallGraph",
    "CallResolver",
    "SymbolTable",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "SYNTAX_ERROR_RULE",
    "Summary",
    "iter_python_files",
    "lint_source",
    "lint_sources",
    "register",
    "registered_rules",
    "run_lint",
    "render_json",
    "render_rule_table",
    "render_text",
    "summarize",
]
