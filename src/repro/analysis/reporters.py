"""Render a :class:`~repro.analysis.core.LintResult` as text or JSON.

The text reporter prints the canonical ``path:line: rule: message`` lines
(the format CI greps and editors jump on) followed by a one-line summary;
the JSON reporter emits a machine-readable payload for tooling.
"""

from __future__ import annotations

import json
from typing import Dict

from .core import LintResult


def summarize(result: LintResult) -> str:
    """One-line verdict: files, timing, finding counts."""
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.stale:
        extras.append(f"{len(result.stale)} stale baseline entr(y/ies)")
    detail = f" ({', '.join(extras)})" if extras else ""
    graph = ""
    if result.functions:
        graph = (
            f" [callgraph: {result.functions} fns, {result.call_edges} edges "
            f"in {result.callgraph_seconds:.2f}s, "
            f"cache {result.cache_hit_rate:.0%}]"
        )
    return (
        f"lint: {result.files} files in {result.elapsed_seconds:.2f}s "
        f"({result.files_per_second:.0f} files/s) -> {verdict}{detail}{graph}"
    )


def render_rule_table(result: LintResult) -> str:
    """Per-rule new-finding counts, aligned — printed by CI on failure."""
    counts = result.counts_by_rule()
    if not counts:
        return "no new findings"
    width = max(len(rule) for rule in counts)
    lines = [f"{rule:<{width}}  {count:>4}" for rule, count in counts.items()]
    lines.append(f"{'total':<{width}}  {sum(counts.values()):>4}")
    return "\n".join(lines)


def render_text(result: LintResult, show_baselined: bool = False) -> str:
    """Diagnostic lines + stale-entry warnings + summary."""
    lines = [finding.describe() for finding in result.findings]
    if show_baselined:
        lines += [
            f"{finding.describe()} [baselined]" for finding in result.baselined
        ]
    for entry in result.stale:
        lines.append(
            f"stale baseline entry (fixed? prune with --baseline-update): "
            f"{entry.describe()}"
        )
    lines.append(summarize(result))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report: findings, baselined, stale, summary block."""
    payload: Dict[str, object] = {
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "stale": [entry.to_dict() for entry in result.stale],
        "summary": {
            "files": result.files,
            "elapsed_seconds": result.elapsed_seconds,
            "files_per_second": result.files_per_second,
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "stale": len(result.stale),
            "ok": result.ok,
            "callgraph_seconds": result.callgraph_seconds,
            "functions": result.functions,
            "call_edges": result.call_edges,
            "cache_hits": result.cache_hits,
            "cache_misses": result.cache_misses,
            "cache_hit_rate": result.cache_hit_rate,
        },
        "by_rule": result.counts_by_rule(),
    }
    return json.dumps(payload, indent=1) + "\n"
