"""Render a :class:`~repro.analysis.core.LintResult` as text or JSON.

The text reporter prints the canonical ``path:line: rule: message`` lines
(the format CI greps and editors jump on) followed by a one-line summary;
the JSON reporter emits a machine-readable payload for tooling.
"""

from __future__ import annotations

import json
from typing import Dict

from .core import LintResult


def summarize(result: LintResult) -> str:
    """One-line verdict: files, timing, finding counts."""
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.stale:
        extras.append(f"{len(result.stale)} stale baseline entr(y/ies)")
    detail = f" ({', '.join(extras)})" if extras else ""
    return (
        f"lint: {result.files} files in {result.elapsed_seconds:.2f}s "
        f"({result.files_per_second:.0f} files/s) -> {verdict}{detail}"
    )


def render_text(result: LintResult, show_baselined: bool = False) -> str:
    """Diagnostic lines + stale-entry warnings + summary."""
    lines = [finding.describe() for finding in result.findings]
    if show_baselined:
        lines += [
            f"{finding.describe()} [baselined]" for finding in result.baselined
        ]
    for entry in result.stale:
        lines.append(
            f"stale baseline entry (fixed? prune with --baseline-update): "
            f"{entry.describe()}"
        )
    lines.append(summarize(result))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report: findings, baselined, stale, summary block."""
    payload: Dict[str, object] = {
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "stale": [entry.to_dict() for entry in result.stale],
        "summary": {
            "files": result.files,
            "elapsed_seconds": result.elapsed_seconds,
            "files_per_second": result.files_per_second,
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "stale": len(result.stale),
            "ok": result.ok,
        },
    }
    return json.dumps(payload, indent=1) + "\n"
