"""Core of the project-native lint framework: findings, rules, the engine.

The runtime bugs this repo has shipped were never "typos a generic linter
catches" — they were violations of *project invariants*: a process-global
grad flag mutated from replica scheduler threads, a ``PipelineStats``
counter updated outside its lock, probes running with dropout active.
Generic tools cannot know those invariants; this framework encodes them as
:class:`Rule` subclasses that walk each file's AST with full knowledge of
the repo's conventions (``self._lock`` guards, ``threading.local`` state,
the ``compute_dtype`` switch, future settlement in ``repro.serving``).

Pieces:

* :class:`Finding` — one ``file:line:rule`` diagnostic with a stable
  ``fingerprint`` used by the committed baseline.
* :class:`Rule` — base class; subclasses declare a ``name``, the path
  prefixes they apply to, and a ``check(ctx)`` generator.  Register with
  the :func:`register` decorator.
* :class:`FileContext` — parsed AST + inline suppression table for one
  file.  ``# repro: disable=<rule>[,<rule>...]`` on a line suppresses
  findings anchored to that line.
* :class:`LintConfig` / :func:`run_lint` / :func:`lint_source` — the
  engine: select rules, walk files, filter suppressions, partition
  against a :class:`~repro.analysis.baseline.Baseline`.

Example::

    from repro.analysis import run_lint, LintConfig, Baseline

    result = run_lint(["src"], baseline=Baseline.load("lint_baseline.json"))
    for finding in result.findings:
        print(finding.describe())        # path:line: rule: message
    assert result.ok
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: Inline suppression syntax: a comment of the form
#: ``code  # repro: disable=rule-a,rule-b`` (same line).  Anchored to the
#: comment start so prose *mentioning* the syntax — like this very
#: paragraph — does not register a suppression.
SUPPRESSION_RE = re.compile(r"\A#\s*repro:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Pseudo-rule name attached to findings for files that fail to parse.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what is wrong.

    ``symbol`` names the enclosing scope (e.g. ``PipelineStats.reset``) and
    is what the baseline matches on — line numbers drift with every edit,
    symbols rarely do.
    """

    path: str
    line: int
    rule: str
    message: str
    column: int = 0
    symbol: str = ""
    #: Interprocedural witness: one "path:line: qualname — why" string per
    #: hop, caller first, blocking/raising/compute site last.  A tuple so
    #: the frozen/ordered dataclass stays hashable and sortable.
    chain: Tuple[str, ...] = ()

    def describe(self) -> str:
        """The canonical ``path:line: rule: message`` diagnostic line.

        Interprocedural findings append their call chain, one indented
        ``via`` line per hop, so the gate output reads like a sanitizer
        report instead of a bare file:line.
        """
        head = f"{self.path}:{self.line}: {self.rule}: {self.message}"
        if not self.chain:
            return head
        return head + "".join(f"\n    via {step}" for step in self.chain)

    def fingerprint(self) -> Tuple[str, str, str]:
        """Stable identity for baseline matching: (rule, path, symbol)."""
        return (self.rule, self.path, self.symbol or self.message)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "symbol": self.symbol,
            "message": self.message,
        }
        if self.chain:
            payload["chain"] = list(self.chain)
        return payload


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled on that line.

    Comments are found with :mod:`tokenize` (not a regex over raw lines) so
    a ``# repro: disable=...`` *inside a string literal* never suppresses
    anything.  Unterminated files fall back to whatever tokens parsed.
    """
    table: Dict[int, Set[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            table.setdefault(token.start[0], set()).update(names)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return table


class FileContext:
    """Everything a rule needs about one file: AST, source, suppressions.

    ``path`` is the repo-relative posix path rules scope on (e.g.
    ``src/repro/serving/cluster.py``); ``project_root`` lets rules resolve
    project files such as ``pytest.ini``.
    """

    def __init__(
        self,
        source: str,
        path: str,
        project_root: Optional[Path] = None,
    ) -> None:
        self.source = source
        self.path = Path(path).as_posix()
        self.project_root = Path(project_root) if project_root is not None else None
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        self.suppressions = _parse_suppressions(source)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is disabled on ``line`` via an inline comment."""
        names = self.suppressions.get(line)
        if not names:
            return False
        return "all" in names or rule in names

    def scoped_functions(self) -> Iterator[Tuple[ast.AST, str]]:
        """Yield every function/method with its dotted qualname."""
        for node, qualname in iter_scoped_nodes(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, qualname


def iter_scoped_nodes(tree: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """Depth-first (node, qualname) pairs for classes and functions.

    Qualnames are dotted (``Router.submit``, ``Outer.Inner.method``) and
    anchor findings to symbols that survive line-number drift.
    """

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                yield child, qualname
                yield from visit(child, qualname)
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def walk_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but stops at nested function/lambda scopes.

    Rules that analyse one function at a time pair this with
    :meth:`FileContext.scoped_functions` so code inside a nested ``def`` is
    attributed to the nested scope, not double-reported for both.
    """
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def enclosing_symbol(tree: ast.AST, target: ast.AST) -> str:
    """Qualname of the innermost class/function containing ``target``.

    Linear in the tree size — fine for a linter that walks each file a
    handful of times.  Returns ``""`` for module-level nodes.
    """
    best = ""
    target_line = getattr(target, "lineno", None)
    if target_line is None:
        return best
    for node, qualname in iter_scoped_nodes(tree):
        end = getattr(node, "end_lineno", None)
        if node.lineno <= target_line and (end is None or target_line <= end):
            best = qualname  # deeper scopes visited later overwrite shallower
    return best


# ----------------------------------------------------------------------
# Rules & registry
# ----------------------------------------------------------------------
class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (kebab-case, used in diagnostics / suppressions
    / the baseline), ``description`` (one line, shown by ``--list-rules``),
    and ``default_paths`` (repo-relative posix prefixes the rule applies
    to).  ``check`` yields :class:`Finding` objects; the engine filters
    inline suppressions afterwards, so rules never need to consult them.
    """

    name: str = ""
    description: str = ""
    default_paths: Tuple[str, ...] = ("src/repro/",)

    def __init__(self, options: Optional[Mapping[str, object]] = None) -> None:
        self.options: Dict[str, object] = dict(options or {})

    def paths(self) -> Tuple[str, ...]:
        configured = self.options.get("paths")
        if configured is None:
            return self.default_paths
        return tuple(str(p) for p in configured)  # type: ignore[union-attr]

    def applies_to(self, ctx: FileContext) -> bool:
        # Prefix match for repo-relative paths; substring-at-segment match
        # so absolute paths (files linted outside the repo checkout, e.g.
        # seeded copies under /tmp in tests) still hit the right rules.
        return any(
            ctx.path.startswith(prefix) or f"/{prefix}" in ctx.path
            for prefix in self.paths()
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # -- interprocedural hooks (PR 9) ----------------------------------
    def bind_project(self, project: object) -> None:
        """Receive the whole-project :class:`~repro.analysis.dataflow.
        ProjectContext` before any checks run.  Per-file rules may consult
        it from ``check``; pure project rules use ``check_project``."""
        self.project = project

    def check_project(self, project: object) -> Iterator[Finding]:
        """Whole-project pass, run once after every file's ``check``.

        The base implementation yields nothing; interprocedural rules (and
        per-file rules that also want a global pass) override it.
        """
        return iter(())

    def applies_to_path(self, path: str) -> bool:
        """Path-only variant of :meth:`applies_to` for project findings."""
        return any(
            path.startswith(prefix) or f"/{prefix}" in path
            for prefix in self.paths()
        )


class ProjectRule(Rule):
    """Base class for rules that only make sense over the whole project.

    Subclasses implement :meth:`check_project`; the per-file ``check`` is a
    no-op so the engine's file loop skips them cheaply.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} must set a name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the rule registry (name -> class)."""
    return dict(_REGISTRY)


@register
class UnusedSuppressionRule(Rule):
    """Flag ``# repro: disable=<rule>`` comments that suppress nothing.

    Stale suppressions rot silently: the code they excused gets fixed or
    deleted and the comment keeps granting a blanket waiver to whatever
    lands on that line next.  The engine tracks which suppressions actually
    absorbed a finding during the run and emits one finding per dead entry;
    this class only carries the name/description — the detection lives in
    :func:`run_lint` because it needs the whole run's suppression usage.
    """

    name = "unused-suppression"
    description = "inline `repro: disable` comment that suppresses nothing"
    default_paths = ("src/repro/", "src/", "tests/", "benchmarks/", "scripts/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())


@dataclass
class LintConfig:
    """Which rules run, with what options, against which project root.

    ``enabled=None`` means every registered rule; ``disabled`` subtracts.
    ``rule_options`` maps rule name -> options dict (e.g. ``{"paths":
    [...]}`` to re-scope a rule, or rule-specific knobs such as the marker
    rule's ``declared`` list).
    """

    enabled: Optional[Sequence[str]] = None
    disabled: Sequence[str] = ()
    rule_options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    project_root: Optional[Path] = None
    #: Where per-file interprocedural summaries are cached between runs
    #: (content-hash keyed).  ``None`` disables the cache.
    cache_path: Optional[Path] = None

    def build_rules(self) -> List[Rule]:
        registry = registered_rules()
        if self.enabled is None:
            names = sorted(registry)
        else:
            unknown = sorted(set(self.enabled) - set(registry))
            if unknown:
                raise ValueError(
                    f"unknown rule(s) {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(registry))}"
                )
            names = list(self.enabled)
        names = [name for name in names if name not in set(self.disabled)]
        return [registry[name](self.rule_options.get(name)) for name in names]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one lint pass.

    ``findings`` are *new* diagnostics (not covered by the baseline);
    ``baselined`` are grandfathered ones matched to baseline entries;
    ``stale`` are baseline entries that no longer match any finding (fixed
    code whose entry should be pruned with ``--baseline-update``).
    """

    findings: List[Finding]
    baselined: List[Finding] = field(default_factory=list)
    stale: List[object] = field(default_factory=list)
    files: int = 0
    elapsed_seconds: float = 0.0
    suppressed: int = 0
    # Interprocedural pass metrics (PR 9) — surfaced into BENCH_lint.json.
    callgraph_seconds: float = 0.0
    functions: int = 0
    call_edges: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def files_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.files / self.elapsed_seconds

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def counts_by_rule(self) -> Dict[str, int]:
        """New-finding counts per rule, for the failure summary table."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def iter_python_files(paths: Iterable[object]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted, caches/hidden dirs skipped."""
    out: Set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                out.add(candidate)
    return sorted(out)


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_sources(
    sources: Mapping[str, str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a set of in-memory ``path -> source`` blobs as one project.

    The multi-file workhorse of the interprocedural test-suite: fixture
    modules are analysed together, so cross-module call chains (a serving
    entry point reaching nn compute two files away) resolve exactly as they
    would on disk.  Syntax errors propagate — a fixture that does not parse
    is a broken test, not a lint finding.
    """
    from .dataflow import ProjectContext  # local: avoids a core<->rules cycle

    config = config or LintConfig()
    if rules is None:
        rules = config.build_rules()
    ctxs: Dict[str, FileContext] = {}
    for path, source in sources.items():
        ctx = FileContext(source, path, project_root=config.project_root)
        ctxs[ctx.path] = ctx
    project = ProjectContext.build(
        [(ctx.path, ctx.source, ctx.tree) for ctx in ctxs.values()]
    )
    for rule in rules:
        rule.bind_project(project)
    findings: List[Finding] = []
    for ctx in ctxs.values():
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if not ctx.suppressed(finding.rule, finding.line):
                    findings.append(finding)
    for rule in rules:
        for finding in rule.check_project(project):
            ctx = ctxs.get(finding.path)
            if ctx is not None and ctx.suppressed(finding.rule, finding.line):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob as if it lived at ``path``.

    The workhorse of the rule test-suite: fixture snippets are linted
    against synthetic repo paths so each rule's path scoping applies
    exactly as it would on disk.  Inline suppressions are honoured, and the
    blob gets a single-module project context so interprocedural rules see
    chains that stay within the file.
    """
    return lint_sources({path: source}, config=config, rules=rules)


def run_lint(
    paths: Sequence[object],
    config: Optional[LintConfig] = None,
    baseline: Optional[object] = None,
    restrict_paths: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint every python file under ``paths``; partition against ``baseline``.

    Files that fail to parse produce a single :data:`SYNTAX_ERROR_RULE`
    finding instead of aborting the run.  Timing covers the whole pass
    (file IO + parse + project call-graph build + every rule) so the
    ``BENCH_lint.json`` numbers reflect what CI actually pays.

    ``restrict_paths`` (repo-relative posix paths) is the ``--changed-only``
    contract: *every* file is still read into the interprocedural project —
    summaries must stay whole-program-correct — then the restricted set is
    expanded to its reverse-dependency closure (callers of changed code can
    see a different interprocedural verdict), and only that closure gets
    per-file rules, findings, and stale-entry reporting.  Unchanged files
    hit the summary cache, so the skipped work is the parse plus every
    file rule.
    """
    from .dataflow import ProjectContext  # local: avoids a core<->rules cycle

    config = config or LintConfig()
    root = config.project_root if config.project_root is not None else Path.cwd()
    rules = config.build_rules()
    files = iter_python_files(paths)
    restrict: Optional[Set[str]] = (
        {Path(p).as_posix() for p in restrict_paths}
        if restrict_paths is not None
        else None
    )

    started = time.perf_counter()
    raw: List[Finding] = []
    suppressed = 0
    ctxs: Dict[str, FileContext] = {}
    sources: List[Tuple[str, str]] = []
    #: (path, line) suppression entries that absorbed at least one finding.
    used_suppressions: Set[Tuple[str, int]] = set()

    def absorb(ctx: FileContext, finding: Finding) -> bool:
        if ctx.suppressed(finding.rule, finding.line):
            used_suppressions.add((ctx.path, finding.line))
            return True
        return False

    def make_ctx(rel: str, source: str) -> Optional[FileContext]:
        try:
            ctx = FileContext(source, rel, project_root=root)
        except SyntaxError as error:
            raw.append(Finding(
                path=rel, line=error.lineno or 1, rule=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            ))
            return None
        ctxs[rel] = ctx
        return ctx

    for file_path in files:
        rel = _relative_posix(file_path, root)
        sources.append((rel, file_path.read_text(encoding="utf-8")))

    if restrict is None:
        # Full run: parse once, share the tree with the project build.
        project_files: List[Tuple[str, str, Optional[ast.AST]]] = []
        for rel, source in sources:
            ctx = make_ctx(rel, source)
            if ctx is not None:
                project_files.append((rel, source, ctx.tree))
        project = ProjectContext.build(project_files, cache_path=config.cache_path)
    else:
        # Changed-only run: build the project first (cache makes unchanged
        # files parse-free), expand the restriction to the reverse-
        # dependency closure, then parse just the closure.
        project = ProjectContext.build(
            [(rel, source, None) for rel, source in sources],
            cache_path=config.cache_path,
        )
        restrict = project.graph.reverse_dependency_paths(project.table, restrict)
        for rel, source in sources:
            if rel in restrict:
                make_ctx(rel, source)
    callgraph_seconds = project.build_seconds
    for rule in rules:
        rule.bind_project(project)

    for ctx in ctxs.values():
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if absorb(ctx, finding):
                    suppressed += 1
                else:
                    raw.append(finding)

    for rule in rules:
        for finding in rule.check_project(project):
            if restrict is not None and finding.path not in restrict:
                continue
            ctx = ctxs.get(finding.path)
            if ctx is not None and absorb(ctx, finding):
                suppressed += 1
            else:
                raw.append(finding)

    if any(isinstance(rule, UnusedSuppressionRule) for rule in rules):
        for ctx in ctxs.values():
            for line, names in sorted(ctx.suppressions.items()):
                if (ctx.path, line) in used_suppressions:
                    continue
                listed = ",".join(sorted(names))
                raw.append(Finding(
                    path=ctx.path, line=line, rule=UnusedSuppressionRule.name,
                    message=(
                        f"suppression `repro: disable={listed}` never fires; "
                        "remove the stale comment"
                    ),
                    symbol=f"disable={listed}",
                ))
    elapsed = time.perf_counter() - started

    raw.sort()
    if baseline is not None:
        new, matched, stale = baseline.partition(raw, root=root)
        if restrict is not None:
            # A restricted run cannot prove an entry stale — the finding may
            # live in a file that simply was not linted this time.
            stale = [entry for entry in stale if getattr(entry, "path", None) in restrict]
    else:
        new, matched, stale = raw, [], []
    return LintResult(
        findings=list(new), baselined=list(matched), stale=list(stale),
        files=len(ctxs) if restrict is not None else len(files),
        elapsed_seconds=elapsed, suppressed=suppressed,
        callgraph_seconds=callgraph_seconds,
        functions=len(project.table.functions),
        call_edges=project.graph.edge_count,
        cache_hits=project.cache_hits, cache_misses=project.cache_misses,
    )
