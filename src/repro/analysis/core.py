"""Core of the project-native lint framework: findings, rules, the engine.

The runtime bugs this repo has shipped were never "typos a generic linter
catches" — they were violations of *project invariants*: a process-global
grad flag mutated from replica scheduler threads, a ``PipelineStats``
counter updated outside its lock, probes running with dropout active.
Generic tools cannot know those invariants; this framework encodes them as
:class:`Rule` subclasses that walk each file's AST with full knowledge of
the repo's conventions (``self._lock`` guards, ``threading.local`` state,
the ``compute_dtype`` switch, future settlement in ``repro.serving``).

Pieces:

* :class:`Finding` — one ``file:line:rule`` diagnostic with a stable
  ``fingerprint`` used by the committed baseline.
* :class:`Rule` — base class; subclasses declare a ``name``, the path
  prefixes they apply to, and a ``check(ctx)`` generator.  Register with
  the :func:`register` decorator.
* :class:`FileContext` — parsed AST + inline suppression table for one
  file.  ``# repro: disable=<rule>[,<rule>...]`` on a line suppresses
  findings anchored to that line.
* :class:`LintConfig` / :func:`run_lint` / :func:`lint_source` — the
  engine: select rules, walk files, filter suppressions, partition
  against a :class:`~repro.analysis.baseline.Baseline`.

Example::

    from repro.analysis import run_lint, LintConfig, Baseline

    result = run_lint(["src"], baseline=Baseline.load("lint_baseline.json"))
    for finding in result.findings:
        print(finding.describe())        # path:line: rule: message
    assert result.ok
"""

from __future__ import annotations

import ast
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

#: Inline suppression syntax: ``# repro: disable=rule-a,rule-b`` (same line).
SUPPRESSION_RE = re.compile(r"repro:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Pseudo-rule name attached to findings for files that fail to parse.
SYNTAX_ERROR_RULE = "syntax-error"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what is wrong.

    ``symbol`` names the enclosing scope (e.g. ``PipelineStats.reset``) and
    is what the baseline matches on — line numbers drift with every edit,
    symbols rarely do.
    """

    path: str
    line: int
    rule: str
    message: str
    column: int = 0
    symbol: str = ""

    def describe(self) -> str:
        """The canonical ``path:line: rule: message`` diagnostic line."""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"

    def fingerprint(self) -> Tuple[str, str, str]:
        """Stable identity for baseline matching: (rule, path, symbol)."""
        return (self.rule, self.path, self.symbol or self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "symbol": self.symbol,
            "message": self.message,
        }


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule names disabled on that line.

    Comments are found with :mod:`tokenize` (not a regex over raw lines) so
    a ``# repro: disable=...`` *inside a string literal* never suppresses
    anything.  Unterminated files fall back to whatever tokens parsed.
    """
    table: Dict[int, Set[str]] = {}
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type != tokenize.COMMENT:
                continue
            match = SUPPRESSION_RE.search(token.string)
            if match is None:
                continue
            names = {part.strip() for part in match.group(1).split(",") if part.strip()}
            table.setdefault(token.start[0], set()).update(names)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return table


class FileContext:
    """Everything a rule needs about one file: AST, source, suppressions.

    ``path`` is the repo-relative posix path rules scope on (e.g.
    ``src/repro/serving/cluster.py``); ``project_root`` lets rules resolve
    project files such as ``pytest.ini``.
    """

    def __init__(
        self,
        source: str,
        path: str,
        project_root: Optional[Path] = None,
    ) -> None:
        self.source = source
        self.path = Path(path).as_posix()
        self.project_root = Path(project_root) if project_root is not None else None
        self.tree = ast.parse(source)
        self.lines = source.splitlines()
        self.suppressions = _parse_suppressions(source)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is disabled on ``line`` via an inline comment."""
        names = self.suppressions.get(line)
        if not names:
            return False
        return "all" in names or rule in names

    def scoped_functions(self) -> Iterator[Tuple[ast.AST, str]]:
        """Yield every function/method with its dotted qualname."""
        for node, qualname in iter_scoped_nodes(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, qualname


def iter_scoped_nodes(tree: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """Depth-first (node, qualname) pairs for classes and functions.

    Qualnames are dotted (``Router.submit``, ``Outer.Inner.method``) and
    anchor findings to symbols that survive line-number drift.
    """

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[ast.AST, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                yield child, qualname
                yield from visit(child, qualname)
            else:
                yield from visit(child, prefix)

    yield from visit(tree, "")


def walk_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but stops at nested function/lambda scopes.

    Rules that analyse one function at a time pair this with
    :meth:`FileContext.scoped_functions` so code inside a nested ``def`` is
    attributed to the nested scope, not double-reported for both.
    """
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


def enclosing_symbol(tree: ast.AST, target: ast.AST) -> str:
    """Qualname of the innermost class/function containing ``target``.

    Linear in the tree size — fine for a linter that walks each file a
    handful of times.  Returns ``""`` for module-level nodes.
    """
    best = ""
    target_line = getattr(target, "lineno", None)
    if target_line is None:
        return best
    for node, qualname in iter_scoped_nodes(tree):
        end = getattr(node, "end_lineno", None)
        if node.lineno <= target_line and (end is None or target_line <= end):
            best = qualname  # deeper scopes visited later overwrite shallower
    return best


# ----------------------------------------------------------------------
# Rules & registry
# ----------------------------------------------------------------------
class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` (kebab-case, used in diagnostics / suppressions
    / the baseline), ``description`` (one line, shown by ``--list-rules``),
    and ``default_paths`` (repo-relative posix prefixes the rule applies
    to).  ``check`` yields :class:`Finding` objects; the engine filters
    inline suppressions afterwards, so rules never need to consult them.
    """

    name: str = ""
    description: str = ""
    default_paths: Tuple[str, ...] = ("src/repro/",)

    def __init__(self, options: Optional[Mapping[str, object]] = None) -> None:
        self.options: Dict[str, object] = dict(options or {})

    def paths(self) -> Tuple[str, ...]:
        configured = self.options.get("paths")
        if configured is None:
            return self.default_paths
        return tuple(str(p) for p in configured)  # type: ignore[union-attr]

    def applies_to(self, ctx: FileContext) -> bool:
        # Prefix match for repo-relative paths; substring-at-segment match
        # so absolute paths (files linted outside the repo checkout, e.g.
        # seeded copies under /tmp in tests) still hit the right rules.
        return any(
            ctx.path.startswith(prefix) or f"/{prefix}" in ctx.path
            for prefix in self.paths()
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} must set a name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the rule registry (name -> class)."""
    return dict(_REGISTRY)


@dataclass
class LintConfig:
    """Which rules run, with what options, against which project root.

    ``enabled=None`` means every registered rule; ``disabled`` subtracts.
    ``rule_options`` maps rule name -> options dict (e.g. ``{"paths":
    [...]}`` to re-scope a rule, or rule-specific knobs such as the marker
    rule's ``declared`` list).
    """

    enabled: Optional[Sequence[str]] = None
    disabled: Sequence[str] = ()
    rule_options: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    project_root: Optional[Path] = None

    def build_rules(self) -> List[Rule]:
        registry = registered_rules()
        if self.enabled is None:
            names = sorted(registry)
        else:
            unknown = sorted(set(self.enabled) - set(registry))
            if unknown:
                raise ValueError(
                    f"unknown rule(s) {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(registry))}"
                )
            names = list(self.enabled)
        names = [name for name in names if name not in set(self.disabled)]
        return [registry[name](self.rule_options.get(name)) for name in names]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
@dataclass
class LintResult:
    """Outcome of one lint pass.

    ``findings`` are *new* diagnostics (not covered by the baseline);
    ``baselined`` are grandfathered ones matched to baseline entries;
    ``stale`` are baseline entries that no longer match any finding (fixed
    code whose entry should be pruned with ``--baseline-update``).
    """

    findings: List[Finding]
    baselined: List[Finding] = field(default_factory=list)
    stale: List[object] = field(default_factory=list)
    files: int = 0
    elapsed_seconds: float = 0.0
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def files_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.files / self.elapsed_seconds


def iter_python_files(paths: Iterable[object]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted, caches/hidden dirs skipped."""
    out: Set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_file() and path.suffix == ".py":
            out.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                parts = candidate.parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                out.add(candidate)
    return sorted(out)


def _relative_posix(path: Path, root: Optional[Path]) -> str:
    resolved = path.resolve()
    if root is not None:
        try:
            return resolved.relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_source(
    source: str,
    path: str,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one in-memory source blob as if it lived at ``path``.

    The workhorse of the rule test-suite: fixture snippets are linted
    against synthetic repo paths so each rule's path scoping applies
    exactly as it would on disk.  Inline suppressions are honoured.
    """
    config = config or LintConfig()
    if rules is None:
        rules = config.build_rules()
    ctx = FileContext(source, path, project_root=config.project_root)
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return sorted(findings)


def run_lint(
    paths: Sequence[object],
    config: Optional[LintConfig] = None,
    baseline: Optional[object] = None,
) -> LintResult:
    """Lint every python file under ``paths``; partition against ``baseline``.

    Files that fail to parse produce a single :data:`SYNTAX_ERROR_RULE`
    finding instead of aborting the run.  Timing covers the whole pass
    (file IO + parse + every rule) so the ``BENCH_lint.json`` numbers
    reflect what CI actually pays.
    """
    config = config or LintConfig()
    root = config.project_root if config.project_root is not None else Path.cwd()
    rules = config.build_rules()
    files = iter_python_files(paths)

    started = time.perf_counter()
    raw: List[Finding] = []
    suppressed = 0
    for file_path in files:
        rel = _relative_posix(file_path, root)
        source = file_path.read_text(encoding="utf-8")
        try:
            ctx = FileContext(source, rel, project_root=root)
        except SyntaxError as error:
            raw.append(Finding(
                path=rel, line=error.lineno or 1, rule=SYNTAX_ERROR_RULE,
                message=f"file does not parse: {error.msg}",
            ))
            continue
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if ctx.suppressed(finding.rule, finding.line):
                    suppressed += 1
                else:
                    raw.append(finding)
    elapsed = time.perf_counter() - started

    raw.sort()
    if baseline is not None:
        new, matched, stale = baseline.partition(raw)
    else:
        new, matched, stale = raw, [], []
    return LintResult(
        findings=list(new), baselined=list(matched), stale=list(stale),
        files=len(files), elapsed_seconds=elapsed, suppressed=suppressed,
    )
