"""Summary-based dataflow over the project call graph.

Each function gets an **effect summary** — does it block without a timeout,
which locks does it acquire, which exceptions can it raise, does it reach
gradient-enabled nn compute or an unrestored ``train()`` toggle — extracted
intraprocedurally in one AST walk and then propagated to fixpoint over the
:mod:`~repro.analysis.callgraph` edges.  Rules ask questions like "is a
blocking call reachable from here while a lock is held" and get back a full
caller→…→site witness chain, the way a sanitizer reports a race.

Extraction is flow-*insensitive* except for three pieces of context carried
down the walk, which are exactly the three masks the rules need:

* the set of class lock tokens held (``with self._lock:`` blocks, with
  ``Condition(self._lock)`` aliases canonicalised to the underlying lock);
* whether the site sits under ``with no_grad():`` (gradient masking);
* which exception names the enclosing ``try`` blocks catch (raise masking;
  a handler that re-raises bare does not mask).

Summaries are cached per file keyed by a content hash (the PR 2 snapshot
idiom: versioned JSON manifest, stale entries silently rebuilt), so
incremental lint runs only re-extract files whose text changed; the
propagation pass itself is cheap and always runs.
"""

from __future__ import annotations

import ast
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .callgraph import (
    CallGraph,
    CallResolver,
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    PRIMITIVE_NAMES,
    ResolvedCall,
    SymbolTable,
    path_to_module,
)

#: Bump when extraction changes shape — stale cache entries rebuild silently.
ANALYSIS_VERSION = 1

#: Default cache file name, resolved against the project root.
DEFAULT_CACHE_NAME = ".repro_lint_cache.json"

#: ``threading`` factories whose product counts as a lock token.
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: Method names on nn modules that constitute gradient-enabled compute when
#: reached outside a ``no_grad`` mask.
NN_COMPUTE_NAMES = frozenset({
    "forward", "forward_step", "forward_cross", "__call__", "backward",
})

#: Module prefix owning nn compute (matched against function ids).
NN_MODULE_PREFIX = "repro.nn"


# ----------------------------------------------------------------------
# Per-function facts (intraprocedural, serialisable)
# ----------------------------------------------------------------------
@dataclass
class RawCall:
    """One unresolved call site with its context masks."""

    kind: str          # "name" | "self" | "super" | "attr"
    name: str
    recv: str
    line: int
    locks: Tuple[str, ...] = ()
    no_grad: bool = False
    caught: Tuple[str, ...] = ()


@dataclass
class FunctionFacts:
    """Effect-relevant events of one function body (own scope only)."""

    fid: str
    calls: List[RawCall] = field(default_factory=list)
    #: Unbounded blocking primitive sites: (name, receiver, line, locks held).
    blocking: List[Tuple[str, str, int, Tuple[str, ...]]] = field(default_factory=list)
    #: Lock acquisitions: (token, line, locks already held).
    acquires: List[Tuple[str, int, Tuple[str, ...]]] = field(default_factory=list)
    #: Raise sites: (exception name, line, enclosing caught names).
    raises: List[Tuple[str, int, Tuple[str, ...]]] = field(default_factory=list)
    #: Unrestored ``x.train(...)`` mode entries: (receiver, line).
    toggles: List[Tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "calls": [
                [c.kind, c.name, c.recv, c.line, list(c.locks), c.no_grad,
                 list(c.caught)]
                for c in self.calls
            ],
            "blocking": [[n, r, ln, list(lk)] for n, r, ln, lk in self.blocking],
            "acquires": [[t, ln, list(h)] for t, ln, h in self.acquires],
            "raises": [[n, ln, list(c)] for n, ln, c in self.raises],
            "toggles": [[r, ln] for r, ln in self.toggles],
        }

    @classmethod
    def from_dict(cls, fid: str, payload: Mapping[str, object]) -> "FunctionFacts":
        facts = cls(fid=fid)
        for kind, name, recv, line, locks, no_grad, caught in payload["calls"]:
            facts.calls.append(RawCall(
                kind=kind, name=name, recv=recv, line=int(line),
                locks=tuple(locks), no_grad=bool(no_grad), caught=tuple(caught),
            ))
        facts.blocking = [
            (n, r, int(ln), tuple(lk)) for n, r, ln, lk in payload["blocking"]
        ]
        facts.acquires = [(t, int(ln), tuple(h)) for t, ln, h in payload["acquires"]]
        facts.raises = [(n, int(ln), tuple(c)) for n, ln, c in payload["raises"]]
        facts.toggles = [(r, int(ln)) for r, ln in payload["toggles"]]
        return facts


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def _expr_name(expr: ast.AST) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return _expr_name(expr.func)
    return ""


def _dotted(expr: ast.AST) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_lock_factory_call(value: ast.AST) -> Optional[str]:
    """``threading.Lock()``-style: returns the factory name, else None."""
    if not isinstance(value, ast.Call):
        return None
    name = _expr_name(value.func)
    return name if name in _LOCK_FACTORIES | {"Condition"} else None


def _toggle_kind(call: ast.Call) -> Optional[str]:
    """Classify ``.train(...)`` / ``.eval()`` — mirrors the per-file
    ``probe-mode-discipline`` rule so both layers agree on what a mode
    toggle is (trainer entry points sharing the name are ignored)."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "eval":
        return "restore" if not call.args and not call.keywords else None
    if func.attr != "train":
        return None
    if call.keywords or len(call.args) > 1:
        return None
    if not call.args:
        return "entry"
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, bool):
        return "entry" if arg.value else "restore"
    if isinstance(arg, (ast.Name, ast.Attribute, ast.UnaryOp)):
        return "snapshot"
    return None


class _ScopeWalker:
    """One function body walk carrying (locks, no_grad, caught) context."""

    def __init__(
        self,
        facts: FunctionFacts,
        lock_attrs: Mapping[str, str],
        module_locks: Mapping[str, str],
    ) -> None:
        self.facts = facts
        self.lock_attrs = lock_attrs        # self attr -> token
        self.module_locks = module_locks    # module-level name -> token
        self.toggle_events: List[Tuple[str, str, int]] = []  # (kind, recv, line)
        self.finally_lines: Set[int] = set()

    # -- helpers -------------------------------------------------------
    def _lock_token(self, expr: ast.AST) -> Optional[str]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return self.lock_attrs.get(expr.attr)
        if isinstance(expr, ast.Name):
            return self.module_locks.get(expr.id)
        return None

    @staticmethod
    def _is_no_grad(expr: ast.AST) -> bool:
        return isinstance(expr, ast.Call) and _expr_name(expr.func) == "no_grad"

    def _record_call(self, node: ast.Call, locks, no_grad, caught) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.facts.calls.append(RawCall(
                kind="name", name=func.id, recv="", line=node.lineno,
                locks=locks, no_grad=no_grad, caught=caught,
            ))
            return
        if not isinstance(func, ast.Attribute):
            return
        name = func.attr
        recv = func.value
        if name in PRIMITIVE_NAMES:
            # Blocking primitive: bounded iff it passes a positional arg
            # (the timeout slot) or timeout=.  ``recv`` takes neither — a
            # bare pipe read is always an unbounded park.
            bounded = bool(node.args) or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            if name == "recv":
                bounded = False
            if not bounded:
                self.facts.blocking.append(
                    (name, _dotted(recv) or "<expr>", node.lineno, locks)
                )
            return
        kind = "attr"
        recv_repr = ""
        if isinstance(recv, ast.Name):
            kind, recv_repr = ("self", "") if recv.id == "self" else ("attr", recv.id)
        elif (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
        ):
            recv_repr = f"self.{recv.attr}"
        elif isinstance(recv, ast.Call) and _expr_name(recv.func) == "super":
            kind = "super"
        else:
            recv_repr = _dotted(recv) or "<expr>"
        toggle = _toggle_kind(node)
        if toggle is not None:
            self.toggle_events.append((toggle, _dotted(recv) or "self", node.lineno))
            return
        self.facts.calls.append(RawCall(
            kind=kind, name=name, recv=recv_repr, line=node.lineno,
            locks=locks, no_grad=no_grad, caught=caught,
        ))

    def _record_raise(self, node: ast.Raise, caught: Tuple[str, ...]) -> None:
        if node.exc is None:
            return  # bare re-raise inside a handler: original escapes, the
            #          handler's own masking already excludes it upstream
        name = _expr_name(node.exc)
        if name:
            self.facts.raises.append((name, node.lineno, caught))

    # -- walk ----------------------------------------------------------
    def walk(self, func: ast.AST) -> None:
        for stmt in getattr(func, "body", []):
            self._visit(stmt, (), False, ())
        # Resolve unrestored toggles: an "entry" toggle whose receiver has
        # no restore inside a finally block of this function.
        restored = {
            recv for kind, recv, line in self.toggle_events
            if kind in ("restore", "snapshot") and line in self.finally_lines
        }
        for kind, recv, line in self.toggle_events:
            effective = kind
            if kind == "snapshot" and line not in self.finally_lines:
                effective = "entry"
            if effective == "entry" and recv not in restored:
                self.facts.toggles.append((recv, line))

    def _visit(self, node: ast.AST, locks, no_grad, caught) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes get their own facts
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_locks, inner_no_grad = locks, no_grad
            for item in node.items:
                self._visit(item.context_expr, locks, no_grad, caught)
                token = self._lock_token(item.context_expr)
                if token is not None:
                    self.facts.acquires.append((token, node.lineno, inner_locks))
                    if token not in inner_locks:
                        inner_locks = inner_locks + (token,)
                elif self._is_no_grad(item.context_expr):
                    inner_no_grad = True
            for stmt in node.body:
                self._visit(stmt, inner_locks, inner_no_grad, caught)
            return
        if isinstance(node, ast.Try):
            masked = list(caught)
            for handler in node.handlers:
                reraises = any(
                    isinstance(sub, ast.Raise) and sub.exc is None
                    for stmt in handler.body for sub in ast.walk(stmt)
                )
                if reraises:
                    continue  # catch-and-rethrow does not mask
                if handler.type is None:
                    masked.append("BaseException")
                else:
                    types = (
                        handler.type.elts
                        if isinstance(handler.type, ast.Tuple)
                        else [handler.type]
                    )
                    masked.extend(filter(None, (_expr_name(t) for t in types)))
            body_caught = tuple(masked)
            for stmt in node.body:
                self._visit(stmt, locks, no_grad, body_caught)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._visit(stmt, locks, no_grad, caught)
            for stmt in node.orelse:
                self._visit(stmt, locks, no_grad, body_caught)
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    line = getattr(sub, "lineno", None)
                    if line is not None:
                        self.finally_lines.add(line)
                self._visit(stmt, locks, no_grad, caught)
            return
        if isinstance(node, ast.Call):
            self._record_call(node, locks, no_grad, caught)
        elif isinstance(node, ast.Raise):
            self._record_raise(node, caught)
            if node.exc is not None:
                self._visit(node.exc, locks, no_grad, caught)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, locks, no_grad, caught)


def extract_module(
    path: str, tree: ast.AST
) -> Tuple[ModuleSymbols, Dict[str, FunctionFacts]]:
    """One file → (symbol table, per-function facts)."""
    module = path_to_module(path)
    symbols = ModuleSymbols(module=module, path=path)
    module_locks: Dict[str, str] = {}

    # Imports + module-level locks.
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                symbols.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and stmt.level == 0:
            for alias in stmt.names:
                symbols.imports[alias.asname or alias.name] = (
                    f"{stmt.module}.{alias.name}"
                )
        elif isinstance(stmt, ast.ImportFrom) and stmt.level > 0:
            # Relative import: resolve against this module's package.
            package_parts = module.split(".")[: -stmt.level]
            base = ".".join(package_parts + ([stmt.module] if stmt.module else []))
            for alias in stmt.names:
                symbols.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and _is_lock_factory_call(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module_locks[target.id] = f"{module}:{target.id}"

    # Classes, functions, facts — depth-first with qualnames.
    facts: Dict[str, FunctionFacts] = {}

    def visit(node: ast.AST, prefix: str, class_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                info = ClassInfo(
                    module=module, name=child.name, path=path, line=child.lineno,
                    bases=tuple(filter(None, (_dotted(b) for b in child.bases))),
                )
                _scan_class(child, info, module)
                symbols.classes[child.name] = info
                visit(child, qualname, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                decorators = tuple(
                    filter(None, (_dotted(d) or _expr_name(d) for d in child.decorator_list))
                )
                info = FunctionInfo(
                    module=module, qualname=qualname, path=path,
                    line=child.lineno, class_name=class_name,
                    decorators=decorators,
                )
                symbols.functions[qualname] = info
                if class_name:
                    owner = symbols.classes.get(class_name)
                    if owner is not None:
                        owner.methods.setdefault(child.name, qualname)
                if child.name not in ("train", "eval"):
                    fn_facts = FunctionFacts(fid=info.fid)
                    lock_attrs = (
                        symbols.classes[class_name].lock_attrs if class_name else {}
                    )
                    walker = _ScopeWalker(fn_facts, lock_attrs, module_locks)
                    walker.walk(child)
                    facts[info.fid] = fn_facts
                else:
                    # Module.train/eval *are* the toggle mechanism; their
                    # bodies still contribute call edges.
                    fn_facts = FunctionFacts(fid=info.fid)
                    walker = _ScopeWalker(
                        fn_facts,
                        symbols.classes[class_name].lock_attrs if class_name else {},
                        module_locks,
                    )
                    walker.walk(child)
                    fn_facts.toggles = []
                    facts[info.fid] = fn_facts
                visit(child, qualname, class_name)
            else:
                visit(child, prefix, class_name)

    def _scan_class(cls_node: ast.ClassDef, info: ClassInfo, module: str) -> None:
        token = lambda attr: f"{module}:{info.name}.{attr}"  # noqa: E731
        annotations: Dict[str, Dict[str, str]] = {}
        for stmt in cls_node.body:
            # Dataclass-style lock field.
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                value = stmt.value
                if _expr_name(value.func) == "field":
                    for kw in value.keywords:
                        if kw.arg == "default_factory" and _expr_name(kw.value) in (
                            _LOCK_FACTORIES | {"Condition"}
                        ):
                            info.lock_attrs[stmt.target.id] = stmt.target.id
                elif _is_lock_factory_call(value):
                    info.lock_attrs[stmt.target.id] = stmt.target.id
        for method in cls_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = {}
            for arg in method.args.args + method.args.kwonlyargs:
                ann = arg.annotation
                if ann is None:
                    continue
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    annotated = ann.value.strip()  # pool: "ReplicaPool"
                else:
                    annotated = _dotted(ann) or _expr_name(ann)
                if annotated:
                    params[arg.arg] = annotated
            annotations[method.name] = params
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    factory = _is_lock_factory_call(node.value)
                    if factory in _LOCK_FACTORIES:
                        info.lock_attrs[attr] = attr
                    elif factory == "Condition":
                        # Condition(self._lock) aliases the underlying lock;
                        # Condition() owns its own.
                        args = node.value.args
                        if (
                            args
                            and isinstance(args[0], ast.Attribute)
                            and isinstance(args[0].value, ast.Name)
                            and args[0].value.id == "self"
                        ):
                            info.lock_attrs[attr] = info.lock_attrs.get(
                                args[0].attr, args[0].attr
                            )
                        else:
                            info.lock_attrs[attr] = attr
                    elif isinstance(node.value, ast.Call):
                        # ``self.pool = ReplicaPool(...)`` — CapWord ctor
                        # gives the attribute a static type.
                        ctor = _dotted(node.value.func)
                        leaf = ctor.rsplit(".", 1)[-1] if ctor else ""
                        if leaf[:1].isupper():
                            info.attr_types.setdefault(attr, ctor)
                    elif isinstance(node.value, ast.Name):
                        annotated = annotations.get(method.name, {}).get(node.value.id)
                        if annotated:
                            info.attr_types.setdefault(attr, annotated)
        # Canonicalise lock tokens to class-qualified form.
        info.lock_attrs = {
            attr: token(canonical) for attr, canonical in info.lock_attrs.items()
        }

    visit(tree, "", "")
    return symbols, facts


# ----------------------------------------------------------------------
# Summaries + fixpoint
# ----------------------------------------------------------------------
@dataclass
class Summary:
    """Fixpoint effects of one function (its body plus everything reachable)."""

    blocks: bool = False
    acquires: frozenset = frozenset()       # lock tokens, transitively
    raises: frozenset = frozenset()         # exception names escaping
    grad: bool = False                      # reaches unmasked nn compute
    toggles: bool = False                   # reaches unrestored train() entry


@dataclass
class WitnessStep:
    """One hop of a caller→…→site diagnostic chain."""

    fid: str
    path: str
    line: int
    label: str

    def describe(self) -> str:
        qualname = self.fid.split(":", 1)[1] if ":" in self.fid else self.fid
        return f"{self.path}:{self.line}: {qualname} — {self.label}"


class ProjectContext:
    """Symbol table + call graph + fixpoint summaries for one lint pass.

    Built once per :func:`~repro.analysis.core.run_lint` invocation and
    handed to every rule via ``Rule.bind_project``; the interprocedural
    rules in :mod:`repro.analysis.rules.interprocedural` are thin queries
    over this object.
    """

    def __init__(
        self,
        table: SymbolTable,
        graph: CallGraph,
        facts: Dict[str, FunctionFacts],
        build_seconds: float = 0.0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        self.table = table
        self.graph = graph
        self.facts = facts
        self.build_seconds = build_seconds
        self.cache_hits = cache_hits
        self.cache_misses = cache_misses
        self.summaries: Dict[str, Summary] = {}
        self._exception_parents: Optional[Dict[str, Set[str]]] = None
        self._compute_summaries()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        files: Sequence[Tuple[str, str, Optional[ast.AST]]],
        cache_path: Optional[Path] = None,
    ) -> "ProjectContext":
        """Build from ``(path, source, parsed-tree-or-None)`` triples.

        With ``cache_path``, per-file symbols+facts are reused when the
        source hash matches (extending the PR 2 snapshot idiom: versioned
        JSON, silently rebuilt on mismatch) and the cache is rewritten
        afterwards.
        """
        started = time.perf_counter()
        cache: Dict[str, Dict] = {}
        if cache_path is not None and Path(cache_path).exists():
            try:
                payload = json.loads(Path(cache_path).read_text(encoding="utf-8"))
                if payload.get("version") == ANALYSIS_VERSION:
                    cache = payload.get("files", {})
            except (json.JSONDecodeError, OSError):
                cache = {}

        modules: List[ModuleSymbols] = []
        all_facts: Dict[str, FunctionFacts] = {}
        new_cache: Dict[str, Dict] = {}
        hits = misses = 0
        for path, source, tree in files:
            digest = hashlib.sha256(
                f"{ANALYSIS_VERSION}\n{source}".encode("utf-8")
            ).hexdigest()
            entry = cache.get(path)
            if entry is not None and entry.get("sha") == digest:
                hits += 1
                symbols = ModuleSymbols.from_dict(entry["symbols"])
                module_facts = {
                    fid: FunctionFacts.from_dict(fid, row)
                    for fid, row in entry["facts"].items()
                }
            else:
                misses += 1
                if tree is None:
                    try:
                        tree = ast.parse(source)
                    except SyntaxError:
                        continue
                symbols, module_facts = extract_module(path, tree)
            modules.append(symbols)
            all_facts.update(module_facts)
            new_cache[path] = {
                "sha": digest,
                "symbols": symbols.to_dict(),
                "facts": {fid: f.to_dict() for fid, f in module_facts.items()},
            }

        table = SymbolTable(modules)
        resolver = CallResolver(table)
        graph = CallGraph()
        for fid, facts in all_facts.items():
            caller = table.functions.get(fid)
            if caller is None:
                continue
            for call in facts.calls:
                callees = tuple(
                    resolver.resolve(call.kind, call.name, call.recv, caller)
                )
                if callees:
                    graph.add(ResolvedCall(
                        caller=fid, line=call.line, name=call.name,
                        callees=callees, locks=call.locks,
                        no_grad=call.no_grad, caught=call.caught,
                    ))

        if cache_path is not None:
            try:
                Path(cache_path).write_text(
                    json.dumps({"version": ANALYSIS_VERSION, "files": new_cache})
                    + "\n",
                    encoding="utf-8",
                )
            except OSError:
                pass  # read-only checkout: the cache is an optimisation only

        return cls(
            table, graph, all_facts,
            build_seconds=time.perf_counter() - started,
            cache_hits=hits, cache_misses=misses,
        )

    # ------------------------------------------------------------------
    # Exception hierarchy helpers
    # ------------------------------------------------------------------
    def exception_parents(self) -> Dict[str, Set[str]]:
        """Project class name → its transitive base names (project classes
        resolved through the hierarchy; externals appear as raw names)."""
        if self._exception_parents is None:
            parents: Dict[str, Set[str]] = {}
            for cls in self.table.classes.values():
                names: Set[str] = set()
                for key in self.table.linearize(cls):
                    owner = self.table.classes[key]
                    names.add(owner.name)
                    names.update(b.rsplit(".", 1)[-1] for b in owner.bases)
                names.discard(cls.name)
                existing = parents.setdefault(cls.name, set())
                existing.update(names)
            self._exception_parents = parents
        return self._exception_parents

    def _masked(self, raised: str, caught: Tuple[str, ...]) -> bool:
        if not caught:
            return False
        caught_set = set(caught)
        if {"Exception", "BaseException"} & caught_set:
            return True
        if raised in caught_set:
            return True
        ancestors = self.exception_parents().get(raised, set())
        return bool(ancestors & caught_set)

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _compute_summaries(self) -> None:
        summaries = {fid: Summary() for fid in self.facts}
        # Seed with intraprocedural effects.  Grad seeds are both syntactic
        # (a ``backward()`` call outside no_grad) and resolved (a direct,
        # unmasked edge into nn compute) — the graph exists by now.
        for fid, facts in self.facts.items():
            direct_raises = frozenset(
                name for name, _line, caught in facts.raises
                if not self._masked(name, caught)
            )
            grad = any(
                call.name == "backward" and not call.no_grad
                for call in facts.calls
            ) or any(
                not call.no_grad
                and any(
                    kind != "dynamic" and self.is_nn_compute(callee)
                    for callee, kind in call.callees
                )
                for call in self.graph.calls_from(fid)
            )
            summaries[fid] = Summary(
                blocks=bool(facts.blocking),
                acquires=frozenset(t for t, _l, _h in facts.acquires),
                raises=direct_raises,
                grad=grad,
                toggles=bool(facts.toggles),
            )
        # Propagate to fixpoint (all effects are monotone unions/ORs).
        changed = True
        rounds = 0
        while changed and rounds < 100:
            changed = False
            rounds += 1
            for fid in self.facts:
                current = summaries[fid]
                blocks, grad, toggles = current.blocks, current.grad, current.toggles
                acquires = set(current.acquires)
                raises = set(current.raises)
                for call in self.graph.calls_from(fid):
                    for callee, kind in call.callees:
                        callee_summary = summaries.get(callee)
                        if callee_summary is None:
                            continue
                        blocks = blocks or callee_summary.blocks
                        if kind == "dynamic":
                            # Dynamic-dispatch edges carry only the blocks
                            # effect.  Common bare names (`key.encode()`,
                            # `counts.get()`) resolve to unrelated project
                            # methods and would invent grad leaks, phantom
                            # raises, and lock-order inversions; blocking is
                            # worth the over-approximation because a missed
                            # deadlock is a hang, not a report to triage.
                            continue
                        acquires |= callee_summary.acquires
                        if not call.no_grad:
                            grad = grad or callee_summary.grad
                            toggles = toggles or callee_summary.toggles
                        for name in callee_summary.raises:
                            if not self._masked(name, call.caught):
                                raises.add(name)
                new = Summary(
                    blocks=blocks, acquires=frozenset(acquires),
                    raises=frozenset(raises), grad=grad, toggles=toggles,
                )
                if new != current:
                    summaries[fid] = new
                    changed = True
        self.summaries = summaries

    # ------------------------------------------------------------------
    # Queries used by rules
    # ------------------------------------------------------------------
    def functions_under(self, prefixes: Iterable[str]) -> List[FunctionInfo]:
        """Functions whose file path matches any prefix (same semantics as
        ``Rule.applies_to``: prefix or ``/prefix`` substring)."""
        prefixes = tuple(prefixes)
        out = []
        for info in self.table.functions.values():
            if any(
                info.path.startswith(p) or f"/{p}" in info.path for p in prefixes
            ):
                out.append(info)
        return sorted(out, key=lambda i: (i.path, i.line))

    def summary(self, fid: str) -> Summary:
        return self.summaries.get(fid, Summary())

    def is_nn_compute(self, fid: str) -> bool:
        """Whether ``fid`` is a gradient-enabled nn compute entry."""
        module, _, qualname = fid.partition(":")
        return (
            module == NN_MODULE_PREFIX
            or module.startswith(NN_MODULE_PREFIX + ".")
        ) and qualname.rsplit(".", 1)[-1] in NN_COMPUTE_NAMES

    # -- witness chains ------------------------------------------------
    def blocking_witness(self, fid: str, seen: Optional[Set[str]] = None) -> List[WitnessStep]:
        """Shortest-found chain from ``fid`` to an unbounded blocking site."""
        seen = seen if seen is not None else set()
        if fid in seen:
            return []
        seen.add(fid)
        facts = self.facts.get(fid)
        info = self.table.functions.get(fid)
        if facts is None or info is None:
            return []
        if facts.blocking:
            name, recv, line, _locks = min(facts.blocking, key=lambda b: b[2])
            return [WitnessStep(fid, info.path, line, f"{recv}.{name}() without timeout")]
        for call in sorted(self.graph.calls_from(fid), key=lambda c: c.line):
            for callee, _kind in call.callees:
                if self.summary(callee).blocks:
                    rest = self.blocking_witness(callee, seen)
                    if rest:
                        return [
                            WitnessStep(fid, info.path, call.line, f"calls {call.name}()")
                        ] + rest
        return []

    def acquire_witness(
        self, fid: str, token: str, seen: Optional[Set[str]] = None
    ) -> List[WitnessStep]:
        """Chain from ``fid`` to an acquisition of lock ``token``
        (non-dynamic edges only, matching the lock-order propagation)."""
        seen = seen if seen is not None else set()
        if fid in seen:
            return []
        seen.add(fid)
        facts = self.facts.get(fid)
        info = self.table.functions.get(fid)
        if facts is None or info is None:
            return []
        for acquired, line, _held in facts.acquires:
            if acquired == token:
                return [WitnessStep(fid, info.path, line, f"acquires {token}")]
        for call in sorted(self.graph.calls_from(fid), key=lambda c: c.line):
            for callee, kind in call.callees:
                if kind == "dynamic":
                    continue
                if token in self.summary(callee).acquires:
                    rest = self.acquire_witness(callee, token, seen)
                    if rest:
                        return [
                            WitnessStep(fid, info.path, call.line, f"calls {call.name}()")
                        ] + rest
        return []

    def grad_witness(self, fid: str, seen: Optional[Set[str]] = None) -> List[WitnessStep]:
        """Chain from ``fid`` to unmasked nn compute or an unrestored toggle."""
        seen = seen if seen is not None else set()
        if fid in seen:
            return []
        seen.add(fid)
        facts = self.facts.get(fid)
        info = self.table.functions.get(fid)
        if facts is None or info is None:
            return []
        if facts.toggles:
            recv, line = facts.toggles[0]
            return [WitnessStep(
                fid, info.path, line, f"{recv}.train(...) never restored in finally"
            )]
        for call in facts.calls:
            if not call.no_grad and call.name == "backward":
                return [WitnessStep(fid, info.path, call.line, "backward() outside no_grad")]
        for call in sorted(self.graph.calls_from(fid), key=lambda c: c.line):
            if call.no_grad:
                continue
            for callee, kind in call.callees:
                if kind == "dynamic":
                    continue  # mirrors the fixpoint: no grad over dynamic edges
                if self.is_nn_compute(callee):
                    return [WitnessStep(
                        fid, info.path, call.line,
                        f"calls nn compute {callee.split(':', 1)[1]} outside no_grad",
                    )]
                if self.summary(callee).grad or self.summary(callee).toggles:
                    rest = self.grad_witness(callee, seen)
                    if rest:
                        return [
                            WitnessStep(fid, info.path, call.line, f"calls {call.name}()")
                        ] + rest
        return []

    def raise_witness(
        self, fid: str, name: str, seen: Optional[Set[str]] = None
    ) -> List[WitnessStep]:
        """Chain from ``fid`` to an escaping ``raise <name>``."""
        seen = seen if seen is not None else set()
        if fid in seen:
            return []
        seen.add(fid)
        facts = self.facts.get(fid)
        info = self.table.functions.get(fid)
        if facts is None or info is None:
            return []
        for raised, line, caught in facts.raises:
            if raised == name and not self._masked(raised, caught):
                return [WitnessStep(fid, info.path, line, f"raise {name}")]
        for call in sorted(self.graph.calls_from(fid), key=lambda c: c.line):
            if self._masked(name, call.caught):
                continue
            for callee, kind in call.callees:
                if kind == "dynamic":
                    continue  # mirrors the fixpoint: no raises over dynamic edges
                if name in self.summary(callee).raises:
                    rest = self.raise_witness(callee, name, seen)
                    if rest:
                        return [
                            WitnessStep(fid, info.path, call.line, f"calls {call.name}()")
                        ] + rest
        return []


