"""Concurrency rules: ``thread-local-state`` and ``lock-discipline``.

Both rules are distilled from shipped bugs:

* PR 6's grad flag was a process-global boolean mutated via ``global`` from
  every replica scheduler thread — interleaved ``no_grad`` enter/exit pairs
  restored each other's snapshots and disabled gradients process-wide
  (78 test failures).  ``thread-local-state`` bans the pattern outright in
  ``repro.nn`` / ``repro.serving``: module-level state there must live in
  ``threading.local()``.
* PR 5's ``PipelineStats`` guarded its latency window with ``_lock`` but
  mutated its counters bare; a concurrent ``reset()`` could resurrect stale
  stage totals.  ``lock-discipline`` requires that once an attribute is
  mutated under ``with self._lock`` anywhere in a class, *every* mutation
  of it happens under a lock.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import FileContext, Finding, Rule, register

#: Method calls that mutate common containers in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft", "popitem",
    "remove", "clear", "add", "discard", "update", "setdefault",
})

#: ``threading`` factories whose product counts as "a lock" — ``with`` on a
#: Condition acquires its underlying lock, so it guards state too.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})

#: Methods where unguarded attribute writes are fine: construction and
#: pickle plumbing run before (or without) any concurrent observer.
EXEMPT_METHODS = frozenset({
    "__init__", "__new__", "__post_init__", "__getstate__", "__setstate__",
    "__del__", "__init_subclass__",
})


def _is_threading_local(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute) and func.attr == "local":
        return True
    return isinstance(func, ast.Name) and func.id == "local"


def _is_lock_factory(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else ""
    )
    if name in LOCK_FACTORIES:
        return True
    # Dataclass style: field(default_factory=threading.Lock)
    if name == "field":
        for keyword in value.keywords:
            if keyword.arg == "default_factory":
                factory = keyword.value
                attr = factory.attr if isinstance(factory, ast.Attribute) else (
                    factory.id if isinstance(factory, ast.Name) else ""
                )
                if attr in LOCK_FACTORIES:
                    return True
    return False


@register
class ThreadLocalStateRule(Rule):
    """Module-level mutable flags in nn/serving must be thread-local.

    Two shapes are flagged:

    * a module-level name rebound via ``global`` inside any function — the
      exact process-global-flag pattern behind the PR 6 grad bug;
    * a module-level mutable container (dict/list/set/deque literal or
      constructor) mutated from function scope — the same hazard through
      aliasing rather than rebinding.

    ``threading.local()`` values are exempt: attribute writes on them are
    the sanctioned fix.  ``__all__``-style dunder names are ignored.
    """

    name = "thread-local-state"
    description = (
        "module-level mutable state in repro.nn/repro.serving must use "
        "threading.local()"
    )
    default_paths = ("src/repro/nn/", "src/repro/serving/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_state: Dict[str, ast.stmt] = {}
        for stmt in ctx.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue
                if _is_threading_local(value):
                    continue
                module_state[name] = stmt

        if not module_state:
            return

        rebound: Set[str] = set()
        mutated: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                rebound.update(n for n in node.names if n in module_state)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                # _CACHE[key] = value  /  _CACHE[key] += 1 inside a function
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in module_state
                        and node is not module_state.get(target.value.id)
                    ):
                        mutated.add(target.value.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_state
                ):
                    mutated.add(func.value.id)

        # Module-level mutations (e.g. seeding a dict right after creating
        # it) are setup, not shared-state mutation: only count mutations
        # reachable from function scope.
        top_level_lines = set()
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for sub in ast.walk(stmt):
                    line = getattr(sub, "lineno", None)
                    if line is not None:
                        top_level_lines.add(line)

        for name in sorted(rebound | mutated):
            stmt = module_state[name]
            if name in mutated and name not in rebound:
                # Verify at least one mutation happens outside module scope.
                if self._only_top_level_mutations(ctx, name, top_level_lines):
                    continue
                verb = "mutated from function scope"
            else:
                verb = "rebound via `global`"
            yield Finding(
                path=ctx.path, line=stmt.lineno, column=stmt.col_offset,
                rule=self.name, symbol=name,
                message=(
                    f"module-level state {name!r} is {verb}; serving threads "
                    f"share this process-wide — store it in threading.local() "
                    f"(see repro.nn.tensor._grad_state)"
                ),
            )

    @staticmethod
    def _only_top_level_mutations(
        ctx: FileContext, name: str, top_level_lines: Set[int]
    ) -> bool:
        for node in ast.walk(ctx.tree):
            is_mutation = False
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                is_mutation = any(
                    isinstance(t, ast.Subscript)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == name
                    for t in targets
                )
            elif isinstance(node, ast.Call):
                func = node.func
                is_mutation = (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                )
            if is_mutation and getattr(node, "lineno", None) not in top_level_lines:
                return False
        return True


@register
class LockDisciplineRule(Rule):
    """Guarded attributes must always be mutated under the class's lock.

    For every class owning a lock attribute (``self._lock =
    threading.Lock()`` in a method, or a dataclass field built from
    ``threading.Lock``/``RLock``/``Condition``), the rule computes the set
    of *guarded* attributes — those mutated at least once inside a ``with
    self.<lock>:`` block — and flags any mutation of a guarded attribute
    outside such a block.

    Conventions honoured: ``__init__``/pickle dunders are exempt (no
    concurrent observer exists yet), and methods whose name ends in
    ``_locked`` are assumed to run with the lock already held by the
    caller (the ``PipelineStats._total_seconds_locked`` convention).
    """

    name = "lock-discipline"
    description = (
        "attributes mutated under `with self._lock` must never be mutated "
        "outside it"
    )
    default_paths = ("src/repro/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def check_project(self, project: object) -> Iterator[Finding]:
        """Interprocedural leg (PR 9): the ``*_locked`` naming convention
        promises the caller already holds a lock — verify every resolved
        call site into a ``*_locked`` method actually does.  Callers that
        are themselves ``*_locked`` inherit the promise from *their*
        caller and are skipped."""
        for info in project.functions_under(self.paths()):
            if info.name.endswith("_locked"):
                continue
            for call in project.graph.calls_from(info.fid):
                if call.locks or not call.name.endswith("_locked"):
                    continue
                if not any(
                    project.table.functions.get(callee) is not None
                    for callee, _kind in call.callees
                ):
                    continue
                yield Finding(
                    path=info.path, line=call.line, rule=self.name,
                    symbol=info.qualname,
                    message=(
                        f"{call.name}() promises the caller holds a lock "
                        f"(`_locked` suffix) but {info.qualname} calls it "
                        f"with no lock held"
                    ),
                )

    # ------------------------------------------------------------------
    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = self._lock_attributes(cls)
        if not lock_attrs:
            return

        # (attr, node, method, held) mutation events across all methods.
        events: List[Tuple[str, ast.AST, str, bool]] = []
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                assume_held = stmt.name.endswith("_locked")
                self._collect(stmt, stmt.name, lock_attrs, assume_held, events)

        guarded = {
            attr for attr, _, _, held in events
            if held and attr not in lock_attrs
        }
        for attr, node, method, held in events:
            if held or method in EXEMPT_METHODS or attr not in guarded:
                continue
            yield Finding(
                path=ctx.path, line=node.lineno, column=node.col_offset,
                rule=self.name, symbol=f"{cls.name}.{method}",
                message=(
                    f"attribute self.{attr} is guarded by "
                    f"{'/'.join(sorted(lock_attrs))} elsewhere in {cls.name} "
                    f"but mutated here outside `with self.<lock>`"
                ),
            )

    @staticmethod
    def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for stmt in cls.body:
            # Dataclass field: _lock: threading.Lock = field(default_factory=...)
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None and _is_lock_factory(stmt.value):
                    locks.add(stmt.target.id)
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        locks.add(target.attr)
        return locks

    def _collect(
        self,
        node: ast.AST,
        method: str,
        lock_attrs: Set[str],
        held: bool,
        events: List[Tuple[str, ast.AST, str, bool]],
    ) -> None:
        """Walk one method, tracking whether a class lock is held."""
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, ast.With):
                for item in child.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and isinstance(expr.value, ast.Name)
                        and expr.value.id == "self"
                        and expr.attr in lock_attrs
                    ):
                        child_held = True
            self._record_mutations(child, method, child_held, events)
            self._collect(child, method, lock_attrs, child_held, events)

    @staticmethod
    def _record_mutations(
        node: ast.AST,
        method: str,
        held: bool,
        events: List[Tuple[str, ast.AST, str, bool]],
    ) -> None:
        def self_attr(expr: ast.AST) -> Optional[str]:
            # self.X or self.X[...] as a mutation target
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return expr.attr
            return None

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = self_attr(target)
                if attr is not None:
                    events.append((attr, node, method, held))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attr = self_attr(target)
                if attr is not None:
                    events.append((attr, node, method, held))
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
                attr = self_attr(func.value)
                if attr is not None:
                    events.append((attr, node, method, held))
