"""``future-hygiene``: every Future in ``repro.serving`` must settle safely.

Three sub-checks, all drawn from the router/replica code's hard-won
conventions:

* **settle-guard** — ``fut.set_result`` / ``fut.set_exception`` raise
  ``InvalidStateError`` if the future was already cancelled or settled by
  a racing path (client abort vs. replica completion).  Any settle on a
  future that may be shared must sit inside a ``try`` whose handler
  catches ``InvalidStateError`` (or a broader exception class).  The one
  sanctioned exception: a *fresh local* future — created in this function
  via ``Future()`` and not yet escaped to any other code — cannot race,
  so it may settle bare (``Router.submit`` does this before enqueuing).
* **orphan-future** — a future created locally, never settled and never
  handed to anyone, can only leave callers hanging on ``.result()``.
* **callback-raise** — ``add_done_callback`` callbacks run on the thread
  that settles the future; an exception thrown there is swallowed by
  ``concurrent.futures`` (logged at best) and kills the settle path's
  invariants.  Callbacks resolved one level deep must contain no ``raise``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import FileContext, Finding, Rule, enclosing_symbol, register, walk_scope

SETTLE_METHODS = frozenset({"set_result", "set_exception"})

#: Exception names that count as guarding a settle.  Broad handlers
#: (``Exception``) obviously cover ``InvalidStateError`` too.
GUARD_EXCEPTIONS = frozenset({
    "InvalidStateError", "CancelledError", "Exception", "BaseException",
})


def _is_future_ctor(value: ast.AST) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name == "Future"


def _guarding_try_lines(func: ast.AST) -> Set[int]:
    """Lines inside ``try`` bodies whose handlers catch a guard exception."""
    lines: Set[int] = set()
    for node in walk_scope(func):
        if not isinstance(node, ast.Try):
            continue
        if not any(_handler_guards(h) for h in node.handlers):
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                line = getattr(sub, "lineno", None)
                if line is not None:
                    lines.add(line)
    return lines


def _handler_guards(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in types:
        name = expr.id if isinstance(expr, ast.Name) else (
            expr.attr if isinstance(expr, ast.Attribute) else ""
        )
        if name in GUARD_EXCEPTIONS:
            return True
    return False


@register
class FutureHygieneRule(Rule):
    """Settles guarded or provably race-free; callbacks never raise."""

    name = "future-hygiene"
    description = (
        "Futures in repro.serving must settle under an InvalidStateError "
        "guard (or before escaping) and done-callbacks must not raise"
    )
    default_paths = ("src/repro/serving/",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func, qualname in ctx.scoped_functions():
            yield from self._check_settles(ctx, func, qualname)
        yield from self._check_callbacks(ctx)

    # ------------------------------------------------------------------
    # settle-guard + orphan-future
    # ------------------------------------------------------------------
    def _check_settles(
        self, ctx: FileContext, func: ast.AST, qualname: str
    ) -> Iterator[Finding]:
        # Fresh local futures: name -> creation (lineno, col).
        created: Dict[str, Tuple[int, int]] = {}
        for node in walk_scope(func):
            if isinstance(node, (ast.Assign, ast.AnnAssign)) and _is_future_ctor(
                getattr(node, "value", None)
            ):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        created[target.id] = (node.lineno, node.col_offset)

        # Every Name-load event on a created future, ordered by position:
        # method calls on the name are classified; any other load escapes it.
        events: Dict[str, List[Tuple[Tuple[int, int], str, ast.AST]]] = {
            name: [] for name in created
        }
        settle_calls: List[Tuple[ast.Call, str, Optional[str]]] = []
        callish: Set[int] = set()
        for node in walk_scope(func):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id in created:
                    callish.add(id(recv))
                    kind = (
                        "settle" if node.func.attr in SETTLE_METHODS | {"cancel"}
                        else "method"
                    )
                    events[recv.id].append(
                        ((node.lineno, node.col_offset), kind, node)
                    )
                if node.func.attr in SETTLE_METHODS:
                    receiver = (
                        recv.id if isinstance(recv, ast.Name) else None
                    )
                    settle_calls.append((node, node.func.attr, receiver))
        for node in walk_scope(func):
            if (
                isinstance(node, ast.Name)
                and node.id in created
                and isinstance(node.ctx, ast.Load)
                and id(node) not in callish
            ):
                events[node.id].append(
                    ((node.lineno, node.col_offset), "escape", node)
                )

        guarded_lines = _guarding_try_lines(func)

        escaped_before: Dict[str, Set[int]] = {}
        for name, evs in events.items():
            evs.sort(key=lambda item: item[0])
            seen_escape = False
            settled_lines: Set[int] = set()
            for pos, kind, node in evs:
                if kind == "escape":
                    seen_escape = True
                elif kind == "settle" and seen_escape:
                    settled_lines.add(pos[0])
            escaped_before[name] = settled_lines

        for call, method, receiver in settle_calls:
            if call.lineno in guarded_lines:
                continue
            if (
                receiver is not None
                and receiver in created
                and call.lineno not in escaped_before.get(receiver, set())
            ):
                continue  # fresh local future, no escape yet: race-free
            yield Finding(
                path=ctx.path, line=call.lineno, column=call.col_offset,
                rule=self.name, symbol=qualname,
                message=(
                    f"unguarded {method}() on a future that other code can "
                    f"reach; wrap in try/except InvalidStateError (a racing "
                    f"cancel/settle raises here)"
                ),
            )

        # Orphans: created, never escaped, never settled, never cancelled.
        for name, evs in events.items():
            if evs:
                continue
            line, col = created[name]
            yield Finding(
                path=ctx.path, line=line, column=col,
                rule=self.name, symbol=qualname,
                message=(
                    f"future {name!r} is created but never settled, "
                    f"cancelled, or handed off; waiters would hang forever"
                ),
            )

    # ------------------------------------------------------------------
    # callback-raise
    # ------------------------------------------------------------------
    def _check_callbacks(self, ctx: FileContext) -> Iterator[Finding]:
        defs: Dict[str, ast.AST] = {}
        for node, qualname in ctx.scoped_functions():
            defs[qualname.rsplit(".", 1)[-1]] = node

        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_done_callback"
                and node.args
            ):
                continue
            target = self._resolve_callback(node.args[0], defs)
            if target is None:
                continue
            for sub in ast.walk(target):
                if isinstance(sub, ast.Raise):
                    yield Finding(
                        path=ctx.path, line=node.lineno, column=node.col_offset,
                        rule=self.name,
                        symbol=enclosing_symbol(ctx.tree, node),
                        message=(
                            f"done-callback {getattr(target, 'name', '<lambda>')!r} "
                            f"contains a raise; exceptions in done-callbacks "
                            f"are swallowed by the executor — return an error "
                            f"via the future instead"
                        ),
                    )
                    break

    @staticmethod
    def _resolve_callback(
        arg: ast.AST, defs: Dict[str, ast.AST]
    ) -> Optional[ast.AST]:
        """Depth-1 resolution of the callback argument to a function def."""
        name: Optional[str] = None
        if isinstance(arg, ast.Lambda):
            # lambda done: self._on_inner_done(req, done) — follow the call.
            body = arg.body
            if isinstance(body, ast.Call):
                func = body.func
                if isinstance(func, ast.Attribute):
                    name = func.attr
                elif isinstance(func, ast.Name):
                    name = func.id
            if name is None:
                return arg  # lint the lambda body itself
        elif isinstance(arg, ast.Name):
            name = arg.id
        elif isinstance(arg, ast.Attribute):
            name = arg.attr
        if name is None:
            return None
        return defs.get(name)
