"""``probe-mode-discipline``: train/eval toggles and grad state must restore.

PR 4's meta-reweighter probed validation loss by calling ``model.eval()``
and never switching back — every subsequent training step ran with dropout
frozen and the reweighting silently converged to uniform weights.  The fix
(``ExampleReweighter._probe_mode``) snapshots ``training`` and restores it
in ``finally``.  This rule enforces that shape everywhere:

* a function that *enters* training/eval mode (``x.train()`` /
  ``x.train(True)``) must restore mode on the same receiver inside a
  ``finally`` block (or an equivalent restore call such as ``x.eval()`` /
  ``x.train(was_training)`` placed in ``finally``);
* ``no_grad()`` must be used as a context manager (``with no_grad():``),
  never called bare — a bare call constructs the guard without ever
  restoring the flag;
* the thread-local ``_grad_state`` may only be touched by its owner,
  ``repro/nn/tensor.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from ..core import FileContext, Finding, Rule, enclosing_symbol, register, walk_scope

#: Functions/methods named like mode switches themselves (Module.train,
#: Module.eval definitions) are the mechanism, not a use of it.
EXEMPT_FUNCTION_NAMES = frozenset({"train", "eval"})


def _toggle_kind(call: ast.Call) -> Optional[str]:
    """Classify a ``<recv>.train(...)`` / ``<recv>.eval()`` call.

    Returns ``"entry"`` (switches mode away from a known-restored state),
    ``"restore"`` (returns to eval), ``"snapshot"`` (``train(was_training)``
    — a restore only if it actually sits in a ``finally`` block, else just
    another unprotected toggle), or ``None`` when the call is not a mode
    toggle at all (e.g. ``pipeline.train(pairs, epochs=3)`` — a trainer
    entry point that happens to share the name).
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "eval":
        if call.args or call.keywords:
            return None
        return "restore"
    if func.attr != "train":
        return None
    if call.keywords or len(call.args) > 1:
        return None  # trainer invocation, not a mode flag
    if not call.args:
        return "entry"
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, bool):
        return "entry" if arg.value else "restore"
    if isinstance(arg, (ast.Name, ast.Attribute, ast.UnaryOp)):
        return "snapshot"  # train(was_training)
    return None  # train(pairs) etc.


def _receiver(call: ast.Call) -> str:
    func = call.func
    assert isinstance(func, ast.Attribute)
    try:
        return ast.unparse(func.value)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<receiver>"


def _finally_lines(func: ast.AST) -> Set[int]:
    """All line numbers inside ``finally`` blocks of ``func``."""
    lines: Set[int] = set()
    for node in walk_scope(func):
        if isinstance(node, ast.Try):
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    line = getattr(sub, "lineno", None)
                    if line is not None:
                        lines.add(line)
    return lines


@register
class ProbeModeDisciplineRule(Rule):
    """Mode toggles must restore in ``finally``; grad state stays owned.

    The compliant shape (from ``repro.meta.reweight``)::

        was_training = self.model.training
        self.model.eval()
        try:
            yield
        finally:
            self.model.train(was_training)
    """

    name = "probe-mode-discipline"
    description = (
        "training/eval toggles and no_grad must restore state via context "
        "manager or try/finally"
    )
    default_paths = ("src/repro/",)

    #: Module that owns the thread-local grad flag and may mutate it.
    GRAD_STATE_OWNER = "src/repro/nn/tensor.py"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_bare_no_grad(ctx)
        yield from self._check_grad_state_ownership(ctx)
        for func, qualname in ctx.scoped_functions():
            short_name = qualname.rsplit(".", 1)[-1]
            if short_name in EXEMPT_FUNCTION_NAMES:
                continue
            yield from self._check_function(ctx, func, qualname)

    # ------------------------------------------------------------------
    def _check_function(
        self, ctx: FileContext, func: ast.AST, qualname: str
    ) -> Iterator[Finding]:
        toggles: List[Tuple[ast.Call, str, str]] = []  # (call, kind, receiver)
        for node in walk_scope(func):
            if isinstance(node, ast.Call):
                kind = _toggle_kind(node)
                if kind is not None:
                    toggles.append((node, kind, _receiver(node)))

        finally_lines = _finally_lines(func)
        # A snapshot restore (train(was_training)) outside finally is just
        # another happy-path toggle — the PR 4 shape — so it *demands* a
        # real finally restore rather than providing one.
        resolved = [
            (call, ("restore" if call.lineno in finally_lines else "entry")
             if kind == "snapshot" else kind, recv)
            for call, kind, recv in toggles
        ]
        if not any(kind == "entry" for _, kind, _ in resolved):
            return
        restored = {
            recv for call, kind, recv in resolved
            if kind == "restore" and call.lineno in finally_lines
        }
        for call, kind, recv in resolved:
            if kind != "entry" or recv in restored:
                continue
            yield Finding(
                path=ctx.path, line=call.lineno, column=call.col_offset,
                rule=self.name, symbol=qualname,
                message=(
                    f"{recv}.train(...) switches mode but {recv} is never "
                    f"restored in a finally block; wrap the probe in "
                    f"try/finally or a context manager (see "
                    f"repro.meta.reweight.ExampleReweighter._probe_mode)"
                ),
            )

    # ------------------------------------------------------------------
    def _check_bare_no_grad(self, ctx: FileContext) -> Iterator[Finding]:
        with_items: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_items.add(id(item.context_expr))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name != "no_grad" or id(node) in with_items:
                continue
            # Inside repro.nn.tensor the class body itself is fine.
            if ctx.path == self.GRAD_STATE_OWNER:
                continue
            yield Finding(
                path=ctx.path, line=node.lineno, column=node.col_offset,
                rule=self.name,
                symbol=enclosing_symbol(ctx.tree, node),
                message=(
                    "no_grad() called outside a `with` statement; the grad "
                    "flag is only restored by the context manager's __exit__"
                ),
            )

    def _check_grad_state_ownership(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path == self.GRAD_STATE_OWNER:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in {"_grad_state", "_compute_dtype_state"}
                ):
                    yield Finding(
                        path=ctx.path, line=node.lineno, column=node.col_offset,
                        rule=self.name,
                        symbol=enclosing_symbol(ctx.tree, node),
                        message=(
                            f"direct write to {target.value.id}.{target.attr}; "
                            f"thread-local grad/dtype state is owned by "
                            f"repro.nn.tensor — use no_grad()/compute_dtype()"
                        ),
                    )
