"""``pytest-marker-declared``: markers used in tests must be registered.

Unregistered markers are worse than noise: ``-m "not chaos"`` silently
deselects *nothing* if ``chaos`` was never registered under a different
spelling, and pytest's ``PytestUnknownMarkWarning`` scrolls past unread.
The fix is two-sided — ``pytest.ini`` carries ``--strict-markers`` so
pytest itself hard-fails, and this rule catches the drift at lint time
without even collecting the test suite.

Declared markers come from the rule's ``declared`` option when set, else
from parsing ``[pytest] markers =`` in the project root's ``pytest.ini``.
"""

from __future__ import annotations

import ast
import configparser
from typing import Iterator, Optional, Set

from ..core import FileContext, Finding, Rule, enclosing_symbol, register

#: Markers pytest itself provides; never need registration.
BUILTIN_MARKERS = frozenset({
    "parametrize", "skip", "skipif", "xfail", "usefixtures", "filterwarnings",
})


def declared_markers(ctx: FileContext) -> Optional[Set[str]]:
    """Markers registered in ``<project_root>/pytest.ini``, or ``None``.

    Returns ``None`` (rule disables itself) when no pytest.ini can be
    found — a snippet linted without a project root should not drown in
    false positives.
    """
    if ctx.project_root is None:
        return None
    ini = ctx.project_root / "pytest.ini"
    if not ini.exists():
        return None
    parser = configparser.ConfigParser()
    try:
        parser.read(ini, encoding="utf-8")
        raw = parser.get("pytest", "markers", fallback="")
    except configparser.Error:
        return None
    names: Set[str] = set()
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        # "chaos: fault-injection scenarios" -> "chaos"; bare names allowed.
        name = line.split(":", 1)[0].strip().split("(", 1)[0].strip()
        if name:
            names.add(name)
    return names


@register
class PytestMarkerDeclaredRule(Rule):
    """Flag ``pytest.mark.<name>`` uses of unregistered markers."""

    name = "pytest-marker-declared"
    description = (
        "pytest markers used in tests/benchmarks must be declared in "
        "pytest.ini (works with --strict-markers)"
    )
    default_paths = ("tests/", "benchmarks/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        configured = self.options.get("declared")
        if configured is not None:
            declared: Optional[Set[str]] = {str(n) for n in configured}  # type: ignore[union-attr]
        else:
            declared = declared_markers(ctx)
        if declared is None:
            return
        known = declared | BUILTIN_MARKERS
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Attribute)
                and value.attr == "mark"
                and isinstance(value.value, ast.Name)
                and value.value.id == "pytest"
            ):
                continue
            if node.attr in known:
                continue
            yield Finding(
                path=ctx.path, line=node.lineno, column=node.col_offset,
                rule=self.name, symbol=enclosing_symbol(ctx.tree, node) or node.attr,
                message=(
                    f"marker {node.attr!r} is not declared in pytest.ini "
                    f"[pytest] markers; with --strict-markers this fails "
                    f"collection, without it the marker silently no-ops"
                ),
            )
