"""``bounded-wait``: blocking primitives in serving/bench must time out.

Distilled from the PR 8 scheduler hang: ``LinkingService._run`` parked in
an unbounded ``self._work_ready.wait()``, so one missed wakeup (a frozen
fault-injected replica swallowing the notify) stranded the scheduler
forever — drain, close and the supervisor all stalled behind it.  The fix
was a heartbeat timeout; this rule makes the pattern a lint error so the
next unbounded park is caught at review time instead of as a wedged
cluster.

Scope is the concurrent tiers (``repro.serving`` and ``repro.bench``) —
elsewhere a bare ``join()`` on a short-lived helper is idiomatic and not
worth the noise.  Justified exceptions go in the lint baseline like every
other rule.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import FileContext, Finding, Rule, register

#: Method names that park the calling thread until another thread acts.
BLOCKING_METHODS = frozenset({"wait", "join", "result"})


@register
class BoundedWaitRule(Rule):
    """``Event.wait`` / ``Condition.wait`` / ``Thread.join`` /
    ``Future.result`` calls must bound their blocking time.

    A call ``<obj>.wait()`` / ``.join()`` / ``.result()`` is flagged when
    it passes neither a positional argument (the timeout slot of all four
    primitives) nor a ``timeout=`` keyword.  The receiver's type is not
    resolved — any attribute call with one of these names counts, which is
    exactly the conservatism wanted in the concurrent tiers; a justified
    unbounded wait belongs in the baseline with its reason in a comment.
    """

    name = "bounded-wait"
    description = (
        "blocking waits in repro.serving/repro.bench must pass a timeout"
    )
    default_paths = ("src/repro/serving/", "src/repro/bench/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in BLOCKING_METHODS:
                continue
            if node.args:  # positional timeout (or *args we can't see into)
                continue
            if any(keyword.arg == "timeout" for keyword in node.keywords):
                continue
            receiver = (
                func.value.id if isinstance(func.value, ast.Name)
                else ast.unparse(func.value) if hasattr(ast, "unparse")
                else "<expr>"
            )
            yield Finding(
                path=ctx.path, line=node.lineno, column=node.col_offset,
                rule=self.name, symbol=f"{receiver}.{func.attr}",
                message=(
                    f"unbounded blocking call {receiver}.{func.attr}(); a "
                    f"missed wakeup parks this thread forever — pass a "
                    f"timeout (heartbeat loops re-check their condition, "
                    f"see LinkingService._run)"
                ),
            )
