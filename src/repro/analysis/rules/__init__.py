"""Domain rules for the repro lint framework.

Importing this package registers every rule with
:func:`repro.analysis.core.register`; :mod:`repro.analysis` does so on
import, so ``registered_rules()`` is always fully populated.
"""

from .bounded_wait import BoundedWaitRule
from .dtype import InferenceDtypeRule
from .futures import FutureHygieneRule
from .grad_mode import ProbeModeDisciplineRule
from .interprocedural import (
    BlockingUnderLockRule,
    LockOrderRule,
    RouterExceptionTaxonomyRule,
    ServingGradLeakRule,
)
from .markers import PytestMarkerDeclaredRule
from .threading_rules import LockDisciplineRule, ThreadLocalStateRule

__all__ = [
    "BoundedWaitRule",
    "InferenceDtypeRule",
    "FutureHygieneRule",
    "ProbeModeDisciplineRule",
    "PytestMarkerDeclaredRule",
    "LockDisciplineRule",
    "ThreadLocalStateRule",
    "BlockingUnderLockRule",
    "LockOrderRule",
    "RouterExceptionTaxonomyRule",
    "ServingGradLeakRule",
]
