"""``inference-dtype``: no hard-coded float64 in serving/decode hot paths.

The serving and generation paths honour the thread-local
``compute_dtype`` switch (``repro.nn.tensor.compute_dtype``): replicas run
``float32`` inference for throughput.  A single hard-coded
``np.float64`` / ``"float64"`` in a hot path silently upcasts every array
that flows through it — the greedy-decode step did exactly that, casting
the logit slice to float64 on *every* step of every request regardless of
the active compute dtype.

Correct patterns::

    dtype = active_compute_dtype()          # follow the switch
    step = np.asarray(row, dtype=memory.data.dtype)   # inherit upstream

Deliberate float64 (e.g. latency statistics, loss accumulation) goes in
the committed baseline with a justification, or takes an inline
``# repro: disable=inference-dtype``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..core import FileContext, Finding, Rule, enclosing_symbol, register


def _docstring_nodes(tree: ast.AST) -> Set[int]:
    """ids of Constant nodes that are docstrings (never dtype literals)."""
    out: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


@register
class InferenceDtypeRule(Rule):
    """Flag ``np.float64`` attributes and ``"float64"`` string literals.

    Scoped to the inference hot paths (``repro.serving``,
    ``repro.generation``); training code may accumulate in float64 freely.
    """

    name = "inference-dtype"
    description = (
        "no hard-coded float64 in serving/decode hot paths; use the "
        "compute_dtype switch or inherit the upstream array dtype"
    )
    default_paths = ("src/repro/serving/", "src/repro/generation/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        docstrings = _docstring_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr == "float64":
                yield self._finding(ctx, node, "np.float64")
            elif (
                isinstance(node, ast.Constant)
                and node.value == "float64"
                and id(node) not in docstrings
            ):
                yield self._finding(ctx, node, '"float64"')

    def _finding(self, ctx: FileContext, node: ast.AST, literal: str) -> Finding:
        return Finding(
            path=ctx.path, line=node.lineno, column=node.col_offset,
            rule=self.name,
            symbol=enclosing_symbol(ctx.tree, node),
            message=(
                f"hard-coded {literal} in an inference hot path upcasts "
                f"arrays regardless of the active compute dtype; use "
                f"active_compute_dtype() or inherit the input's dtype"
            ),
        )
