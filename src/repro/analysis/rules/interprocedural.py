"""Interprocedural rules: deadlock, lock-order, grad-leak, exception taxonomy.

These four rules are queries over the :class:`~repro.analysis.dataflow.
ProjectContext` fixpoint summaries — each one states a whole-program
invariant that the per-file rules structurally cannot check, because the
bug only exists across a call chain:

* ``blocking-under-lock`` — PR 8's scheduler deadlock class.  A
  timeout-less ``wait``/``join``/``result``/pipe ``recv`` reachable while
  *any* lock is held parks the thread with the lock pinned; every other
  thread needing that lock then parks behind it.
* ``lock-order`` — AB/BA inversions.  The lock-acquisition graph gets an
  edge A→B whenever B is acquired (directly or through calls) while A is
  held; any cycle is a potential deadlock between ``Router``,
  ``ReplicaPool``, ``ClusterStats``, ``PipelineStats``-style lock pairs.
* ``serving-grad-leak`` — PR 6's bug class.  Serving/cluster/resilience
  entry points must not reach gradient-enabled nn compute (or leave a
  ``train()`` toggle unrestored) through any chain that is not masked by
  ``with no_grad():`` somewhere along the way.
* ``router-exception-taxonomy`` — PR 8 introduced the ``RejectedError``
  taxonomy precisely so callers could catch admission failures narrowly;
  a public ``Router``/``LinkingService`` surface leaking some other raw
  exception re-breaks that contract.

Every finding carries a ``caller → … → site`` witness chain rendered by
``Finding.describe``, so the gate output reads like a sanitizer report.
"""

from __future__ import annotations

from typing import Iterator, List, Set, Tuple

from ..core import Finding, ProjectRule, register
from ..dataflow import ProjectContext, WitnessStep


def _chain(steps: List[WitnessStep]) -> Tuple[str, ...]:
    return tuple(step.describe() for step in steps)


def _qualname(fid: str) -> str:
    return fid.split(":", 1)[1] if ":" in fid else fid


@register
class BlockingUnderLockRule(ProjectRule):
    """No timeout-less blocking call may be reachable while a lock is held."""

    name = "blocking-under-lock"
    description = (
        "timeout-less wait/join/result/recv reachable while a lock is held "
        "(cross-function deadlock)"
    )
    default_paths = ("src/repro/",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.functions_under(self.paths()):
            facts = project.facts.get(info.fid)
            if facts is None:
                continue
            # Direct: the blocking site itself sits inside `with <lock>:`.
            for prim, recv, line, locks in facts.blocking:
                if not locks:
                    continue
                yield Finding(
                    path=info.path, line=line, rule=self.name,
                    symbol=info.qualname,
                    message=(
                        f"{recv}.{prim}() blocks without a timeout while "
                        f"holding {', '.join(locks)}"
                    ),
                    chain=(WitnessStep(
                        info.fid, info.path, line,
                        f"{recv}.{prim}() without timeout",
                    ).describe(),),
                )
            # Interprocedural: a call made under a lock reaches a blocking
            # site any number of hops away.
            reported: Set[str] = set()
            for call in project.graph.calls_from(info.fid):
                if not call.locks:
                    continue
                for callee, _kind in call.callees:
                    if callee in reported or not project.summary(callee).blocks:
                        continue
                    witness = project.blocking_witness(callee)
                    if not witness:
                        continue
                    reported.add(callee)
                    head = WitnessStep(
                        info.fid, info.path, call.line,
                        f"calls {call.name}() holding {', '.join(call.locks)}",
                    )
                    yield Finding(
                        path=info.path, line=call.line, rule=self.name,
                        symbol=f"{info.qualname} -> {_qualname(witness[-1].fid)}",
                        message=(
                            f"holds {', '.join(call.locks)} across a call "
                            f"chain that blocks without a timeout in "
                            f"{_qualname(witness[-1].fid)}"
                        ),
                        chain=_chain([head] + witness),
                    )


@register
class LockOrderRule(ProjectRule):
    """The project lock-acquisition graph must stay acyclic."""

    name = "lock-order"
    description = (
        "cyclic lock-acquisition order (AB/BA inversion) across call chains"
    )
    default_paths = ("src/repro/",)

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        # Edge A -> B: B acquired while A held, with one representative
        # witness per edge.  Dynamic-dispatch edges are excluded from the
        # acquires closure (see the fixpoint), so every edge here is real.
        edges: dict = {}
        for info in project.functions_under(self.paths()):
            facts = project.facts.get(info.fid)
            if facts is None:
                continue
            for token, line, held in facts.acquires:
                for holder in held:
                    if holder != token:
                        edges.setdefault((holder, token), (info, line, None))
            for call in project.graph.calls_from(info.fid):
                if not call.locks:
                    continue
                for callee, kind in call.callees:
                    if kind == "dynamic":
                        continue
                    for token in project.summary(callee).acquires:
                        for holder in call.locks:
                            if holder != token:
                                edges.setdefault(
                                    (holder, token), (info, call.line, callee)
                                )

        adjacency: dict = {}
        for a, b in edges:
            adjacency.setdefault(a, set()).add(b)
        for cycle in self._cycles(adjacency):
            steps: List[str] = []
            pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
            for a, b in pairs:
                info, line, callee = edges[(a, b)]
                step = WitnessStep(
                    info.fid, info.path, line,
                    f"acquires {b} while holding {a}",
                )
                steps.append(step.describe())
                if callee is not None:
                    steps.extend(_chain(project.acquire_witness(callee, b)))
            info, line, _callee = edges[pairs[0]]
            order = " -> ".join(cycle + (cycle[0],))
            yield Finding(
                path=info.path, line=line, rule=self.name,
                symbol=order,
                message=f"lock-order inversion: {order}",
                chain=tuple(steps),
            )

    @staticmethod
    def _cycles(adjacency: dict) -> List[Tuple[str, ...]]:
        """One canonical simple cycle per strongly-connected component."""
        cycles: List[Tuple[str, ...]] = []
        seen_keys: Set[Tuple[str, ...]] = set()
        for start in sorted(adjacency):
            # BFS back to `start`; the shortest loop is the clearest report.
            parents = {start: None}
            queue = [start]
            found = None
            while queue and found is None:
                node = queue.pop(0)
                for nxt in sorted(adjacency.get(node, ())):
                    if nxt == start:
                        found = node
                        break
                    if nxt not in parents:
                        parents[nxt] = node
                        queue.append(nxt)
            if found is None:
                continue
            path = [found]
            while parents[path[-1]] is not None:
                path.append(parents[path[-1]])
            cycle = tuple(reversed(path))
            # Canonicalise rotation so A->B->A and B->A->B dedupe.
            smallest = min(range(len(cycle)), key=lambda i: cycle[i])
            canonical = cycle[smallest:] + cycle[:smallest]
            if canonical not in seen_keys:
                seen_keys.add(canonical)
                cycles.append(canonical)
        return cycles


@register
class ServingGradLeakRule(ProjectRule):
    """Serving entry points must stay on the inference side of autograd."""

    name = "serving-grad-leak"
    description = (
        "serving/cluster/resilience entry point reaches gradient-enabled nn "
        "compute or an unrestored train() toggle"
    )
    default_paths = (
        "src/repro/serving/",
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for info in project.functions_under(self.paths()):
            # Entry points only: private helpers on a leaking chain show up
            # as hops in the public entry's witness, not as their own
            # finding — one leak, one report.
            if not info.is_public:
                continue
            summary = project.summary(info.fid)
            if not summary.grad and not summary.toggles:
                continue
            witness = project.grad_witness(info.fid)
            if not witness:
                continue
            terminal = witness[-1]
            what = (
                "an unrestored train() toggle"
                if "train(" in terminal.label
                else "gradient-enabled nn compute"
            )
            yield Finding(
                path=info.path, line=info.line, rule=self.name,
                symbol=f"{info.qualname} -> {_qualname(terminal.fid)}",
                message=(
                    f"serving path {info.qualname} reaches {what} with no "
                    f"`with no_grad():` on the chain"
                ),
                chain=_chain(witness),
            )


@register
class RouterExceptionTaxonomyRule(ProjectRule):
    """Public front-door surfaces only raise the documented taxonomy.

    PR 8's contract: callers of ``Router``/``LinkingService`` catch
    ``RejectedError`` (and its documented subclasses) for admission
    failures, ``TimeoutError`` for deadline misses, and ``ValueError`` /
    ``RuntimeError`` for caller bugs.  Anything else escaping a public
    method is an undocumented failure mode.  ``NotImplementedError`` is
    exempt project-wide — it marks abstract stubs, not runtime failures.
    """

    name = "router-exception-taxonomy"
    description = (
        "public Router/LinkingService methods may only raise RejectedError "
        "subclasses, TimeoutError, ValueError or RuntimeError"
    )
    default_paths = ("src/repro/serving/",)

    #: Class names whose public methods form the audited surface.
    SURFACE_CLASSES = ("Router", "LinkingService")

    #: Always-acceptable escapes, beyond RejectedError and its subclasses.
    BASE_ALLOWED = frozenset({
        "RejectedError", "TimeoutError", "FutureTimeoutError",
        "ValueError", "RuntimeError", "NotImplementedError",
    })

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        allowed = set(self.BASE_ALLOWED)
        allowed.update(project.table.subclasses_of("RejectedError"))
        allowed.update(str(n) for n in self.options.get("allowed", ()))
        surfaces = tuple(
            str(n) for n in self.options.get("classes", self.SURFACE_CLASSES)
        )
        for info in project.functions_under(self.paths()):
            if info.class_name not in surfaces or not info.is_public:
                continue
            for name in sorted(project.summary(info.fid).raises - allowed):
                witness = project.raise_witness(info.fid, name)
                yield Finding(
                    path=info.path, line=info.line, rule=self.name,
                    symbol=f"{info.qualname} -> {name}",
                    message=(
                        f"public surface {info.qualname} can leak {name}; "
                        f"wrap it in the documented taxonomy "
                        f"(RejectedError subclass or TimeoutError)"
                    ),
                    chain=_chain(witness),
                )
