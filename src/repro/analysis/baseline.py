"""Committed baseline of grandfathered lint findings.

Turning a linter on over an existing tree always surfaces findings that are
deliberate (a stats aggregation pinned to float64, say).  Rather than
littering the source with suppression comments — or worse, weakening the
rule — those findings live in a committed ``lint_baseline.json``: each
entry records the rule, file, symbol and a **justification** explaining why
the finding is accepted.  The lint gate then fails only on *new* findings.

Matching is by ``(rule, path, symbol)`` fingerprint, not line number, so
ordinary edits to a file do not invalidate its entries.  Per fingerprint an
entry covers ``count`` findings; extra occurrences beyond the count are new
findings (you cannot hide a second violation behind an old entry).

Workflow::

    scripts/run_lint.py src/                     # gate: exit 1 on new findings
    scripts/run_lint.py src/ --baseline-update   # re-write the baseline,
                                                 # keeping existing justifications
    # then edit lint_baseline.json to justify any TODO entries

Entries whose finding disappears (the code was fixed) are reported as
*stale* by the gate and pruned by ``--baseline-update``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple, Union

from .core import Finding

#: Default baseline file name, resolved against the project root.
DEFAULT_BASELINE_NAME = "lint_baseline.json"

#: Placeholder justification ``--baseline-update`` writes for new entries.
TODO_JUSTIFICATION = "TODO: justify or fix"

_FORMAT_VERSION = 1


@dataclass(frozen=True, order=True)
class BaselineEntry:
    """One grandfathered finding: fingerprint + justification + count."""

    rule: str
    path: str
    symbol: str
    justification: str = ""
    count: int = 1

    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "symbol": self.symbol,
            "count": self.count,
            "justification": self.justification,
        }

    def describe(self) -> str:
        suffix = f" x{self.count}" if self.count != 1 else ""
        return f"{self.path}: {self.rule}: {self.symbol}{suffix}"


class Baseline:
    """A set of :class:`BaselineEntry` rows with fingerprint matching."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = sorted(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        version = payload.get("version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path} "
                f"(expected {_FORMAT_VERSION})"
            )
        entries = [
            BaselineEntry(
                rule=str(row["rule"]),
                path=str(row["path"]),
                symbol=str(row.get("symbol", "")),
                justification=str(row.get("justification", "")),
                count=int(row.get("count", 1)),
            )
            for row in payload.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def partition(
        self,
        findings: Sequence[Finding],
        root: Union[str, Path, None] = None,
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (new, baselined) and report stale entries.

        Per fingerprint, the first ``entry.count`` findings are absorbed by
        the baseline; any surplus is new.  An entry matching fewer findings
        than its count is stale (partially or fully fixed code).

        With ``root`` set, a finding that matches no entry by full
        fingerprint falls back to ``(rule, symbol)`` matching against
        entries whose recorded file no longer exists under ``root`` — so a
        plain ``git mv`` does not turn every grandfathered finding in the
        moved file into a gate failure (the symbol travels with the code;
        only the path changed).
        """
        budget: Dict[Tuple[str, str, str], int] = {}
        for entry in self.entries:
            budget[entry.fingerprint()] = (
                budget.get(entry.fingerprint(), 0) + entry.count
            )
        new: List[Finding] = []
        matched: List[Finding] = []
        for finding in findings:
            key = finding.fingerprint()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched.append(finding)
            else:
                new.append(finding)

        if root is not None and new:
            root = Path(root)
            still_new: List[Finding] = []
            for finding in new:
                moved = None
                if finding.symbol:
                    for key, remaining in budget.items():
                        rule, old_path, symbol = key
                        if (
                            remaining > 0
                            and rule == finding.rule
                            and symbol == finding.symbol
                            and old_path != finding.path
                            and not (root / old_path).exists()
                        ):
                            moved = key
                            break
                if moved is not None:
                    budget[moved] -= 1
                    matched.append(finding)
                else:
                    still_new.append(finding)
            new = still_new
        stale: List[BaselineEntry] = []
        reported: set = set()
        for entry in self.entries:
            key = entry.fingerprint()
            if budget.get(key, 0) > 0 and key not in reported:
                reported.add(key)
                stale.append(entry)
        return new, matched, stale

    # ------------------------------------------------------------------
    # Update
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        previous: "Baseline" = None,
    ) -> "Baseline":
        """Baseline covering exactly ``findings``.

        Justifications from ``previous`` entries with the same fingerprint
        are carried over; genuinely new entries get the
        :data:`TODO_JUSTIFICATION` placeholder so a reviewer can spot them.
        Entries of ``previous`` that no longer match anything are dropped.
        """
        kept: Dict[Tuple[str, str, str], str] = {}
        if previous is not None:
            for entry in previous.entries:
                kept.setdefault(entry.fingerprint(), entry.justification)
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            counts[finding.fingerprint()] = counts.get(finding.fingerprint(), 0) + 1
        entries = [
            BaselineEntry(
                rule=rule, path=path, symbol=symbol, count=count,
                justification=kept.get((rule, path, symbol), TODO_JUSTIFICATION),
            )
            for (rule, path, symbol), count in counts.items()
        ]
        return cls(entries)
