"""The meta-training engine: reweight → accumulate → update, restartably.

:class:`MetaTrainingEngine` owns the full Algorithm 1 training cycle for one
stage (bi-encoder or cross-encoder, abstracted behind a task adapter from
:mod:`repro.training.tasks`):

1. **reweight** — every synthetic batch is weighted against a freshly sampled
   seed batch by an :class:`~repro.meta.reweight.ExampleReweighter` (exact
   probe blocks or the batched JVP, per ``MetaConfig``);
2. **accumulate** — the weighted-loss gradient of each micro-batch is added
   to a flat accumulation buffer (``EngineConfig.accumulation_steps`` of them
   per update), which survives the reweighter's own zero-grad cycles;
3. **update** — the averaged gradient is clipped, the
   :class:`~repro.nn.optim.LinearWarmupSchedule` advances the learning rate,
   and Adam applies the step.

Every step appends a :class:`StepMetrics` record, and with a
``checkpoint_dir`` configured the engine writes a full training checkpoint
(parameters, Adam moments, engine *and* dropout RNG states, epoch cursor,
loss history) every ``checkpoint_every`` epochs.  :meth:`MetaTrainingEngine.restore`
reloads one and :meth:`MetaTrainingEngine.fit` continues the run
bit-identically to an uninterrupted one.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..nn import Adam, LinearWarmupSchedule, clip_grad_norm
from ..nn.layers import Dropout
from ..nn.serialization import load_training_checkpoint, save_training_checkpoint
from ..utils.config import MetaConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices

_LOGGER = get_logger("training.engine")

PathLike = Union[str, Path]


@dataclass(frozen=True)
class EngineConfig:
    """Orchestration knobs of the meta-training engine.

    ``accumulation_steps`` micro-batches contribute to each optimiser update
    (their gradients are averaged).  ``warmup_fraction`` of the planned
    optimiser steps warm the learning rate up linearly before the linear
    decay (set ``use_warmup_schedule=False`` for a constant rate).  With a
    ``checkpoint_dir``, a training checkpoint is written every
    ``checkpoint_every`` epochs and the oldest beyond ``keep_checkpoints``
    are pruned.
    """

    accumulation_steps: int = 1
    use_warmup_schedule: bool = True
    warmup_fraction: float = 0.1
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1
    keep_checkpoints: int = 3


@dataclass
class StepMetrics:
    """Structured record of one reweight→accumulate(→update) step."""

    step: int
    epoch: int
    loss: float
    learning_rate: float
    selected_fraction: float
    seed_gradient_norm: float
    weight_sum: float
    batch_size: int
    skipped: bool
    duration_s: float

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class MetaTrainingEngine:
    """Own the reweight→accumulate→update cycle for one training stage.

    Parameters
    ----------
    model:
        The stage's :class:`repro.nn.Module`.
    task:
        A task adapter (see :mod:`repro.training.tasks`): callable probe loss
        plus ``prepare`` / ``weighted_loss`` hooks.
    learning_rate / batch_size / epochs / max_grad_norm:
        Stage hyper-parameters (usually lifted from the stage config).
    meta_config / engine_config:
        Reweighting and orchestration knobs.

    Example::

        task = BiEncoderMetaTask(model, negatives)
        engine = MetaTrainingEngine(model, task, learning_rate=5e-3,
                                    batch_size=16, epochs=3)
        history = engine.fit(synthetic_pairs, seed_pairs, seed=0)
        # ... interrupted?  restore and continue:
        engine2 = MetaTrainingEngine(fresh_model, task2, ...)
        engine2.restore("ckpts/epoch-0002.npz")
        engine2.fit(synthetic_pairs, seed_pairs, seed=0)   # epochs 3..N
    """

    def __init__(
        self,
        model,
        task,
        *,
        learning_rate: float,
        batch_size: int,
        epochs: int,
        max_grad_norm: float = 1.0,
        meta_config: Optional[MetaConfig] = None,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.model = model
        self.task = task
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.default_epochs = epochs
        self.max_grad_norm = max_grad_norm
        self.meta_config = meta_config or MetaConfig()
        self.config = engine_config or EngineConfig()
        if self.config.accumulation_steps < 1:
            raise ValueError("accumulation_steps must be at least 1")
        # Imported here (not at module level): repro.meta's trainers are
        # facades over this engine, so the packages reference each other.
        from ..meta.reweight import ExampleReweighter

        self.reweighter = ExampleReweighter(model, task, self.meta_config)
        self.optimizer = Adam(model.parameters(), lr=learning_rate)
        self.history = MetricHistory()
        self.step_metrics: List[StepMetrics] = []
        self.schedule: Optional[LinearWarmupSchedule] = None
        self._rng: Optional[np.random.Generator] = None
        self._completed_epochs = 0
        self._optimizer_steps = 0
        self._selected_fractions: List[float] = []
        self._restored_schedule_state: Optional[Dict[str, object]] = None
        self._total_steps_hint: Optional[int] = None

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def fit(
        self,
        synthetic_items: Sequence,
        seed_items: Sequence,
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Run (or, after :meth:`restore`, continue) meta-weighted training.

        ``epochs`` is the *total* epoch count of the run: a restored engine
        trains only the epochs beyond its checkpoint cursor, drawing from the
        restored RNG stream so the continuation matches an uninterrupted run
        exactly.  Returns the per-epoch loss history (plus the mean
        ``selected_fraction``), mirroring the legacy trainer API.
        """
        synthetic_items = list(synthetic_items)
        seed_items = list(seed_items)
        if not synthetic_items:
            raise ValueError("synthetic item list must not be empty")
        if not seed_items:
            raise ValueError("seed item list must not be empty")
        epochs = self.default_epochs if epochs is None else epochs
        if self._rng is None:
            self._rng = np.random.default_rng(seed)
        # The LR schedule is planned over the engine's full epoch budget (not
        # this call's stopping point), so a run interrupted mid-way follows
        # the same trajectory as an uninterrupted one.
        self._ensure_schedule(len(synthetic_items), max(epochs, self.default_epochs))
        accumulation = self.config.accumulation_steps

        self.model.train()
        try:
            for epoch in range(self._completed_epochs, epochs):
                epoch_losses: List[float] = []
                accumulated: Optional[np.ndarray] = None
                accumulated_count = 0
                for index_batch in batched_indices(len(synthetic_items), self.batch_size, self._rng):
                    if len(index_batch) < 2:
                        continue
                    step_start = time.perf_counter()
                    batch = [synthetic_items[i] for i in index_batch]
                    seed_batch_size = min(self.meta_config.seed_batch_size, len(seed_items))
                    seed_indices = self._rng.choice(len(seed_items), size=seed_batch_size, replace=False)
                    seed_batch = [seed_items[i] for i in seed_indices]

                    result = self.reweighter.compute_weights(batch, seed_batch)
                    self._selected_fractions.append(result.selected_fraction)
                    weight_sum = float(result.weights.sum())
                    if weight_sum <= 0.0:
                        # Nothing in this batch helps the seed loss.
                        self._record_step(epoch, float("nan"), result, weight_sum,
                                          len(batch), True, step_start)
                        continue

                    loss = self.task.weighted_loss(batch, result.weights)
                    self.model.zero_grad()
                    loss.backward()
                    gradient = self.model.gradient_vector()
                    accumulated = gradient if accumulated is None else accumulated + gradient
                    accumulated_count += 1
                    if accumulated_count >= accumulation:
                        self._apply_update(accumulated, accumulated_count)
                        accumulated, accumulated_count = None, 0
                    epoch_losses.append(loss.item())
                    self._record_step(epoch, loss.item(), result, weight_sum,
                                      len(batch), False, step_start)
                if accumulated is not None:
                    # Flush the trailing partial accumulation window.
                    self._apply_update(accumulated, accumulated_count)
                mean_loss = float(np.mean(epoch_losses)) if epoch_losses else float("nan")
                self.history.add("loss", mean_loss)
                _LOGGER.debug("meta engine epoch %d loss %.4f", epoch, mean_loss)
                self._completed_epochs = epoch + 1
                self._maybe_checkpoint()
            self.history.add(
                "selected_fraction",
                float(np.mean(self._selected_fractions)) if self._selected_fractions else 0.0,
            )
        finally:
            self.model.eval()
        return self.history

    def _ensure_schedule(self, num_items: int, epochs: int) -> None:
        if not self.config.use_warmup_schedule or self.schedule is not None:
            return
        batches_per_epoch = max(1, math.ceil(num_items / self.batch_size))
        steps_per_epoch = max(1, math.ceil(batches_per_epoch / self.config.accumulation_steps))
        total_steps = self._total_steps_hint or max(1, epochs * steps_per_epoch)
        warmup_steps = int(round(self.config.warmup_fraction * total_steps))
        self.schedule = LinearWarmupSchedule(self.optimizer, warmup_steps, total_steps)
        if self._restored_schedule_state is not None:
            self.schedule.load_state_dict(self._restored_schedule_state)
            self._restored_schedule_state = None

    def _apply_update(self, accumulated: np.ndarray, count: int) -> None:
        """Write the averaged accumulated gradient back and take one step."""
        flat = accumulated / count if count > 1 else accumulated
        offset = 0
        for parameter in self.model.parameters():
            size = parameter.size
            parameter.grad = flat[offset:offset + size].reshape(parameter.shape)
            offset += size
        clip_grad_norm(self.model.parameters(), self.max_grad_norm)
        if self.schedule is not None:
            self.schedule.step()
        self.optimizer.step()
        self.model.zero_grad()
        self._optimizer_steps += 1

    def _record_step(
        self,
        epoch: int,
        loss: float,
        result,
        weight_sum: float,
        batch_size: int,
        skipped: bool,
        step_start: float,
    ) -> None:
        self.step_metrics.append(
            StepMetrics(
                step=len(self.step_metrics),
                epoch=epoch,
                loss=float(loss),
                learning_rate=float(self.optimizer.lr),
                selected_fraction=float(result.selected_fraction),
                seed_gradient_norm=float(result.seed_gradient_norm),
                weight_sum=float(weight_sum),
                batch_size=int(batch_size),
                skipped=bool(skipped),
                duration_s=time.perf_counter() - step_start,
            )
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def _dropout_states(self) -> Dict[str, object]:
        """Per-module RNG states of every Dropout layer (training-mode noise)."""
        states: Dict[str, object] = {}
        for name, module in self.model.named_modules():
            if isinstance(module, Dropout):
                states[name] = module._rng.bit_generator.state
        return states

    def _restore_dropout_states(self, states: Dict[str, object]) -> None:
        for name, module in self.model.named_modules():
            if isinstance(module, Dropout) and name in states:
                module._rng.bit_generator.state = states[name]

    def save_checkpoint(self, path: PathLike) -> Path:
        """Write a full training checkpoint (resumable via :meth:`restore`)."""
        metadata = {
            "engine": {
                "completed_epochs": self._completed_epochs,
                "optimizer_steps": self._optimizer_steps,
                "loss_history": self.history.as_dict(),
                "selected_fractions": list(self._selected_fractions),
                "step_metrics": [m.to_dict() for m in self.step_metrics],
                "total_steps": self.schedule.total_steps if self.schedule else None,
                "learning_rate": self.learning_rate,
                "batch_size": self.batch_size,
            },
            "rng": {
                "engine": self._rng.bit_generator.state if self._rng is not None else None,
                "dropout": self._dropout_states(),
            },
            "schedule": self.schedule.state_dict() if self.schedule else None,
        }
        return save_training_checkpoint(self.model, path, optimizer=self.optimizer, metadata=metadata)

    def restore(self, path: PathLike) -> Dict[str, object]:
        """Load a checkpoint into this engine; the next :meth:`fit` continues it.

        Restores parameters, Adam moments, the engine and dropout RNG
        streams, the epoch cursor and the metric history, making the
        continued run bit-identical to one that never stopped.
        """
        metadata = load_training_checkpoint(self.model, path, optimizer=self.optimizer)
        engine_meta = metadata.get("engine", {})
        self._completed_epochs = int(engine_meta.get("completed_epochs", 0))
        self._optimizer_steps = int(engine_meta.get("optimizer_steps", 0))
        self._selected_fractions = [float(v) for v in engine_meta.get("selected_fractions", [])]
        self._total_steps_hint = engine_meta.get("total_steps")
        self.history = MetricHistory()
        for name, values in engine_meta.get("loss_history", {}).items():
            for value in values:
                self.history.add(name, value)
        self.step_metrics = [StepMetrics(**record) for record in engine_meta.get("step_metrics", [])]
        rng_meta = metadata.get("rng", {})
        if rng_meta.get("engine") is not None:
            self._rng = np.random.default_rng()
            self._rng.bit_generator.state = rng_meta["engine"]
        self._restore_dropout_states(rng_meta.get("dropout", {}))
        self._restored_schedule_state = metadata.get("schedule")
        return metadata

    def _maybe_checkpoint(self) -> None:
        if not self.config.checkpoint_dir or self.config.checkpoint_every <= 0:
            return
        if self._completed_epochs % self.config.checkpoint_every != 0:
            return
        directory = Path(self.config.checkpoint_dir)
        path = self.save_checkpoint(directory / f"epoch-{self._completed_epochs:04d}.npz")
        _LOGGER.debug("wrote checkpoint %s", path)
        checkpoints = sorted(directory.glob("epoch-*.npz"))
        for stale in checkpoints[:-self.config.keep_checkpoints]:
            stale.unlink()
