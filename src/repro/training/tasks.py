"""Stage adapters binding models to the :class:`MetaTrainingEngine`.

A *task* is the engine's view of one training stage: a callable computing the
probe loss of a batch of items (the interface
:class:`~repro.meta.reweight.ExampleReweighter` expects of its ``loss_fn``),
plus two hooks the engine uses around it:

``prepare(items)``
    Tokenize the batch once and return a closure re-evaluating its
    per-example losses at the model's current parameters.  The reweighter
    calls it so the JVP base/shifted evaluations and exact probe blocks share
    a single encode pass.

``weighted_loss(items, weights)``
    The Eq. 15 update objective: the weighted sum of the batch's losses under
    the *same* loss the weights were derived for.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair
from ..linking.biencoder import BiEncoder
from ..linking.crossencoder import CrossEncoder, RankingExample


class BiEncoderMetaTask:
    """Bi-encoder stage: fixed-negative (or in-batch) contrastive loss.

    ``negatives`` supplies the fixed negative pool the per-example loss needs
    (the in-batch loss degenerates for single examples); without one the task
    falls back to the in-batch loss.
    """

    def __init__(self, model: BiEncoder, negatives: Optional[Sequence[Entity]] = None) -> None:
        self.model = model
        self.negatives: List[Entity] = list(negatives or [])

    def __call__(self, pairs: Sequence[EntityMentionPair], reduction: str = "sum"):
        if self.negatives:
            return self.model.pairs_loss_with_negatives(pairs, self.negatives, reduction=reduction)
        return self.model.pairs_loss(pairs, reduction=reduction)

    def prepare(self, pairs: Sequence[EntityMentionPair]):
        return self.model.prepare_pairs_loss(pairs, negatives=self.negatives or None)

    def weighted_loss(self, pairs: Sequence[EntityMentionPair], weights: np.ndarray):
        # Route the reweighted batch through the public pair-loss entry point
        # (weights embedded in pair.weight) so the update demonstrably
        # optimises the objective the reweighter probed (Alg. 1 / Eq. 15).
        reweighted = [pair.reweighted(float(weight)) for pair, weight in zip(pairs, weights)]
        return self(reweighted, reduction="sum")


class CrossEncoderMetaTask:
    """Cross-encoder stage: batched softmax ranking loss over candidates."""

    def __init__(self, model: CrossEncoder) -> None:
        self.model = model

    def __call__(self, examples: Sequence[RankingExample], reduction: str = "sum"):
        return self.model.examples_loss(examples, reduction=reduction)

    def prepare(self, examples: Sequence[RankingExample]):
        return self.model.prepare_examples_loss(examples)

    def weighted_loss(self, examples: Sequence[RankingExample], weights: np.ndarray):
        # The weighted sum runs over *all* examples (zero-weight ones
        # contribute exactly 0), so the logged step loss is the same quantity
        # the bi-encoder stage records.
        return self.model.examples_loss(examples, reduction="sum", sample_weights=weights)
