"""``repro.training`` — the meta-training engine and its stage adapters.

The engine (:class:`MetaTrainingEngine`) owns the Algorithm 1
reweight→accumulate→update cycle — gradient accumulation, linear-warmup
scheduling, per-step structured metrics and resumable checkpointing — while
task adapters (:class:`BiEncoderMetaTask`, :class:`CrossEncoderMetaTask`)
bind it to the two BLINK stages.  The ``repro.meta`` trainers are thin
facades over this subsystem.
"""

from .engine import EngineConfig, MetaTrainingEngine, StepMetrics
from .tasks import BiEncoderMetaTask, CrossEncoderMetaTask

__all__ = [
    "EngineConfig",
    "MetaTrainingEngine",
    "StepMetrics",
    "BiEncoderMetaTask",
    "CrossEncoderMetaTask",
]
