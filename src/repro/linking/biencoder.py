"""Bi-encoder: dense retrieval stage of BLINK (Section IV-B1).

Two transformer encoders independently embed the mention-in-context and the
entity (title + description); the match score is the inner product of the two
vectors (Eq. 5) and training maximises the gold pair against the other
entities of the batch (the in-batch contrastive loss of Eq. 6).  Per-example
weights enter the loss exactly where the meta-learning algorithm needs them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..nn import Adam, Module, Tensor, TransformerEncoder, clip_grad_norm, no_grad
from ..nn import functional as F
from ..text.tokenizer import Tokenizer
from ..utils.config import BiEncoderConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices
from .candidates import EntityIndex
from .encoders import encode_entity_inputs, encode_mention_inputs, encode_pair_batch

_LOGGER = get_logger("biencoder")


class BiEncoder(Module):
    """Mention encoder + entity encoder with dot-product scoring."""

    def __init__(self, config: BiEncoderConfig, tokenizer: Tokenizer) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer
        encoder_config = config.encoder
        vocab_size = max(encoder_config.vocab_size, tokenizer.vocab_size)
        self.mention_encoder = TransformerEncoder(
            vocab_size=vocab_size,
            model_dim=encoder_config.model_dim,
            num_layers=encoder_config.num_layers,
            num_heads=encoder_config.num_heads,
            hidden_dim=encoder_config.hidden_dim,
            max_length=encoder_config.max_length,
            dropout=encoder_config.dropout,
            padding_idx=tokenizer.pad_id,
            seed=config.seed,
        )
        self.entity_encoder = TransformerEncoder(
            vocab_size=vocab_size,
            model_dim=encoder_config.model_dim,
            num_layers=encoder_config.num_layers,
            num_heads=encoder_config.num_heads,
            hidden_dim=encoder_config.hidden_dim,
            max_length=encoder_config.max_length,
            dropout=encoder_config.dropout,
            padding_idx=tokenizer.pad_id,
            seed=config.seed + 1,
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_mention_ids(self, mention_ids: np.ndarray) -> Tensor:
        return F.normalize(self.mention_encoder.encode(mention_ids))

    def encode_entity_ids(self, entity_ids: np.ndarray) -> Tensor:
        return F.normalize(self.entity_encoder.encode(entity_ids))

    def embed_mentions(self, mentions: Sequence[Mention]) -> np.ndarray:
        """Inference-time mention embeddings (no autodiff graph)."""
        ids = encode_mention_inputs(mentions, self.tokenizer, self.config.encoder.max_length)
        self.eval()
        with no_grad():
            return self.encode_mention_ids(ids).data.copy()

    def embed_entities(self, entities: Sequence[Entity]) -> np.ndarray:
        """Inference-time entity embeddings (no autodiff graph)."""
        ids = encode_entity_inputs(entities, self.tokenizer, self.config.encoder.max_length)
        self.eval()
        with no_grad():
            return self.encode_entity_ids(ids).data.copy()

    def build_index(self, entities: Sequence[Entity], batch_size: int = 64) -> EntityIndex:
        """Embed all entities and wrap them in an :class:`EntityIndex`."""
        entities = list(entities)
        vectors: List[np.ndarray] = []
        for start in range(0, len(entities), batch_size):
            vectors.append(self.embed_entities(entities[start:start + batch_size]))
        return EntityIndex(entities, np.concatenate(vectors, axis=0))

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def batch_loss(
        self,
        mention_ids: np.ndarray,
        entity_ids: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
        reduction: str = "mean",
    ):
        """In-batch contrastive loss (Eq. 6) with optional per-example weights."""
        mention_vectors = self.encode_mention_ids(mention_ids)
        entity_vectors = self.encode_entity_ids(entity_ids)
        # Scores of every mention against every entity in the batch; the
        # temperature sharpens the distribution since vectors are unit norm.
        scores = mention_vectors.matmul(entity_vectors.T) * 10.0
        targets = np.arange(len(mention_ids))
        return F.cross_entropy(scores, targets, reduction=reduction, sample_weights=sample_weights)

    def pairs_loss(self, pairs: Sequence[EntityMentionPair], reduction: str = "mean"):
        """Convenience wrapper computing the loss directly from pairs."""
        batch = encode_pair_batch(pairs, self.tokenizer, self.config.encoder.max_length)
        weights = batch.weights if not np.allclose(batch.weights, 1.0) else None
        return self.batch_loss(batch.mention_ids, batch.entity_ids, sample_weights=weights,
                               reduction=reduction)

    def pairs_loss_with_negatives(
        self,
        pairs: Sequence[EntityMentionPair],
        negatives: Sequence[Entity],
        reduction: str = "mean",
    ):
        """Contrastive loss of each pair against a *fixed* negative entity set.

        Unlike the in-batch loss, this is well defined for a single pair, which
        is what the meta-learning reweighter needs when it computes exact
        per-example gradients (the in-batch loss of a batch of one is
        identically zero).
        """
        if not negatives:
            raise ValueError("negative entity list must not be empty")
        batch = encode_pair_batch(pairs, self.tokenizer, self.config.encoder.max_length)
        negative_ids = encode_entity_inputs(negatives, self.tokenizer, self.config.encoder.max_length)

        mention_vectors = self.encode_mention_ids(batch.mention_ids)
        gold_vectors = self.encode_entity_ids(batch.entity_ids)
        negative_vectors = self.encode_entity_ids(negative_ids)

        gold_scores = (mention_vectors * gold_vectors).sum(axis=-1, keepdims=True) * 10.0
        negative_scores = mention_vectors.matmul(negative_vectors.T) * 10.0
        from ..nn import concatenate as concat_tensors

        scores = concat_tensors([gold_scores, negative_scores], axis=1)
        targets = np.zeros(len(pairs), dtype=np.int64)
        weights = batch.weights if not np.allclose(batch.weights, 1.0) else None
        return F.cross_entropy(scores, targets, reduction=reduction, sample_weights=weights)


class BiEncoderTrainer:
    """Standard (non-meta) training loop for the bi-encoder."""

    def __init__(self, model: BiEncoder, config: Optional[BiEncoderConfig] = None) -> None:
        self.model = model
        self.config = config or model.config

    def fit(
        self,
        pairs: Sequence[EntityMentionPair],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train on weighted pairs with Adam; returns per-epoch mean loss."""
        if not pairs:
            raise ValueError("cannot train on an empty pair list")
        epochs = self.config.epochs if epochs is None else epochs
        batch = encode_pair_batch(pairs, self.model.tokenizer, self.config.encoder.max_length)
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)

        self.model.train()
        for epoch in range(epochs):
            losses: List[float] = []
            for index_batch in batched_indices(len(batch), self.config.batch_size, rng):
                if len(index_batch) < 2:
                    continue  # in-batch negatives need at least two examples
                weights = batch.weights[index_batch]
                sample_weights = None if np.allclose(weights, 1.0) else weights
                loss = self.model.batch_loss(
                    batch.mention_ids[index_batch],
                    batch.entity_ids[index_batch],
                    sample_weights=sample_weights,
                )
                self.model.zero_grad()
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            history.add("loss", mean_loss)
            _LOGGER.debug("bi-encoder epoch %d loss %.4f", epoch, mean_loss)
        self.model.eval()
        return history
