"""Bi-encoder: dense retrieval stage of BLINK (Section IV-B1).

Two transformer encoders independently embed the mention-in-context and the
entity (title + description); the match score is the inner product of the two
vectors (Eq. 5) and training maximises the gold pair against the other
entities of the batch (the in-batch contrastive loss of Eq. 6).  Per-example
weights enter the loss exactly where the meta-learning algorithm needs them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..nn import Adam, Module, Tensor, TransformerEncoder, clip_grad_norm, concatenate, no_grad
from ..nn import functional as F
from ..text.tokenizer import Tokenizer
from ..utils.config import BiEncoderConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices
from .candidates import EntityIndex, ShardedEntityIndex
from .encoders import encode_entity_inputs, encode_mention_inputs, encode_pair_batch

_LOGGER = get_logger("biencoder")

#: Default chunk size for the batched inference entry points.
DEFAULT_EMBED_BATCH_SIZE = 64


class BiEncoder(Module):
    """Mention encoder + entity encoder with dot-product scoring."""

    def __init__(self, config: BiEncoderConfig, tokenizer: Tokenizer) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer
        encoder_config = config.encoder
        vocab_size = max(encoder_config.vocab_size, tokenizer.vocab_size)
        self.mention_encoder = TransformerEncoder(
            vocab_size=vocab_size,
            model_dim=encoder_config.model_dim,
            num_layers=encoder_config.num_layers,
            num_heads=encoder_config.num_heads,
            hidden_dim=encoder_config.hidden_dim,
            max_length=encoder_config.max_length,
            dropout=encoder_config.dropout,
            padding_idx=tokenizer.pad_id,
            seed=config.seed,
        )
        self.entity_encoder = TransformerEncoder(
            vocab_size=vocab_size,
            model_dim=encoder_config.model_dim,
            num_layers=encoder_config.num_layers,
            num_heads=encoder_config.num_heads,
            hidden_dim=encoder_config.hidden_dim,
            max_length=encoder_config.max_length,
            dropout=encoder_config.dropout,
            padding_idx=tokenizer.pad_id,
            seed=config.seed + 1,
        )

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_mention_ids(self, mention_ids: np.ndarray) -> Tensor:
        return F.normalize(self.mention_encoder.encode(mention_ids))

    def encode_entity_ids(self, entity_ids: np.ndarray) -> Tensor:
        return F.normalize(self.entity_encoder.encode(entity_ids))

    def embed_mentions(
        self, mentions: Sequence[Mention], batch_size: Optional[int] = DEFAULT_EMBED_BATCH_SIZE
    ) -> np.ndarray:
        """Batched inference-time mention embeddings (no autodiff graph).

        Mentions are tokenized and pushed through the mention encoder
        ``batch_size`` at a time (``None`` = one pass over everything), so the
        serving hot path never runs a per-example forward.  Returns a
        ``(len(mentions), model_dim)`` unit-norm matrix.

        Example::

            vectors = biencoder.embed_mentions(mentions, batch_size=64)
        """
        return self._embed_batched(
            mentions,
            lambda chunk: encode_mention_inputs(chunk, self.tokenizer, self.config.encoder.max_length),
            self.encode_mention_ids,
            batch_size,
        )

    def embed_entities(
        self, entities: Sequence[Entity], batch_size: Optional[int] = DEFAULT_EMBED_BATCH_SIZE
    ) -> np.ndarray:
        """Batched inference-time entity embeddings (no autodiff graph).

        The entity-side twin of :meth:`embed_mentions`; used by
        :meth:`build_index` / :meth:`build_sharded_index` to embed whole
        entity collections in fixed-size chunks.
        """
        return self._embed_batched(
            entities,
            lambda chunk: encode_entity_inputs(chunk, self.tokenizer, self.config.encoder.max_length),
            self.encode_entity_ids,
            batch_size,
        )

    def embed_mention_id_matrix(self, ids: np.ndarray) -> np.ndarray:
        """Embed pre-tokenized, pre-padded mention id rows (no autodiff graph).

        The serving pipeline's tokenize stage produces the id matrix once;
        this entry point lets it skip the tokenizer entirely.
        """
        self.eval()
        with no_grad():
            return self.encode_mention_ids(ids).data.copy()

    def _embed_batched(self, items, encode_fn, forward_fn, batch_size: Optional[int]) -> np.ndarray:
        items = list(items)
        if not items:
            return np.zeros((0, self.config.encoder.model_dim))
        step = len(items) if batch_size is None else max(1, batch_size)
        self.eval()
        chunks: List[np.ndarray] = []
        with no_grad():
            for start in range(0, len(items), step):
                ids = encode_fn(items[start:start + step])
                chunks.append(forward_fn(ids).data.copy())
        return chunks[0] if len(chunks) == 1 else np.concatenate(chunks, axis=0)

    def build_index(self, entities: Sequence[Entity], batch_size: int = 64) -> EntityIndex:
        """Embed all entities and wrap them in a flat :class:`EntityIndex`."""
        entities = list(entities)
        return EntityIndex(entities, self.embed_entities(entities, batch_size=batch_size))

    def build_sharded_index(
        self,
        entities: Sequence[Entity],
        batch_size: int = 64,
        lazy: bool = True,
        cache_size: int = 4096,
        backend=None,
    ) -> ShardedEntityIndex:
        """Build a per-world :class:`ShardedEntityIndex` over ``entities``.

        With ``lazy=True`` (the default) no embedding happens here: each
        world's shard is embedded on first search, which is what the serving
        pipeline wants when only a few worlds receive traffic.

        ``backend`` picks the per-shard search structure: None keeps the
        exact reference index; :class:`repro.index.IVFBackend` builds
        approximate IVF shards (coarse cells + exact re-scoring).

        Example::

            index = biencoder.build_sharded_index(corpus_entities)
            index.search(queries, k=64, worlds=["lego"])
        """
        index = ShardedEntityIndex.from_entities(
            entities,
            embed_fn=lambda chunk: self.embed_entities(chunk, batch_size=batch_size),
            cache_size=cache_size,
            backend=backend,
        )
        if not lazy:
            for world in index.worlds():
                index.shard(world)
        return index

    def load_sharded_index(
        self,
        path,
        batch_size: int = 64,
        cache_size: Optional[int] = None,
        mmap: bool = False,
        backend=None,
    ) -> ShardedEntityIndex:
        """Restore a :meth:`ShardedEntityIndex.save` snapshot with this encoder.

        Snapshots persist vectors and entity metadata but not the embedding
        callable; this rebinds ``embed_fn`` to this bi-encoder so still-cold
        shards can materialise lazily after a process restart.

        ``mmap=True`` opens version-2 snapshot arrays with ``mmap_mode="r"``
        so forked replica processes share the embedding pages; ``backend``
        rebuilds exact-saved shards under an approximate backend.

        Example::

            biencoder.build_sharded_index(entities).save("snapshots/kb")
            ...                                     # process restart
            index = biencoder.load_sharded_index("snapshots/kb")
        """
        return ShardedEntityIndex.load(
            path,
            embed_fn=lambda chunk: self.embed_entities(chunk, batch_size=batch_size),
            cache_size=cache_size,
            mmap=mmap,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def batch_loss(
        self,
        mention_ids: np.ndarray,
        entity_ids: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
        reduction: str = "mean",
    ):
        """In-batch contrastive loss (Eq. 6) with optional per-example weights."""
        mention_vectors = self.encode_mention_ids(mention_ids)
        entity_vectors = self.encode_entity_ids(entity_ids)
        # Scores of every mention against every entity in the batch; the
        # temperature sharpens the distribution since vectors are unit norm.
        scores = mention_vectors.matmul(entity_vectors.T) * 10.0
        targets = np.arange(len(mention_ids))
        return F.cross_entropy(scores, targets, reduction=reduction, sample_weights=sample_weights)

    def pairs_loss(self, pairs: Sequence[EntityMentionPair], reduction: str = "mean"):
        """Convenience wrapper computing the loss directly from pairs."""
        batch = encode_pair_batch(pairs, self.tokenizer, self.config.encoder.max_length)
        weights = batch.weights if not np.allclose(batch.weights, 1.0) else None
        return self.batch_loss(batch.mention_ids, batch.entity_ids, sample_weights=weights,
                               reduction=reduction)

    def fixed_negative_loss_from_ids(
        self,
        mention_ids: np.ndarray,
        entity_ids: np.ndarray,
        negative_ids: np.ndarray,
        sample_weights: Optional[np.ndarray] = None,
        reduction: str = "mean",
    ):
        """Fixed-negative contrastive loss from pre-tokenized id matrices.

        The id-level core of :meth:`pairs_loss_with_negatives`; callers that
        evaluate the same batch repeatedly (the meta-reweighting probes)
        tokenize once and re-enter here at different parameters.
        """
        mention_vectors = self.encode_mention_ids(mention_ids)
        gold_vectors = self.encode_entity_ids(entity_ids)
        negative_vectors = self.encode_entity_ids(negative_ids)

        gold_scores = (mention_vectors * gold_vectors).sum(axis=-1, keepdims=True) * 10.0
        negative_scores = mention_vectors.matmul(negative_vectors.T) * 10.0
        scores = concatenate([gold_scores, negative_scores], axis=1)
        targets = np.zeros(len(mention_ids), dtype=np.int64)
        return F.cross_entropy(scores, targets, reduction=reduction, sample_weights=sample_weights)

    def pairs_loss_with_negatives(
        self,
        pairs: Sequence[EntityMentionPair],
        negatives: Sequence[Entity],
        reduction: str = "mean",
    ):
        """Contrastive loss of each pair against a *fixed* negative entity set.

        Unlike the in-batch loss, this is well defined for a single pair, which
        is what the meta-learning reweighter needs when it computes exact
        per-example gradients (the in-batch loss of a batch of one is
        identically zero).
        """
        if not negatives:
            raise ValueError("negative entity list must not be empty")
        batch = encode_pair_batch(pairs, self.tokenizer, self.config.encoder.max_length)
        negative_ids = encode_entity_inputs(negatives, self.tokenizer, self.config.encoder.max_length)
        weights = batch.weights if not np.allclose(batch.weights, 1.0) else None
        return self.fixed_negative_loss_from_ids(
            batch.mention_ids, batch.entity_ids, negative_ids,
            sample_weights=weights, reduction=reduction,
        )

    def prepare_pairs_loss(
        self,
        pairs: Sequence[EntityMentionPair],
        negatives: Optional[Sequence[Entity]] = None,
    ):
        """Tokenize a pair batch once; return a closure re-evaluating its loss.

        The closure ``run(reduction="sum", sample_weights=None)`` computes the
        (fixed-negative when ``negatives`` is given, else in-batch) loss of
        the *same* examples at the model's **current** parameters.  The
        meta-reweighter uses it to share one tokenisation pass between the
        base and shifted JVP evaluations and across exact probe blocks.
        """
        batch = encode_pair_batch(pairs, self.tokenizer, self.config.encoder.max_length)
        negative_ids = (
            encode_entity_inputs(negatives, self.tokenizer, self.config.encoder.max_length)
            if negatives else None
        )

        def run(reduction: str = "sum", sample_weights: Optional[np.ndarray] = None):
            if negative_ids is None:
                return self.batch_loss(
                    batch.mention_ids, batch.entity_ids,
                    sample_weights=sample_weights, reduction=reduction,
                )
            return self.fixed_negative_loss_from_ids(
                batch.mention_ids, batch.entity_ids, negative_ids,
                sample_weights=sample_weights, reduction=reduction,
            )

        return run


class BiEncoderTrainer:
    """Standard (non-meta) training loop for the bi-encoder."""

    def __init__(self, model: BiEncoder, config: Optional[BiEncoderConfig] = None) -> None:
        self.model = model
        self.config = config or model.config

    def fit(
        self,
        pairs: Sequence[EntityMentionPair],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train on weighted pairs with Adam; returns per-epoch mean loss."""
        if not pairs:
            raise ValueError("cannot train on an empty pair list")
        epochs = self.config.epochs if epochs is None else epochs
        batch = encode_pair_batch(pairs, self.model.tokenizer, self.config.encoder.max_length)
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)

        self.model.train()
        try:
            for epoch in range(epochs):
                losses: List[float] = []
                for index_batch in batched_indices(len(batch), self.config.batch_size, rng):
                    if len(index_batch) < 2:
                        continue  # in-batch negatives need at least two examples
                    weights = batch.weights[index_batch]
                    sample_weights = None if np.allclose(weights, 1.0) else weights
                    loss = self.model.batch_loss(
                        batch.mention_ids[index_batch],
                        batch.entity_ids[index_batch],
                        sample_weights=sample_weights,
                    )
                    self.model.zero_grad()
                    loss.backward()
                    clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                    optimizer.step()
                    losses.append(loss.item())
                mean_loss = float(np.mean(losses)) if losses else float("nan")
                history.add("loss", mean_loss)
                _LOGGER.debug("bi-encoder epoch %d loss %.4f", epoch, mean_loss)
        finally:
            self.model.eval()
        return history
