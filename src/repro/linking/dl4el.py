"""DL4EL-style denoising baseline (Le & Titov, 2019).

The original method assumes a known noise ratio and, inside each batch, lets
the model learn which examples to trust by pushing the posterior "is this
example clean?" distribution towards that prior (via a KL term).  We keep the
essential mechanism in a compact form: every batch computes per-example
losses, converts them into a clean-probability distribution (low loss → more
likely clean), calibrates it so that on average ``1 - noise_ratio`` of the
mass survives, and trains on the re-weighted loss.

The paper applies DL4EL only to the bi-encoder (the cross-encoder's batch size
is too small for in-batch denoising) and finds it does not help much because
the synthetic data contains no superficially detectable noise; the same
behaviour is reproduced here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import EntityMentionPair
from ..nn import Adam, clip_grad_norm
from ..utils.config import BiEncoderConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices
from .biencoder import BiEncoder
from .encoders import encode_pair_batch

_LOGGER = get_logger("dl4el")


class DL4ELTrainer:
    """Noise-aware bi-encoder training with in-batch example selection."""

    def __init__(
        self,
        model: BiEncoder,
        config: Optional[BiEncoderConfig] = None,
        noise_ratio: float = 0.3,
        temperature: float = 1.0,
    ) -> None:
        if not 0.0 <= noise_ratio < 1.0:
            raise ValueError("noise_ratio must lie in [0, 1)")
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.model = model
        self.config = config or model.config
        self.noise_ratio = noise_ratio
        self.temperature = temperature

    # ------------------------------------------------------------------
    def _denoising_weights(self, per_example_losses: np.ndarray) -> np.ndarray:
        """Convert losses into weights that keep ~(1 - noise_ratio) of the batch.

        Low-loss examples receive weights close to 1, the highest-loss
        ``noise_ratio`` fraction is strongly down-weighted; weights are then
        rescaled so their mean equals ``1 - noise_ratio``, matching the prior.
        """
        losses = np.asarray(per_example_losses, dtype=np.float64)
        if losses.size == 0:
            return losses
        clean_scores = np.exp(-(losses - losses.min()) / self.temperature)
        keep = max(1, int(round((1.0 - self.noise_ratio) * losses.size)))
        threshold = np.sort(clean_scores)[::-1][keep - 1]
        weights = np.where(clean_scores >= threshold, 1.0, clean_scores / (threshold + 1e-12))
        target_mean = 1.0 - self.noise_ratio
        weights = weights * (target_mean * losses.size / max(weights.sum(), 1e-12))
        return weights

    # ------------------------------------------------------------------
    def fit(
        self,
        pairs: Sequence[EntityMentionPair],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train the bi-encoder with the denoising reweighting."""
        if not pairs:
            raise ValueError("cannot train on an empty pair list")
        epochs = self.config.epochs if epochs is None else epochs
        batch = encode_pair_batch(pairs, self.model.tokenizer, self.config.encoder.max_length)
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)

        self.model.train()
        try:
            for epoch in range(epochs):
                losses: List[float] = []
                for index_batch in batched_indices(len(batch), self.config.batch_size, rng):
                    if len(index_batch) < 2:
                        continue
                    mention_ids = batch.mention_ids[index_batch]
                    entity_ids = batch.entity_ids[index_batch]
                    per_example = self.model.batch_loss(mention_ids, entity_ids, reduction="none")
                    weights = self._denoising_weights(per_example.data)
                    loss = self.model.batch_loss(mention_ids, entity_ids, sample_weights=weights)
                    self.model.zero_grad()
                    loss.backward()
                    clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                    optimizer.step()
                    losses.append(loss.item())
                mean_loss = float(np.mean(losses)) if losses else float("nan")
                history.add("loss", mean_loss)
                _LOGGER.debug("dl4el epoch %d loss %.4f", epoch, mean_loss)
        finally:
            self.model.eval()
        return history
