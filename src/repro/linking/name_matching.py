"""Name Matching baseline (Riedel et al., 2010; Table V/VI first row).

A mention is linked to an entity whose title (optionally with its
disambiguation phrase stripped) matches the mention's surface form exactly.
Mentions without a match are left unlinked, which is why this baseline's
accuracy roughly equals the fraction of High Overlap / Multiple Categories
samples in the evaluation set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..kb.entity import Entity, Mention
from ..text.normalization import normalize_text, strip_disambiguation


class NameMatchingLinker:
    """Exact title lookup linker."""

    def __init__(self, entities: Sequence[Entity]) -> None:
        self._entities = list(entities)
        self._index: Dict[str, Entity] = {}
        for entity in self._entities:
            # First writer wins, mirroring the naive behaviour of the heuristic.
            for key in (normalize_text(entity.title), normalize_text(strip_disambiguation(entity.title))):
                if key and key not in self._index:
                    self._index[key] = entity

    def predict(self, mention: Mention) -> Optional[Entity]:
        """Return the matched entity or None when no title matches."""
        return self._index.get(normalize_text(mention.surface))

    def predict_batch(self, mentions: Sequence[Mention]) -> List[Optional[Entity]]:
        return [self.predict(mention) for mention in mentions]

    def accuracy(self, mentions: Sequence[Mention]) -> float:
        """Unnormalised accuracy over mentions with gold labels."""
        labelled = [mention for mention in mentions if mention.gold_entity_id is not None]
        if not labelled:
            return 0.0
        hits = 0
        for mention in labelled:
            predicted = self.predict(mention)
            if predicted is not None and predicted.entity_id == mention.gold_entity_id:
                hits += 1
        return hits / len(labelled)

    def coverage(self, mentions: Sequence[Mention]) -> float:
        """Fraction of mentions for which *any* entity is predicted."""
        if not mentions:
            return 0.0
        return sum(1 for mention in mentions if self.predict(mention) is not None) / len(mentions)
