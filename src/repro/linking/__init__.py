"""Entity-linking models: bi-encoder, cross-encoder, BLINK pipeline, baselines."""

from .biencoder import BiEncoder, BiEncoderTrainer
from .blink import BlinkPipeline, LinkingPrediction, TrainingReport
from .candidates import (
    EntityIndex,
    LRUEmbeddingCache,
    RetrievalResult,
    ShardedEntityIndex,
    blocked_topk,
    recall_at_k,
)
from .crossencoder import (
    CrossEncoder,
    CrossEncoderTrainer,
    RankingExample,
    build_ranking_examples,
)
from .dl4el import DL4ELTrainer
from .encoders import (
    PairBatch,
    encode_cross_inputs,
    encode_entity_inputs,
    encode_mention_inputs,
    encode_pair_batch,
    unique_entities,
)
from .name_matching import NameMatchingLinker

__all__ = [
    "BiEncoder",
    "BiEncoderTrainer",
    "CrossEncoder",
    "CrossEncoderTrainer",
    "RankingExample",
    "build_ranking_examples",
    "BlinkPipeline",
    "LinkingPrediction",
    "TrainingReport",
    "EntityIndex",
    "ShardedEntityIndex",
    "LRUEmbeddingCache",
    "RetrievalResult",
    "blocked_topk",
    "recall_at_k",
    "DL4ELTrainer",
    "NameMatchingLinker",
    "PairBatch",
    "encode_mention_inputs",
    "encode_entity_inputs",
    "encode_pair_batch",
    "encode_cross_inputs",
    "unique_entities",
]
