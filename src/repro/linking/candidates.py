"""Dense candidate-generation index over entity embeddings.

The bi-encoder embeds every entity of a domain once; mentions are then linked
by maximum inner product against this index (the paper's candidate generation
stage, evaluated with Recall@64).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kb.entity import Entity


@dataclass
class RetrievalResult:
    """Top-k candidates for one mention."""

    entity_ids: List[str]
    scores: List[float]

    def contains(self, entity_id: str) -> bool:
        return entity_id in self.entity_ids

    def rank_of(self, entity_id: str) -> Optional[int]:
        """0-based rank of ``entity_id`` among the candidates, or None."""
        try:
            return self.entity_ids.index(entity_id)
        except ValueError:
            return None


class EntityIndex:
    """In-memory maximum-inner-product index over entity vectors."""

    def __init__(self, entities: Sequence[Entity], vectors: np.ndarray) -> None:
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        if len(entities) == 0:
            raise ValueError("cannot build an index over zero entities")
        self._entities = list(entities)
        self._vectors = np.asarray(vectors, dtype=np.float64)
        self._id_to_position: Dict[str, int] = {
            entity.entity_id: position for position, entity in enumerate(self._entities)
        }

    def __len__(self) -> int:
        return len(self._entities)

    @property
    def dimension(self) -> int:
        return self._vectors.shape[1]

    def entities(self) -> List[Entity]:
        return list(self._entities)

    def entity(self, entity_id: str) -> Entity:
        return self._entities[self._id_to_position[entity_id]]

    def vector(self, entity_id: str) -> np.ndarray:
        return self._vectors[self._id_to_position[entity_id]]

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(self, query_vectors: np.ndarray, k: int) -> List[RetrievalResult]:
        """Top-k inner-product search for each query vector."""
        if k <= 0:
            raise ValueError("k must be positive")
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        scores = query_vectors @ self._vectors.T
        k = min(k, len(self._entities))
        top = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
        results: List[RetrievalResult] = []
        for row_scores, row_top in zip(scores, top):
            order = row_top[np.argsort(-row_scores[row_top])]
            results.append(
                RetrievalResult(
                    entity_ids=[self._entities[i].entity_id for i in order],
                    scores=[float(row_scores[i]) for i in order],
                )
            )
        return results

    def retrieve_entities(self, query_vectors: np.ndarray, k: int) -> List[List[Entity]]:
        """Like :meth:`search` but resolving candidates to Entity objects."""
        return [
            [self.entity(entity_id) for entity_id in result.entity_ids]
            for result in self.search(query_vectors, k)
        ]


def recall_at_k(results: Sequence[RetrievalResult], gold_ids: Sequence[str]) -> float:
    """Fraction of queries whose gold entity appears among the candidates."""
    if len(results) != len(gold_ids):
        raise ValueError("results and gold ids must align")
    if not results:
        return 0.0
    hits = sum(1 for result, gold in zip(results, gold_ids) if result.contains(gold))
    return hits / len(results)
