"""Dense candidate generation: blocked MIPS search and the sharded entity index.

The bi-encoder embeds every entity of a domain once; mentions are then linked
by maximum inner product against this index (the paper's candidate generation
stage, evaluated with Recall@64).  Two index flavours are provided:

:class:`EntityIndex`
    A flat in-memory index over one entity collection.  Search runs a blocked
    matrix multiply with :func:`numpy.argpartition` top-k selection so memory
    stays bounded for large entity sets.

:class:`ShardedEntityIndex`
    One shard per world (domain), the unit of scale in the Zeshel setting.
    Shards are built lazily from an ``embed_fn`` on first use, queries can be
    routed to a single world or fanned out and merged across all of them, and
    a small LRU cache keyed by entity id serves repeated single-entity
    embedding lookups without touching shard storage.

Usage::

    index = ShardedEntityIndex.from_entities(entities, embed_fn=model.embed_entities)
    results = index.search(query_vectors, k=64, worlds=["lego"])
    results[0].rank_of(gold_id)   # O(1) rank lookup

Tie-breaking is deterministic everywhere: candidates with equal scores are
ordered by their insertion position (and, across shards, by shard insertion
order first), so repeated searches always return identical rankings.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..kb.entity import Entity

#: Entities are scored ``block_size`` at a time so the score matrix for one
#: block stays small even for very large entity collections.
DEFAULT_BLOCK_SIZE = 2048

#: Default capacity of the per-index embedding LRU cache (entity-id keyed).
DEFAULT_CACHE_SIZE = 4096

#: On-disk snapshot format version written by :meth:`ShardedEntityIndex.save`.
SNAPSHOT_FORMAT_VERSION = 1

#: File names inside a snapshot directory.
SNAPSHOT_MANIFEST = "index.json"
SNAPSHOT_VECTORS = "vectors.npz"

EmbedFn = Callable[[Sequence[Entity]], np.ndarray]


@dataclass
class RetrievalResult:
    """Top-k candidates for one mention, ranked by decreasing score.

    ``contains`` and ``rank_of`` are O(1): a rank dictionary is built once at
    construction time (the Recall@64 evaluation loops call them per mention).
    Treat ``entity_ids`` as immutable after construction — the rank map is not
    rebuilt on mutation.
    """

    entity_ids: List[str]
    scores: List[float]
    _rank_by_id: Dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ranks: Dict[str, int] = {}
        for rank, entity_id in enumerate(self.entity_ids):
            ranks.setdefault(entity_id, rank)
        self._rank_by_id = ranks

    def __len__(self) -> int:
        return len(self.entity_ids)

    def contains(self, entity_id: str) -> bool:
        """O(1) membership test among the retrieved candidates."""
        return entity_id in self._rank_by_id

    def rank_of(self, entity_id: str) -> Optional[int]:
        """0-based rank of ``entity_id`` among the candidates, or None."""
        return self._rank_by_id.get(entity_id)

    @property
    def top_id(self) -> Optional[str]:
        """Best-scoring candidate id (None for an empty result)."""
        return self.entity_ids[0] if self.entity_ids else None


class LRUEmbeddingCache:
    """Least-recently-used cache for entity embeddings, keyed by entity id.

    A plain ``OrderedDict`` LRU: hits refresh recency, inserts beyond
    ``capacity`` evict the stalest entry.  Hit/miss counters are exposed for
    observability (`hits`, `misses`) so serving dashboards can track cache
    effectiveness.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[str, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._store

    def get(self, entity_id: str) -> Optional[np.ndarray]:
        vector = self._store.get(entity_id)
        if vector is None:
            self.misses += 1
            return None
        self._store.move_to_end(entity_id)
        self.hits += 1
        return vector

    def put(self, entity_id: str, vector: np.ndarray) -> None:
        if self.capacity == 0:
            return
        if entity_id in self._store:
            self._store.move_to_end(entity_id)
        self._store[entity_id] = vector
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


def _sorted_topk(
    scores: np.ndarray, positions: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep the best ``k`` columns per row under (score desc, position asc)."""
    order = np.lexsort((positions, -scores), axis=1)[:, :k]
    return (
        np.take_along_axis(scores, order, axis=1),
        np.take_along_axis(positions, order, axis=1),
    )


def blocked_topk(
    query_vectors: np.ndarray,
    entity_vectors: np.ndarray,
    k: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked maximum-inner-product top-k over ``entity_vectors``.

    Scores are computed ``block_size`` entities at a time; a running candidate
    buffer per query is compacted to the best ``k`` columns under the total
    order (score desc, position asc), so peak memory is
    ``O(num_queries * (block_size + 4k))`` instead of
    ``O(num_queries * num_entities)``.  Because retention always uses that
    total order, streaming compaction is exact: the result equals the top-k
    of the full score matrix.

    Returns ``(scores, positions)`` arrays of shape ``(num_queries, k)`` with
    each row sorted by decreasing score; ties are broken by ascending entity
    position, deterministically.
    """
    num_entities = len(entity_vectors)
    k = min(k, num_entities)
    if k <= 0:
        empty = np.zeros((len(query_vectors), 0))
        return empty, empty.astype(np.int64)

    buffer_scores: Optional[np.ndarray] = None
    buffer_positions: Optional[np.ndarray] = None
    compact_width = max(4 * k, 256)

    for start in range(0, num_entities, block_size):
        block = entity_vectors[start:start + block_size]
        scores = query_vectors @ block.T
        positions = np.broadcast_to(
            np.arange(start, start + block.shape[0], dtype=np.int64), scores.shape
        )
        if buffer_scores is None:
            buffer_scores, buffer_positions = scores, np.ascontiguousarray(positions)
        else:
            buffer_scores = np.concatenate([buffer_scores, scores], axis=1)
            buffer_positions = np.concatenate([buffer_positions, positions], axis=1)
        if buffer_scores.shape[1] > compact_width:
            buffer_scores, buffer_positions = _sorted_topk(buffer_scores, buffer_positions, k)

    assert buffer_scores is not None and buffer_positions is not None
    return _sorted_topk(buffer_scores, buffer_positions, k)


class EntityIndex:
    """Flat in-memory maximum-inner-product index over entity vectors.

    Search uses :func:`blocked_topk`, so the full ``queries x entities`` score
    matrix is never materialised.  This class is also the storage unit of one
    :class:`ShardedEntityIndex` shard.
    """

    def __init__(
        self,
        entities: Sequence[Entity],
        vectors: np.ndarray,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        if len(entities) == 0:
            raise ValueError("cannot build an index over zero entities")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._entities = list(entities)
        self._vectors = np.asarray(vectors, dtype=np.float64)
        self._block_size = block_size
        self._id_to_position: Dict[str, int] = {
            entity.entity_id: position for position, entity in enumerate(self._entities)
        }

    def __len__(self) -> int:
        return len(self._entities)

    @property
    def dimension(self) -> int:
        return self._vectors.shape[1]

    @property
    def vectors(self) -> np.ndarray:
        """The raw ``(num_entities, dim)`` embedding matrix (do not mutate)."""
        return self._vectors

    def entities(self) -> List[Entity]:
        return list(self._entities)

    def entity(self, entity_id: str) -> Entity:
        return self._entities[self._id_to_position[entity_id]]

    def vector(self, entity_id: str) -> np.ndarray:
        return self._vectors[self._id_to_position[entity_id]]

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._id_to_position

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search_arrays(self, query_vectors: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ``(scores, positions)`` arrays for each query vector."""
        if k <= 0:
            raise ValueError("k must be positive")
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        return blocked_topk(query_vectors, self._vectors, k, block_size=self._block_size)

    def search(self, query_vectors: np.ndarray, k: int) -> List[RetrievalResult]:
        """Top-k inner-product search for each query vector.

        ``k`` is clamped to the number of indexed entities; rows are sorted by
        decreasing score with deterministic position tie-breaking.
        """
        scores, positions = self.search_arrays(query_vectors, k)
        results: List[RetrievalResult] = []
        for row_scores, row_positions in zip(scores, positions):
            results.append(
                RetrievalResult(
                    entity_ids=[self._entities[i].entity_id for i in row_positions],
                    scores=[float(score) for score in row_scores],
                )
            )
        return results

    def retrieve_entities(self, query_vectors: np.ndarray, k: int) -> List[List[Entity]]:
        """Like :meth:`search` but resolving candidates to Entity objects."""
        return [
            [self.entity(entity_id) for entity_id in result.entity_ids]
            for result in self.search(query_vectors, k)
        ]


class ShardedEntityIndex:
    """Per-world sharded MIPS index with lazy shard builds and an LRU cache.

    Each world (domain) owns one shard.  Shard vectors are either supplied
    up-front or embedded lazily via ``embed_fn`` the first time the shard is
    searched — building a 16-world index therefore costs nothing until traffic
    actually hits a world.  Empty shards are legal and simply contribute no
    candidates.

    Example::

        index = ShardedEntityIndex.from_entities(entities, embed_fn=model.embed_entities)
        index.search(queries, k=64)                      # fan out + merge
        index.search(queries, k=64, worlds=["lego"])     # routed to one world
        index.vector("lego:7")                           # LRU-cached lookup
    """

    def __init__(
        self,
        embed_fn: Optional[EmbedFn] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self._embed_fn = embed_fn
        self._block_size = block_size
        self._shard_entities: "OrderedDict[str, List[Entity]]" = OrderedDict()
        self._shard_vectors: Dict[str, Optional[np.ndarray]] = {}
        self._shards: Dict[str, Optional[EntityIndex]] = {}
        self._entity_world: Dict[str, str] = {}
        self.embedding_cache = LRUEmbeddingCache(cache_size)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_entities(
        cls,
        entities: Iterable[Entity],
        embed_fn: Optional[EmbedFn] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> "ShardedEntityIndex":
        """Group ``entities`` by their ``domain`` attribute, one shard each."""
        index = cls(embed_fn=embed_fn, block_size=block_size, cache_size=cache_size)
        grouped: "OrderedDict[str, List[Entity]]" = OrderedDict()
        for entity in entities:
            grouped.setdefault(entity.domain, []).append(entity)
        for world, members in grouped.items():
            index.add_shard(world, members)
        return index

    def add_shard(
        self,
        world: str,
        entities: Sequence[Entity],
        vectors: Optional[np.ndarray] = None,
    ) -> None:
        """Register a shard; ``vectors=None`` defers embedding to first use."""
        if world in self._shard_entities:
            raise ValueError(f"shard {world!r} already exists")
        if vectors is not None and len(vectors) != len(entities):
            raise ValueError("entities and vectors must align")
        members = list(entities)
        self._shard_entities[world] = members
        self._shard_vectors[world] = None if vectors is None else np.asarray(vectors, dtype=np.float64)
        for entity in members:
            self._entity_world[entity.entity_id] = world
        self._shards.pop(world, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(members) for members in self._shard_entities.values())

    def worlds(self) -> List[str]:
        """Shard names in insertion order."""
        return list(self._shard_entities)

    @property
    def num_shards(self) -> int:
        return len(self._shard_entities)

    def is_materialized(self, world: str) -> bool:
        """Whether a shard's vectors have been built (lazy shards start cold)."""
        return self._shards.get(world) is not None or self._shard_vectors.get(world) is not None

    def shard(self, world: str) -> Optional[EntityIndex]:
        """The (materialised) :class:`EntityIndex` of one world; None if empty."""
        if world not in self._shard_entities:
            raise KeyError(f"unknown world {world!r}")
        if world not in self._shards:
            self._shards[world] = self._build_shard(world)
        return self._shards[world]

    def _build_shard(self, world: str) -> Optional[EntityIndex]:
        members = self._shard_entities[world]
        if not members:
            return None
        vectors = self._shard_vectors[world]
        if vectors is None:
            if self._embed_fn is None:
                raise ValueError(
                    f"shard {world!r} has no vectors and the index has no embed_fn"
                )
            vectors = np.asarray(self._embed_fn(members), dtype=np.float64)
            if len(vectors) != len(members):
                raise ValueError("embed_fn returned a misaligned vector matrix")
            self._shard_vectors[world] = vectors
        return EntityIndex(members, vectors, block_size=self._block_size)

    # ------------------------------------------------------------------
    # Entity / vector lookup
    # ------------------------------------------------------------------
    def entity(self, entity_id: str) -> Entity:
        world = self._entity_world[entity_id]
        shard = self.shard(world)
        assert shard is not None  # entity_id implies a non-empty shard
        return shard.entity(entity_id)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entity_world

    def vector(self, entity_id: str) -> np.ndarray:
        """Embedding of one entity, served through the LRU cache."""
        cached = self.embedding_cache.get(entity_id)
        if cached is not None:
            return cached
        world = self._entity_world[entity_id]
        shard = self.shard(world)
        assert shard is not None
        vector = shard.vector(entity_id)
        self.embedding_cache.put(entity_id, vector)
        return vector

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Snapshot the index to a directory; returns the directory path.

        The snapshot holds a JSON manifest (shard order, entity metadata,
        block size, cache capacity) plus one ``npz`` array per *materialised*
        shard.  Saving never materialises anything: cold (lazy) shards are
        recorded without vectors and stay cold after :meth:`load`, so a
        restored index re-embeds exactly the worlds the original would have.
        Vectors are stored as float64 without re-encoding, so restored
        rankings are bit-identical to the pre-save index.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        shards = []
        arrays: Dict[str, np.ndarray] = {}
        for position, (world, members) in enumerate(self._shard_entities.items()):
            vectors = self._shard_vectors.get(world)
            shards.append(
                {
                    "world": world,
                    "materialized": vectors is not None,
                    "entities": [entity.to_dict() for entity in members],
                }
            )
            if vectors is not None:
                arrays[f"shard_{position}"] = vectors
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "block_size": self._block_size,
            "cache_size": self.embedding_cache.capacity,
            "shards": shards,
        }
        # Write-then-rename so a crash mid-save never leaves a truncated
        # file; vectors land before the manifest, which acts as the commit
        # marker a reader looks at first.
        vectors_tmp = path / (SNAPSHOT_VECTORS + ".tmp")
        with open(vectors_tmp, "wb") as handle:
            np.savez(handle, **arrays)
        vectors_tmp.replace(path / SNAPSHOT_VECTORS)
        manifest_tmp = path / (SNAPSHOT_MANIFEST + ".tmp")
        manifest_tmp.write_text(json.dumps(manifest, indent=1))
        manifest_tmp.replace(path / SNAPSHOT_MANIFEST)
        return path

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        embed_fn: Optional[EmbedFn] = None,
        block_size: Optional[int] = None,
        cache_size: Optional[int] = None,
    ) -> "ShardedEntityIndex":
        """Restore an index saved with :meth:`save`.

        Shard insertion order, materialised vectors and cold-shard status all
        round-trip exactly, so ``load(path).search(q, k)`` ranks identically
        to the pre-save index.  ``embed_fn`` re-attaches the embedding
        function (snapshots cannot serialise callables); it is only required
        once a still-cold shard is first searched.  ``block_size`` /
        ``cache_size`` override the persisted values when given.
        """
        path = Path(path)
        manifest = json.loads((path / SNAPSHOT_MANIFEST).read_text())
        version = manifest.get("format_version")
        if version != SNAPSHOT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported snapshot format version {version!r} "
                f"(expected {SNAPSHOT_FORMAT_VERSION})"
            )
        index = cls(
            embed_fn=embed_fn,
            block_size=manifest["block_size"] if block_size is None else block_size,
            cache_size=manifest["cache_size"] if cache_size is None else cache_size,
        )
        with np.load(path / SNAPSHOT_VECTORS) as arrays:
            for position, shard in enumerate(manifest["shards"]):
                entities = [Entity.from_dict(payload) for payload in shard["entities"]]
                vectors = arrays[f"shard_{position}"] if shard["materialized"] else None
                index.add_shard(shard["world"], entities, vectors)
        return index

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        query_vectors: np.ndarray,
        k: int,
        worlds: Optional[Sequence[str]] = None,
    ) -> List[RetrievalResult]:
        """Top-k search, fanned out over ``worlds`` (default: all shards).

        Per-shard rankings are merged by decreasing score; ties are broken by
        shard insertion order, then entity position, so merged rankings are
        deterministic.  Empty shards contribute nothing; if every selected
        shard is empty the results are empty (never an error).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        num_queries = len(query_vectors)
        selected = [world for world in self._select_worlds(worlds) if self.shard(world) is not None]
        if not selected:
            return [RetrievalResult([], []) for _ in range(num_queries)]
        if len(selected) == 1:
            shard = self.shard(selected[0])
            assert shard is not None
            return shard.search(query_vectors, k)

        # Fan-out: per-shard blocked top-k, then one vectorized merge.  The
        # lexsort keys encode the deterministic ordering (score desc, shard
        # insertion order, entity position).
        score_blocks: List[np.ndarray] = []
        position_blocks: List[np.ndarray] = []
        shard_blocks: List[np.ndarray] = []
        for shard_order, world in enumerate(selected):
            shard = self.shard(world)
            assert shard is not None
            scores, positions = shard.search_arrays(query_vectors, k)
            score_blocks.append(scores)
            position_blocks.append(positions)
            shard_blocks.append(np.full(positions.shape, shard_order, dtype=np.int64))

        scores = np.concatenate(score_blocks, axis=1)
        positions = np.concatenate(position_blocks, axis=1)
        shard_orders = np.concatenate(shard_blocks, axis=1)
        order = np.lexsort((positions, shard_orders, -scores), axis=1)[:, :k]
        top_scores = np.take_along_axis(scores, order, axis=1)
        top_positions = np.take_along_axis(positions, order, axis=1)
        top_shards = np.take_along_axis(shard_orders, order, axis=1)

        shard_entities = [self._shard_entities[world] for world in selected]
        results: List[RetrievalResult] = []
        for query_index in range(num_queries):
            results.append(
                RetrievalResult(
                    entity_ids=[
                        shard_entities[shard_index][position].entity_id
                        for shard_index, position in zip(
                            top_shards[query_index], top_positions[query_index]
                        )
                    ],
                    scores=[float(score) for score in top_scores[query_index]],
                )
            )
        return results

    def search_routed(
        self,
        query_vectors: np.ndarray,
        k: int,
        routes: Sequence[Optional[str]],
    ) -> List[RetrievalResult]:
        """Per-query world routing: query ``i`` searches shard ``routes[i]``.

        A route of ``None`` — or naming a world this index does not hold —
        falls back to a fan-out search over all shards.  Queries sharing a
        route are batched into one shard search, so the common serving case
        (a batch of mentions from one world) stays a single blocked matmul.
        """
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        if len(routes) != len(query_vectors):
            raise ValueError("routes and query vectors must align")

        grouped: "OrderedDict[Optional[str], List[int]]" = OrderedDict()
        for index, route in enumerate(routes):
            key = route if route in self._shard_entities else None
            grouped.setdefault(key, []).append(index)

        # One placeholder instance per query — a single shared RetrievalResult
        # replicated n times would alias every unfilled slot to one object.
        results: List[RetrievalResult] = [
            RetrievalResult([], []) for _ in range(len(query_vectors))
        ]
        for route, indices in grouped.items():
            worlds = None if route is None else [route]
            group_results = self.search(query_vectors[indices], k, worlds=worlds)
            for index, result in zip(indices, group_results):
                results[index] = result
        return results

    def retrieve_entities(
        self,
        query_vectors: np.ndarray,
        k: int,
        worlds: Optional[Sequence[str]] = None,
    ) -> List[List[Entity]]:
        """Like :meth:`search` but resolving candidates to Entity objects."""
        return [
            [self.entity(entity_id) for entity_id in result.entity_ids]
            for result in self.search(query_vectors, k, worlds=worlds)
        ]

    def _select_worlds(self, worlds: Optional[Sequence[str]]) -> List[str]:
        if worlds is None:
            return self.worlds()
        unknown = [world for world in worlds if world not in self._shard_entities]
        if unknown:
            raise KeyError(f"unknown worlds: {unknown}")
        return list(worlds)


def recall_at_k(results: Sequence[RetrievalResult], gold_ids: Sequence[str]) -> float:
    """Fraction of queries whose gold entity appears among the candidates."""
    if len(results) != len(gold_ids):
        raise ValueError("results and gold ids must align")
    if not results:
        return 0.0
    hits = sum(1 for result, gold in zip(results, gold_ids) if result.contains(gold))
    return hits / len(results)
