"""Dense candidate generation: blocked MIPS search and the sharded entity index.

The bi-encoder embeds every entity of a domain once; mentions are then linked
by maximum inner product against this index (the paper's candidate generation
stage, evaluated with Recall@64).  Two index flavours are provided:

:class:`EntityIndex`
    A flat in-memory index over one entity collection.  Search runs a blocked
    matrix multiply with :func:`numpy.argpartition` top-k selection so memory
    stays bounded for large entity sets.  This is the *exact reference*
    implementation every approximate backend is measured against.

:class:`ShardedEntityIndex`
    One shard per world (domain), the unit of scale in the Zeshel setting.
    Shards are built lazily from an ``embed_fn`` on first use, queries can be
    routed to a single world or fanned out and merged across all of them, and
    a small LRU cache keyed by entity id serves repeated single-entity
    embedding lookups without touching shard storage.  A pluggable *backend*
    (see :mod:`repro.index.backend`) decides what a materialised shard is:
    the exact :class:`EntityIndex` (default), or the approximate
    :class:`~repro.index.ivf.IVFShard`.

Usage::

    index = ShardedEntityIndex.from_entities(entities, embed_fn=model.embed_entities)
    results = index.search(query_vectors, k=64, worlds=["lego"])
    results[0].rank_of(gold_id)   # O(1) rank lookup

Tie-breaking is deterministic everywhere: candidates with equal scores are
ordered by their insertion position (and, across shards, by shard insertion
order first), so repeated searches always return identical rankings.

Snapshots are versioned.  Version 1 (the PR 2 format) stored one
``vectors.npz``; version 2 stores one raw ``.npy`` per array under
``arrays/`` so :meth:`ShardedEntityIndex.load` can open every shard with
``mmap_mode="r"`` — forked serving replicas then share the snapshot's pages
instead of each copying the float64 matrices.  Version-1 snapshots still
load; version 2 additionally persists quantized codecs and IVF shard state
(see :mod:`repro.index`).
"""

from __future__ import annotations

import json
import shutil
import uuid
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..kb.entity import Entity

#: Entities are scored ``block_size`` at a time so the score matrix for one
#: block stays small even for very large entity collections.
DEFAULT_BLOCK_SIZE = 2048

#: Default capacity of the per-index embedding LRU cache (entity-id keyed).
DEFAULT_CACHE_SIZE = 4096

#: On-disk snapshot format version written by :meth:`ShardedEntityIndex.save`.
SNAPSHOT_FORMAT_VERSION = 2

#: File names inside a snapshot directory.  ``SNAPSHOT_VECTORS`` is the
#: version-1 npz (still readable); version 2 writes ``SNAPSHOT_ARRAYS``.
SNAPSHOT_MANIFEST = "index.json"
SNAPSHOT_VECTORS = "vectors.npz"
SNAPSHOT_ARRAYS = "arrays"

#: In-place re-save parks the committed arrays directory here until the new
#: manifest is committed; a crash between the renames leaves it recoverable.
SNAPSHOT_ARRAYS_OLD = "arrays.old"

#: Marker file inside an arrays directory echoing the manifest's
#: ``arrays_token`` — :meth:`ShardedEntityIndex.load` uses it to pick the
#: arrays directory that matches the committed manifest after a crashed
#: re-save.
SNAPSHOT_ARRAYS_TOKEN = "TOKEN"

#: Generation-store pointer file (see :mod:`repro.index.snapshot`); when a
#: load path contains one, the load resolves it to the current generation.
SNAPSHOT_CURRENT = "CURRENT"

EmbedFn = Callable[[Sequence[Entity]], np.ndarray]


def _is_storage(vectors: Any) -> bool:
    """Duck-typed check for a :class:`repro.index.codecs.VectorStorage`.

    candidates.py cannot import :mod:`repro.index` at module level (that
    package imports this one), so the storage protocol is recognised
    structurally.
    """
    return hasattr(vectors, "to_dense") and hasattr(vectors, "take")


@dataclass
class RetrievalResult:
    """Top-k candidates for one mention, ranked by decreasing score.

    ``contains`` and ``rank_of`` are O(1): a rank dictionary is built once at
    construction time (the Recall@64 evaluation loops call them per mention).
    Treat ``entity_ids`` as immutable after construction — the rank map is not
    rebuilt on mutation.
    """

    entity_ids: List[str]
    scores: List[float]
    _rank_by_id: Dict[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ranks: Dict[str, int] = {}
        for rank, entity_id in enumerate(self.entity_ids):
            ranks.setdefault(entity_id, rank)
        self._rank_by_id = ranks

    def __len__(self) -> int:
        return len(self.entity_ids)

    def contains(self, entity_id: str) -> bool:
        """O(1) membership test among the retrieved candidates."""
        return entity_id in self._rank_by_id

    def rank_of(self, entity_id: str) -> Optional[int]:
        """0-based rank of ``entity_id`` among the candidates, or None."""
        return self._rank_by_id.get(entity_id)

    @property
    def top_id(self) -> Optional[str]:
        """Best-scoring candidate id (None for an empty result)."""
        return self.entity_ids[0] if self.entity_ids else None


class LRUEmbeddingCache:
    """Least-recently-used cache for entity embeddings, keyed by entity id.

    A plain ``OrderedDict`` LRU: hits refresh recency, inserts beyond
    ``capacity`` evict the stalest entry.  Hit/miss counters are exposed for
    observability (`hits`, `misses`) so serving dashboards can track cache
    effectiveness.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_SIZE) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[str, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._store

    def get(self, entity_id: str) -> Optional[np.ndarray]:
        vector = self._store.get(entity_id)
        if vector is None:
            self.misses += 1
            return None
        self._store.move_to_end(entity_id)
        self.hits += 1
        return vector

    def put(self, entity_id: str, vector: np.ndarray) -> None:
        if self.capacity == 0:
            return
        if entity_id in self._store:
            self._store.move_to_end(entity_id)
        self._store[entity_id] = vector
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def invalidate(self, entity_ids: Iterable[str]) -> None:
        """Drop cached embeddings for the given ids (after update/remove)."""
        for entity_id in entity_ids:
            self._store.pop(entity_id, None)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0


def _sorted_topk(
    scores: np.ndarray, positions: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep the best ``k`` columns per row under (score desc, position asc)."""
    order = np.lexsort((positions, -scores), axis=1)[:, :k]
    return (
        np.take_along_axis(scores, order, axis=1),
        np.take_along_axis(positions, order, axis=1),
    )


def blocked_topk(
    query_vectors: np.ndarray,
    entity_vectors: np.ndarray,
    k: int,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Blocked maximum-inner-product top-k over ``entity_vectors``.

    Scores are computed ``block_size`` entities at a time; a running candidate
    buffer per query is compacted to the best ``k`` columns under the total
    order (score desc, position asc), so peak memory is
    ``O(num_queries * (block_size + 4k))`` instead of
    ``O(num_queries * num_entities)``.  Because retention always uses that
    total order, streaming compaction is exact: the result equals the top-k
    of the full score matrix.

    Returns ``(scores, positions)`` arrays of shape ``(num_queries, k)`` with
    each row sorted by decreasing score; ties are broken by ascending entity
    position, deterministically.
    """
    num_entities = len(entity_vectors)
    k = min(k, num_entities)
    if k <= 0:
        empty = np.zeros((len(query_vectors), 0))
        return empty, empty.astype(np.int64)

    buffer_scores: Optional[np.ndarray] = None
    buffer_positions: Optional[np.ndarray] = None
    compact_width = max(4 * k, 256)

    for start in range(0, num_entities, block_size):
        block = entity_vectors[start:start + block_size]
        scores = query_vectors @ block.T
        positions = np.broadcast_to(
            np.arange(start, start + block.shape[0], dtype=np.int64), scores.shape
        )
        if buffer_scores is None:
            buffer_scores, buffer_positions = scores, np.ascontiguousarray(positions)
        else:
            buffer_scores = np.concatenate([buffer_scores, scores], axis=1)
            buffer_positions = np.concatenate([buffer_positions, positions], axis=1)
        if buffer_scores.shape[1] > compact_width:
            buffer_scores, buffer_positions = _sorted_topk(buffer_scores, buffer_positions, k)

    assert buffer_scores is not None and buffer_positions is not None
    return _sorted_topk(buffer_scores, buffer_positions, k)


class EntityIndex:
    """Flat in-memory maximum-inner-product index over entity vectors.

    Search uses :func:`blocked_topk`, so the full ``queries x entities`` score
    matrix is never materialised.  This class is also the storage unit of one
    :class:`ShardedEntityIndex` shard.
    """

    def __init__(
        self,
        entities: Sequence[Entity],
        vectors: np.ndarray,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        if len(entities) == 0:
            raise ValueError("cannot build an index over zero entities")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self._entities = list(entities)
        self._vectors = np.asarray(vectors, dtype=np.float64)
        self._block_size = block_size
        self._id_to_position: Dict[str, int] = {
            entity.entity_id: position for position, entity in enumerate(self._entities)
        }

    def __len__(self) -> int:
        return len(self._entities)

    @property
    def dimension(self) -> int:
        return self._vectors.shape[1]

    @property
    def vectors(self) -> np.ndarray:
        """The raw ``(num_entities, dim)`` embedding matrix (do not mutate)."""
        return self._vectors

    def entities(self) -> List[Entity]:
        return list(self._entities)

    def entity(self, entity_id: str) -> Entity:
        return self._entities[self._id_to_position[entity_id]]

    def entity_id_at(self, position: int) -> str:
        """Entity id at a search-result position (the merge-path lookup)."""
        return self._entities[position].entity_id

    def vector(self, entity_id: str) -> np.ndarray:
        return self._vectors[self._id_to_position[entity_id]]

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._id_to_position

    def stats(self) -> Dict[str, object]:
        """Shard descriptor mirroring :meth:`IVFShard.stats` (exact flavour)."""
        return {
            "backend": "exact",
            "codec": "float64",
            "entities": len(self._entities),
            "storage_bytes": int(self._vectors.nbytes),
        }

    # ------------------------------------------------------------------
    # Mutation (exact reference semantics: rebuild, never approximate)
    # ------------------------------------------------------------------
    def add(self, entities: Sequence[Entity], vectors: np.ndarray) -> None:
        """Append entities; duplicates are an error (use :meth:`update`)."""
        entities = list(entities)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        if not entities:
            return
        for entity in entities:
            if entity.entity_id in self._id_to_position:
                raise ValueError(
                    f"entity {entity.entity_id!r} already indexed; use update()"
                )
        base = len(self._entities)
        self._vectors = np.concatenate([self._vectors, vectors], axis=0)
        self._entities.extend(entities)
        for offset, entity in enumerate(entities):
            self._id_to_position[entity.entity_id] = base + offset

    def remove(self, entity_ids: Sequence[str]) -> None:
        """Drop entities and their rows; later positions shift down.

        Exact semantics: the index is rebuilt without the removed rows, so
        search never sees a tombstone.  Removing every entity leaves a
        legal empty index (searches return empty results).
        """
        ids = set(entity_ids)
        unknown = [entity_id for entity_id in ids if entity_id not in self._id_to_position]
        if unknown:
            raise KeyError(f"unknown entities: {sorted(unknown)}")
        keep = [
            position
            for position, entity in enumerate(self._entities)
            if entity.entity_id not in ids
        ]
        self._entities = [self._entities[position] for position in keep]
        self._vectors = self._vectors[keep]
        self._id_to_position = {
            entity.entity_id: position for position, entity in enumerate(self._entities)
        }

    def update(self, entities: Sequence[Entity], vectors: np.ndarray) -> None:
        """Replace entities in place (same id, new metadata/embedding)."""
        entities = list(entities)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        missing = [
            entity.entity_id
            for entity in entities
            if entity.entity_id not in self._id_to_position
        ]
        if missing:
            raise KeyError(f"unknown entities: {missing}")
        if not self._vectors.flags.writeable:
            # Memory-mapped snapshots are opened read-only; in-place update
            # materialises a private copy first.
            self._vectors = np.array(self._vectors)
        for entity, vector in zip(entities, vectors):
            position = self._id_to_position[entity.entity_id]
            self._entities[position] = entity
            self._vectors[position] = vector

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search_arrays(self, query_vectors: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ``(scores, positions)`` arrays for each query vector."""
        if k <= 0:
            raise ValueError("k must be positive")
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        return blocked_topk(query_vectors, self._vectors, k, block_size=self._block_size)

    def search_arrays_with_ids(
        self, query_vectors: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`search_arrays` plus per-slot entity ids.

        The third array is object-dtype, shaped like ``positions``, holding
        entity id strings (``None`` in padding slots).  The sharded fan-out
        merge consumes this instead of post-hoc :meth:`entity_id_at` lookups
        so ids always match the rows that were scored — on approximate
        shards (:class:`~repro.index.ivf.IVFShard`) the equivalent method is
        atomic against one state snapshot.
        """
        entities = self._entities
        scores, positions = self.search_arrays(query_vectors, k)
        flat_positions = positions.ravel()
        flat_ids = np.empty(flat_positions.shape, dtype=object)
        for i in np.flatnonzero(flat_positions >= 0):
            flat_ids[i] = entities[int(flat_positions[i])].entity_id
        return scores, positions, flat_ids.reshape(positions.shape)

    def search(self, query_vectors: np.ndarray, k: int) -> List[RetrievalResult]:
        """Top-k inner-product search for each query vector.

        ``k`` is clamped to the number of indexed entities; rows are sorted by
        decreasing score with deterministic position tie-breaking.
        """
        scores, positions = self.search_arrays(query_vectors, k)
        results: List[RetrievalResult] = []
        for row_scores, row_positions in zip(scores, positions):
            results.append(
                RetrievalResult(
                    entity_ids=[self._entities[i].entity_id for i in row_positions],
                    scores=[float(score) for score in row_scores],
                )
            )
        return results

    def retrieve_entities(self, query_vectors: np.ndarray, k: int) -> List[List[Entity]]:
        """Like :meth:`search` but resolving candidates to Entity objects."""
        return [
            [self.entity(entity_id) for entity_id in result.entity_ids]
            for result in self.search(query_vectors, k)
        ]


class ShardedEntityIndex:
    """Per-world sharded MIPS index with lazy shard builds and an LRU cache.

    Each world (domain) owns one shard.  Shard vectors are either supplied
    up-front or embedded lazily via ``embed_fn`` the first time the shard is
    searched — building a 16-world index therefore costs nothing until traffic
    actually hits a world.  Empty shards are legal and simply contribute no
    candidates.

    Example::

        index = ShardedEntityIndex.from_entities(entities, embed_fn=model.embed_entities)
        index.search(queries, k=64)                      # fan out + merge
        index.search(queries, k=64, worlds=["lego"])     # routed to one world
        index.vector("lego:7")                           # LRU-cached lookup
    """

    def __init__(
        self,
        embed_fn: Optional[EmbedFn] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional[Any] = None,
    ) -> None:
        self._embed_fn = embed_fn
        self._block_size = block_size
        self._backend = backend
        self._shard_entities: "OrderedDict[str, List[Entity]]" = OrderedDict()
        self._shard_vectors: Dict[str, Optional[Any]] = {}
        self._shards: Dict[str, Optional[Any]] = {}
        self._entity_world: Dict[str, str] = {}
        self.embedding_cache = LRUEmbeddingCache(cache_size)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_entities(
        cls,
        entities: Iterable[Entity],
        embed_fn: Optional[EmbedFn] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional[Any] = None,
    ) -> "ShardedEntityIndex":
        """Group ``entities`` by their ``domain`` attribute, one shard each."""
        index = cls(
            embed_fn=embed_fn,
            block_size=block_size,
            cache_size=cache_size,
            backend=backend,
        )
        grouped: "OrderedDict[str, List[Entity]]" = OrderedDict()
        for entity in entities:
            grouped.setdefault(entity.domain, []).append(entity)
        for world, members in grouped.items():
            index.add_shard(world, members)
        return index

    def add_shard(
        self,
        world: str,
        entities: Sequence[Entity],
        vectors: Optional[Any] = None,
    ) -> None:
        """Register a shard; ``vectors=None`` defers embedding to first use.

        ``vectors`` may be a dense float64 matrix or a
        :class:`~repro.index.codecs.VectorStorage` (e.g. loaded from a
        quantized, memory-mapped snapshot) — storages are handed to the
        backend as-is so decoding stays lazy.
        """
        if world in self._shard_entities:
            raise ValueError(f"shard {world!r} already exists")
        if vectors is not None and len(vectors) != len(entities):
            raise ValueError("entities and vectors must align")
        members = list(entities)
        self._shard_entities[world] = members
        if vectors is None or _is_storage(vectors):
            self._shard_vectors[world] = vectors
        else:
            self._shard_vectors[world] = np.asarray(vectors, dtype=np.float64)
        for entity in members:
            self._entity_world[entity.entity_id] = world
        self._shards.pop(world, None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        total = 0
        for world, members in self._shard_entities.items():
            shard = self._shards.get(world)
            total += len(shard) if shard is not None else len(members)
        return total

    def worlds(self) -> List[str]:
        """Shard names in insertion order."""
        return list(self._shard_entities)

    @property
    def num_shards(self) -> int:
        return len(self._shard_entities)

    @property
    def backend(self) -> Optional[Any]:
        """The shard backend (None means the exact default)."""
        return self._backend

    def is_materialized(self, world: str) -> bool:
        """Whether a shard's vectors have been built (lazy shards start cold)."""
        return self._shards.get(world) is not None or self._shard_vectors.get(world) is not None

    def shard(self, world: str) -> Optional[Any]:
        """The materialised shard index of one world; None if empty.

        The concrete type is whatever the backend builds: the exact
        :class:`EntityIndex` by default, an
        :class:`~repro.index.ivf.IVFShard` under
        :class:`~repro.index.backend.IVFBackend`.
        """
        if world not in self._shard_entities:
            raise KeyError(f"unknown world {world!r}")
        if world not in self._shards:
            self._shards[world] = self._build_shard(world)
        return self._shards[world]

    def _build_shard(self, world: str) -> Optional[Any]:
        members = self._shard_entities[world]
        if not members:
            return None
        vectors = self._shard_vectors[world]
        if vectors is None:
            if self._embed_fn is None:
                raise ValueError(
                    f"shard {world!r} has no vectors and the index has no embed_fn"
                )
            vectors = np.asarray(self._embed_fn(members), dtype=np.float64)
            if len(vectors) != len(members):
                raise ValueError("embed_fn returned a misaligned vector matrix")
            self._shard_vectors[world] = vectors
        if self._backend is not None:
            return self._backend.build(members, vectors, self._block_size)
        if _is_storage(vectors):
            vectors = vectors.to_dense()
        return EntityIndex(members, vectors, block_size=self._block_size)

    # ------------------------------------------------------------------
    # Entity / vector lookup
    # ------------------------------------------------------------------
    def entity(self, entity_id: str) -> Entity:
        world = self._entity_world[entity_id]
        shard = self.shard(world)
        assert shard is not None  # entity_id implies a non-empty shard
        return shard.entity(entity_id)

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entity_world

    def vector(self, entity_id: str) -> np.ndarray:
        """Embedding of one entity, served through the LRU cache."""
        cached = self.embedding_cache.get(entity_id)
        if cached is not None:
            return cached
        world = self._entity_world[entity_id]
        shard = self.shard(world)
        assert shard is not None
        vector = shard.vector(entity_id)
        self.embedding_cache.put(entity_id, vector)
        return vector

    # ------------------------------------------------------------------
    # Online mutation
    # ------------------------------------------------------------------
    def _resolve_vectors(
        self, entities: List[Entity], vectors: Optional[np.ndarray]
    ) -> np.ndarray:
        if vectors is None:
            if self._embed_fn is None:
                raise ValueError("no vectors given and the index has no embed_fn")
            vectors = self._embed_fn(entities)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if len(vectors) != len(entities):
            raise ValueError("entities and vectors must align")
        return vectors

    def _sync_shard_record(self, world: str, shard: Any) -> None:
        """Refresh the bookkeeping lists after a shard-level mutation."""
        members = list(shard.entities())
        self._shard_entities[world] = members
        self._shard_vectors[world] = getattr(shard, "vectors", None)

    def add_entities(
        self,
        entities: Sequence[Entity],
        vectors: Optional[np.ndarray] = None,
    ) -> None:
        """Add entities online; they are searchable as soon as this returns.

        Entities route to their ``domain`` shard; unknown domains create a
        new shard.  ``vectors=None`` embeds through the index's ``embed_fn``.
        On IVF shards the rows land in the exact pending tail (linkable
        immediately, folded into cells by :meth:`compact`); on exact shards
        the matrix grows in place.
        """
        entities = list(entities)
        if not entities:
            return
        duplicates = [e.entity_id for e in entities if e.entity_id in self._entity_world]
        if duplicates:
            raise ValueError(
                f"entities already indexed (use update_entities): {duplicates}"
            )
        vectors = self._resolve_vectors(entities, vectors)
        grouped: "OrderedDict[str, List[int]]" = OrderedDict()
        for position, entity in enumerate(entities):
            grouped.setdefault(entity.domain, []).append(position)
        for world, rows in grouped.items():
            members = [entities[i] for i in rows]
            member_vectors = vectors[rows]
            if world not in self._shard_entities:
                self.add_shard(world, members, member_vectors)
                continue
            shard = self.shard(world)
            if shard is None:
                # Previously empty world: registering content resets it.
                self._shard_entities[world] = members
                self._shard_vectors[world] = member_vectors
                self._shards.pop(world, None)
            else:
                shard.add(members, member_vectors)
                self._sync_shard_record(world, shard)
            for entity in members:
                self._entity_world[entity.entity_id] = world

    def remove_entities(self, entity_ids: Sequence[str]) -> None:
        """Remove entities online (exact: row drop; IVF: tombstone)."""
        ids = list(entity_ids)
        unknown = [i for i in ids if i not in self._entity_world]
        if unknown:
            raise KeyError(f"unknown entities: {sorted(unknown)}")
        grouped: "OrderedDict[str, List[str]]" = OrderedDict()
        for entity_id in ids:
            grouped.setdefault(self._entity_world[entity_id], []).append(entity_id)
        for world, members in grouped.items():
            shard = self.shard(world)
            assert shard is not None  # ids imply non-empty shards
            shard.remove(members)
            self._sync_shard_record(world, shard)
        for entity_id in ids:
            del self._entity_world[entity_id]
        self.embedding_cache.invalidate(ids)

    def update_entities(
        self,
        entities: Sequence[Entity],
        vectors: Optional[np.ndarray] = None,
    ) -> None:
        """Refresh metadata/embeddings of already-indexed entities online."""
        entities = list(entities)
        if not entities:
            return
        missing = [e.entity_id for e in entities if e.entity_id not in self._entity_world]
        if missing:
            raise KeyError(f"unknown entities: {missing}")
        vectors = self._resolve_vectors(entities, vectors)
        grouped: "OrderedDict[str, List[int]]" = OrderedDict()
        for position, entity in enumerate(entities):
            grouped.setdefault(self._entity_world[entity.entity_id], []).append(position)
        for world, rows in grouped.items():
            shard = self.shard(world)
            assert shard is not None
            shard.update([entities[i] for i in rows], vectors[rows])
            self._sync_shard_record(world, shard)
        self.embedding_cache.invalidate(e.entity_id for e in entities)

    def compact(self) -> Dict[str, int]:
        """Compact every shard that supports it (IVF backends).

        Folds pending tails and tombstones into freshly re-clustered
        generations; exact shards mutate eagerly and are left alone.
        Returns ``{world: new_generation}`` for the compacted shards.
        """
        generations: Dict[str, int] = {}
        for world in self.worlds():
            shard = self._shards.get(world)
            if shard is not None and hasattr(shard, "compact"):
                generations[world] = shard.compact()
                self._sync_shard_record(world, shard)
        return generations

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path], codec: str = "float64") -> Path:
        """Snapshot the index to a directory; returns the directory path.

        Version-2 layout: a JSON manifest (shard order, backend + codec per
        shard, entity metadata, block size, cache capacity) plus one raw
        ``.npy`` file per array under ``arrays/`` — raw files, unlike the
        version-1 ``npz``, can be opened with ``mmap_mode="r"`` at load
        time.  Saving never materialises anything: cold (lazy) shards are
        recorded without vectors and stay cold after :meth:`load`.

        ``codec`` quantizes materialised *exact* shards on disk (``float64``
        / ``float16`` / ``int8``); the default float64 round-trips
        bit-identically.  IVF shards persist their own codec and full live
        state (cells, pending tail, tombstones) via ``export_snapshot``.
        """
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        shards = []
        arrays: Dict[str, np.ndarray] = {}
        for position, (world, members) in enumerate(self._shard_entities.items()):
            shard = self._shards.get(world)
            if shard is not None and hasattr(shard, "export_snapshot"):
                entry, shard_arrays = shard.export_snapshot()
                entry["world"] = world
                entry["materialized"] = True
                shards.append(entry)
                for key, array in shard_arrays.items():
                    arrays[f"shard_{position}__{key}"] = array
                continue
            vectors = self._shard_vectors.get(world)
            entry = {
                "world": world,
                "backend": "exact",
                "codec": codec if vectors is not None else "float64",
                "materialized": vectors is not None,
                "entities": [entity.to_dict() for entity in members],
            }
            shards.append(entry)
            if vectors is None:
                continue
            if codec == "float64" and not _is_storage(vectors):
                arrays[f"shard_{position}"] = np.asarray(vectors, dtype=np.float64)
            else:
                from ..index.codecs import encode_matrix  # deferred: avoids cycle

                dense = vectors.to_dense() if _is_storage(vectors) else vectors
                for key, array in encode_matrix(dense, codec).arrays().items():
                    name = f"shard_{position}__{key}" if key else f"shard_{position}"
                    arrays[name] = array
        token = uuid.uuid4().hex
        manifest = {
            "format_version": SNAPSHOT_FORMAT_VERSION,
            "block_size": self._block_size,
            "cache_size": self.embedding_cache.capacity,
            "shards": shards,
            "arrays_token": token,
        }
        # Write arrays into a temp directory, swap it in, then write the
        # manifest (temp file + rename): the manifest is the commit marker a
        # reader looks at first, so a crash mid-save never exposes a
        # half-written snapshot.  On an in-place re-save the committed
        # arrays directory is *renamed aside*, never deleted, until the new
        # manifest is committed; the token marker ties each manifest to its
        # arrays directory so load() recovers the right pairing if a crash
        # lands between the renames.
        arrays_tmp = path / (SNAPSHOT_ARRAYS + ".tmp")
        if arrays_tmp.exists():
            shutil.rmtree(arrays_tmp)
        arrays_tmp.mkdir()
        for name, array in arrays.items():
            np.save(arrays_tmp / f"{name}.npy", np.ascontiguousarray(array))
        (arrays_tmp / SNAPSHOT_ARRAYS_TOKEN).write_text(token)
        arrays_dir = path / SNAPSHOT_ARRAYS
        arrays_old = path / SNAPSHOT_ARRAYS_OLD
        if arrays_old.exists():
            shutil.rmtree(arrays_old)
        if arrays_dir.exists():
            arrays_dir.replace(arrays_old)
        arrays_tmp.replace(arrays_dir)
        manifest_tmp = path / (SNAPSHOT_MANIFEST + ".tmp")
        manifest_tmp.write_text(json.dumps(manifest, indent=1))
        manifest_tmp.replace(path / SNAPSHOT_MANIFEST)
        if arrays_old.exists():
            shutil.rmtree(arrays_old)
        return path

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        embed_fn: Optional[EmbedFn] = None,
        block_size: Optional[int] = None,
        cache_size: Optional[int] = None,
        mmap: bool = False,
        backend: Optional[Any] = None,
    ) -> "ShardedEntityIndex":
        """Restore an index saved with :meth:`save`.

        Shard insertion order, materialised vectors and cold-shard status all
        round-trip exactly, so ``load(path).search(q, k)`` ranks identically
        to the pre-save index.  ``embed_fn`` re-attaches the embedding
        function (snapshots cannot serialise callables); it is only required
        once a still-cold shard is first searched.  ``block_size`` /
        ``cache_size`` override the persisted values when given.

        ``mmap=True`` opens every version-2 array with ``mmap_mode="r"`` —
        embedding pages load on first touch and are shared between forked
        replica processes.  Version-1 (``npz``) snapshots still load, always
        in RAM.  ``backend`` rebuilds *exact-saved* shards under a different
        backend (e.g. :class:`~repro.index.backend.IVFBackend`); shards
        saved from IVF state restore as IVF shards regardless.

        If ``path`` is a generation store (contains a ``CURRENT`` marker,
        see :mod:`repro.index.snapshot`), the current generation is loaded.
        """
        path = Path(path)
        if not (path / SNAPSHOT_MANIFEST).exists() and (path / SNAPSHOT_CURRENT).exists():
            from ..index.snapshot import current_generation  # deferred: avoids cycle

            resolved = current_generation(path)
            assert resolved is not None  # marker exists, so this resolves
            path = resolved
        manifest = json.loads((path / SNAPSHOT_MANIFEST).read_text())
        version = manifest.get("format_version")
        if version not in (1, SNAPSHOT_FORMAT_VERSION):
            raise ValueError(
                f"unsupported snapshot format version {version!r} "
                f"(this build reads versions 1 and {SNAPSHOT_FORMAT_VERSION})"
            )
        index = cls(
            embed_fn=embed_fn,
            block_size=manifest["block_size"] if block_size is None else block_size,
            cache_size=manifest["cache_size"] if cache_size is None else cache_size,
            backend=backend,
        )
        if version == 1:
            with np.load(path / SNAPSHOT_VECTORS) as arrays:
                for position, shard in enumerate(manifest["shards"]):
                    entities = [Entity.from_dict(p) for p in shard["entities"]]
                    vectors = arrays[f"shard_{position}"] if shard["materialized"] else None
                    index.add_shard(shard["world"], entities, vectors)
            return index

        arrays_dir = path / SNAPSHOT_ARRAYS
        token = manifest.get("arrays_token")
        if token is not None:
            # A crash during an in-place re-save can leave the *new* arrays
            # directory in place while the committed manifest is still the
            # old one (or the arrays rename done but the swap-in not).  The
            # token marker written by save() identifies which directory the
            # committed manifest describes.
            def _holds_token(candidate: Path) -> bool:
                marker = candidate / SNAPSHOT_ARRAYS_TOKEN
                try:
                    return marker.read_text() == token
                except OSError:
                    return False

            if not _holds_token(arrays_dir):
                fallback = path / SNAPSHOT_ARRAYS_OLD
                if _holds_token(fallback):
                    arrays_dir = fallback
                else:
                    raise ValueError(
                        f"snapshot at {path} is inconsistent: no arrays "
                        f"directory matches the manifest's arrays_token "
                        f"(interrupted save?)"
                    )
        mmap_mode = "r" if mmap else None

        def _load(name: str) -> np.ndarray:
            return np.load(arrays_dir / f"{name}.npy", mmap_mode=mmap_mode)

        names = sorted(p.stem for p in arrays_dir.glob("*.npy"))
        for position, shard in enumerate(manifest["shards"]):
            world = shard["world"]
            shard_backend = shard.get("backend", "exact")
            if shard_backend == "ivf":
                from ..index.ivf import IVFShard  # deferred: avoids cycle

                prefix = f"shard_{position}__"
                shard_arrays = {
                    name[len(prefix):]: _load(name)
                    for name in names
                    if name.startswith(prefix)
                }
                ivf_shard = IVFShard.from_snapshot(shard, shard_arrays)
                members = ivf_shard.entities()
                index._shard_entities[world] = members
                index._shard_vectors[world] = None
                index._shards[world] = ivf_shard
                for entity in members:
                    index._entity_world[entity.entity_id] = world
                continue
            if shard_backend != "exact":
                raise ValueError(
                    f"unknown shard backend {shard_backend!r} in snapshot "
                    f"(a newer build may have written it)"
                )
            entities = [Entity.from_dict(p) for p in shard["entities"]]
            if not shard["materialized"]:
                index.add_shard(world, entities, None)
                continue
            shard_codec = shard.get("codec", "float64")
            if shard_codec == "float64":
                index.add_shard(world, entities, _load(f"shard_{position}"))
            else:
                from ..index.codecs import storage_from_arrays  # deferred

                prefix = f"shard_{position}__"
                components = {
                    name[len(prefix):]: _load(name)
                    for name in names
                    if name.startswith(prefix)
                }
                index.add_shard(
                    world, entities, storage_from_arrays(components, shard_codec)
                )
        return index

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        query_vectors: np.ndarray,
        k: int,
        worlds: Optional[Sequence[str]] = None,
    ) -> List[RetrievalResult]:
        """Top-k search, fanned out over ``worlds`` (default: all shards).

        Per-shard rankings are merged by decreasing score; ties are broken by
        shard insertion order, then entity position, so merged rankings are
        deterministic.  Empty shards contribute nothing; if every selected
        shard is empty the results are empty (never an error).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        num_queries = len(query_vectors)
        selected = [world for world in self._select_worlds(worlds) if self.shard(world) is not None]
        if not selected:
            return [RetrievalResult([], []) for _ in range(num_queries)]
        if len(selected) == 1:
            shard = self.shard(selected[0])
            assert shard is not None
            return shard.search(query_vectors, k)

        # Fan-out: per-shard blocked top-k, then one vectorized merge.  The
        # lexsort keys encode the deterministic ordering (score desc, shard
        # insertion order, entity position).  Each shard resolves entity ids
        # inside search_arrays_with_ids, against the same state snapshot
        # that produced the scores — a post-hoc entity_id_at lookup could
        # race a compact() that remaps positions between the two reads.
        score_blocks: List[np.ndarray] = []
        position_blocks: List[np.ndarray] = []
        shard_blocks: List[np.ndarray] = []
        id_blocks: List[np.ndarray] = []
        for shard_order, world in enumerate(selected):
            shard = self.shard(world)
            assert shard is not None
            scores, positions, ids = shard.search_arrays_with_ids(query_vectors, k)
            score_blocks.append(scores)
            position_blocks.append(positions)
            id_blocks.append(ids)
            shard_blocks.append(np.full(positions.shape, shard_order, dtype=np.int64))

        scores = np.concatenate(score_blocks, axis=1)
        positions = np.concatenate(position_blocks, axis=1)
        entity_id_slots = np.concatenate(id_blocks, axis=1)
        shard_orders = np.concatenate(shard_blocks, axis=1)
        order = np.lexsort((positions, shard_orders, -scores), axis=1)[:, :k]
        top_scores = np.take_along_axis(scores, order, axis=1)
        top_ids = np.take_along_axis(entity_id_slots, order, axis=1)

        # Padding slots (position -1, score -inf) emitted by approximate
        # shards carry a None id and are dropped here.
        results: List[RetrievalResult] = []
        for query_index in range(num_queries):
            entity_ids: List[str] = []
            row_scores: List[float] = []
            for entity_id, score in zip(
                top_ids[query_index], top_scores[query_index]
            ):
                if entity_id is None:
                    continue
                entity_ids.append(entity_id)
                row_scores.append(float(score))
            results.append(RetrievalResult(entity_ids=entity_ids, scores=row_scores))
        return results

    def search_routed(
        self,
        query_vectors: np.ndarray,
        k: int,
        routes: Sequence[Optional[str]],
    ) -> List[RetrievalResult]:
        """Per-query world routing: query ``i`` searches shard ``routes[i]``.

        A route of ``None`` — or naming a world this index does not hold —
        falls back to a fan-out search over all shards.  Queries sharing a
        route are batched into one shard search, so the common serving case
        (a batch of mentions from one world) stays a single blocked matmul.
        """
        query_vectors = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        if len(routes) != len(query_vectors):
            raise ValueError("routes and query vectors must align")

        grouped: "OrderedDict[Optional[str], List[int]]" = OrderedDict()
        for index, route in enumerate(routes):
            key = route if route in self._shard_entities else None
            grouped.setdefault(key, []).append(index)

        # One placeholder instance per query — a single shared RetrievalResult
        # replicated n times would alias every unfilled slot to one object.
        results: List[RetrievalResult] = [
            RetrievalResult([], []) for _ in range(len(query_vectors))
        ]
        for route, indices in grouped.items():
            worlds = None if route is None else [route]
            group_results = self.search(query_vectors[indices], k, worlds=worlds)
            for index, result in zip(indices, group_results):
                results[index] = result
        return results

    def retrieve_entities(
        self,
        query_vectors: np.ndarray,
        k: int,
        worlds: Optional[Sequence[str]] = None,
    ) -> List[List[Entity]]:
        """Like :meth:`search` but resolving candidates to Entity objects."""
        return [
            [self.entity(entity_id) for entity_id in result.entity_ids]
            for result in self.search(query_vectors, k, worlds=worlds)
        ]

    def _select_worlds(self, worlds: Optional[Sequence[str]]) -> List[str]:
        if worlds is None:
            return self.worlds()
        unknown = [world for world in worlds if world not in self._shard_entities]
        if unknown:
            raise KeyError(f"unknown worlds: {unknown}")
        return list(worlds)


def recall_at_k(results: Sequence[RetrievalResult], gold_ids: Sequence[str]) -> float:
    """Fraction of queries whose gold entity appears among the candidates."""
    if len(results) != len(gold_ids):
        raise ValueError("results and gold ids must align")
    if not results:
        return 0.0
    hits = sum(1 for result, gold in zip(results, gold_ids) if result.contains(gold))
    return hits / len(results)
