"""Input-encoding helpers shared by the bi-encoder and cross-encoder.

The models operate on integer id matrices; these helpers turn
:class:`~repro.kb.entity.EntityMentionPair` lists (and raw mentions/entities)
into those matrices using a :class:`~repro.text.tokenizer.Tokenizer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..text.tokenizer import Tokenizer


@dataclass
class PairBatch:
    """Aligned mention / entity id matrices plus per-pair weights."""

    mention_ids: np.ndarray
    entity_ids: np.ndarray
    weights: np.ndarray

    def __len__(self) -> int:
        return len(self.mention_ids)


def encode_mention_inputs(
    mentions: Sequence[Mention],
    tokenizer: Tokenizer,
    max_length: Optional[int] = None,
) -> np.ndarray:
    """Encode mention-in-context inputs for the mention encoder."""
    return np.stack(
        [
            tokenizer.encode_mention(
                mention.surface,
                left_context=mention.context_left,
                right_context=mention.context_right,
                max_length=max_length,
            )
            for mention in mentions
        ]
    )


def encode_entity_inputs(
    entities: Sequence[Entity],
    tokenizer: Tokenizer,
    max_length: Optional[int] = None,
) -> np.ndarray:
    """Encode ``title <sep> description`` inputs for the entity encoder."""
    return np.stack(
        [
            tokenizer.encode_entity(entity.title, entity.description, max_length=max_length)
            for entity in entities
        ]
    )


def encode_pair_batch(
    pairs: Sequence[EntityMentionPair],
    tokenizer: Tokenizer,
    max_length: Optional[int] = None,
) -> PairBatch:
    """Encode aligned (mention, entity) pairs with their weights."""
    if not pairs:
        raise ValueError("cannot encode an empty pair list")
    mention_ids = encode_mention_inputs([pair.mention for pair in pairs], tokenizer, max_length)
    entity_ids = encode_entity_inputs([pair.entity for pair in pairs], tokenizer, max_length)
    weights = np.array([pair.weight for pair in pairs], dtype=np.float64)
    return PairBatch(mention_ids=mention_ids, entity_ids=entity_ids, weights=weights)


def encode_cross_inputs(
    mention: Mention,
    candidates: Sequence[Entity],
    tokenizer: Tokenizer,
    max_length: Optional[int] = None,
) -> np.ndarray:
    """Encode one mention against each candidate entity for the cross-encoder."""
    return np.stack(
        [
            tokenizer.encode_cross(
                mention.surface,
                mention.context_left,
                mention.context_right,
                candidate.title,
                candidate.description,
                max_length=max_length,
            )
            for candidate in candidates
        ]
    )


def unique_entities(pairs: Sequence[EntityMentionPair]) -> List[Entity]:
    """Distinct entities appearing in a pair list (stable order)."""
    seen = set()
    ordered: List[Entity] = []
    for pair in pairs:
        if pair.entity.entity_id in seen:
            continue
        seen.add(pair.entity.entity_id)
        ordered.append(pair.entity)
    return ordered
