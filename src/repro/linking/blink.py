"""BLINK-style two-stage linking pipeline (Wu et al., 2020).

``BlinkPipeline`` bundles a bi-encoder (candidate generation) and a
cross-encoder (candidate ranking).  The evaluation protocol follows the paper:

* Recall@k measures the candidate-generation stage;
* normalised accuracy (N.Acc) measures ranking *given* that the gold entity
  was retrieved;
* unnormalised accuracy (U.Acc) = recall × N.Acc measures the full pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..text.tokenizer import Tokenizer
from ..utils.config import BiEncoderConfig, CrossEncoderConfig
from ..utils.logging import MetricHistory, get_logger
from .biencoder import BiEncoder, BiEncoderTrainer
from .candidates import EntityIndex
from .crossencoder import CrossEncoder, CrossEncoderTrainer, build_ranking_examples
from .encoders import unique_entities

_LOGGER = get_logger("blink")


@dataclass
class LinkingPrediction:
    """Two-stage outcome for one mention."""

    mention_id: str
    gold_entity_id: Optional[str]
    candidate_ids: List[str]
    predicted_entity_id: Optional[str]

    @property
    def gold_in_candidates(self) -> bool:
        return self.gold_entity_id is not None and self.gold_entity_id in self.candidate_ids

    @property
    def correct(self) -> bool:
        return (
            self.predicted_entity_id is not None
            and self.gold_entity_id is not None
            and self.predicted_entity_id == self.gold_entity_id
        )


@dataclass
class TrainingReport:
    """Loss histories for the two stages."""

    biencoder: Optional[MetricHistory] = None
    crossencoder: Optional[MetricHistory] = None
    extra: Dict[str, object] = field(default_factory=dict)


class BlinkPipeline:
    """Bi-encoder + cross-encoder entity linker."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        biencoder_config: Optional[BiEncoderConfig] = None,
        crossencoder_config: Optional[CrossEncoderConfig] = None,
    ) -> None:
        self.tokenizer = tokenizer
        self.biencoder_config = biencoder_config or BiEncoderConfig()
        self.crossencoder_config = crossencoder_config or CrossEncoderConfig()
        self.biencoder = BiEncoder(self.biencoder_config, tokenizer)
        self.crossencoder = CrossEncoder(self.crossencoder_config, tokenizer)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        pairs: Sequence[EntityMentionPair],
        candidate_pool: Optional[Sequence[Entity]] = None,
        train_biencoder: bool = True,
        train_crossencoder: bool = True,
        max_crossencoder_examples: Optional[int] = 80,
        seed: int = 0,
    ) -> TrainingReport:
        """Train both stages on (weighted) pairs.

        ``candidate_pool`` supplies negatives for cross-encoder training; it
        defaults to the distinct entities present in ``pairs``.
        """
        if not pairs:
            raise ValueError("cannot train BLINK on an empty pair list")
        report = TrainingReport()
        if train_biencoder:
            report.biencoder = BiEncoderTrainer(self.biencoder, self.biencoder_config).fit(pairs, seed=seed)
        if train_crossencoder:
            pool = list(candidate_pool) if candidate_pool is not None else unique_entities(pairs)
            ranking_pairs = list(pairs)
            if max_crossencoder_examples is not None and len(ranking_pairs) > max_crossencoder_examples:
                ranking_pairs = ranking_pairs[:max_crossencoder_examples]
            examples = build_ranking_examples(
                ranking_pairs, pool, self.crossencoder_config.num_candidates, seed=seed
            )
            report.crossencoder = CrossEncoderTrainer(self.crossencoder, self.crossencoder_config).fit(
                examples, seed=seed
            )
        return report

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def build_index(self, entities: Sequence[Entity]) -> EntityIndex:
        return self.biencoder.build_index(entities)

    def predict(
        self,
        mentions: Sequence[Mention],
        entities: Sequence[Entity],
        k: int = 16,
        index: Optional[EntityIndex] = None,
        rerank: bool = True,
        batch_size: int = 64,
    ) -> List[LinkingPrediction]:
        """Run the two-stage pipeline over mentions against an entity set.

        Delegates to the batched :class:`~repro.serving.EntityLinkingPipeline`
        so every stage (embedding, MIPS retrieval, reranking) runs vectorized
        over ``batch_size`` micro-batches instead of once per mention.
        """
        if not mentions:
            return []
        # Imported lazily: serving builds on linking, not the other way round.
        from ..serving.pipeline import EntityLinkingPipeline

        serving = EntityLinkingPipeline.from_blink(
            self,
            entities=entities if index is None else None,
            index=index,
            k=k,
            rerank=rerank,
            batch_size=batch_size,
            # Preserve this method's historical contract: candidates come
            # from the *whole* entity pool, so fan out over every shard
            # rather than routing each mention to its own domain's shard.
            # Domain routing is the serving layer's explicit opt-in.
            route_by_domain=False,
        )
        return [
            LinkingPrediction(
                mention_id=result.mention_id,
                gold_entity_id=result.gold_entity_id,
                candidate_ids=list(result.candidate_ids),
                predicted_entity_id=result.predicted_entity_id,
            )
            for result in serving.link(mentions)
        ]
