"""Cross-encoder: candidate-ranking stage of BLINK (Section IV-B1).

The cross-encoder reads the concatenation of the mention-in-context and one
candidate entity and produces a scalar relevance score; ranking the candidates
retrieved by the bi-encoder with these scores yields the final prediction.
Training maximises the gold candidate against the other retrieved candidates
(softmax cross entropy over the candidate list), again with optional
per-example weights for the meta-learning loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..nn import Adam, Linear, Module, Tensor, TransformerEncoder, clip_grad_norm, concatenate, no_grad
from ..nn import functional as F
from ..text.normalization import normalize_text, simple_tokenize, strip_disambiguation
from ..text.tokenizer import Tokenizer
from ..text.vocab import SEP_TOKEN
from ..utils.config import CrossEncoderConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices, derive_seed

_LOGGER = get_logger("crossencoder")

NUM_LEXICAL_FEATURES = 3

# The interaction features live in [0, 1] while pooled transformer activations
# are an order of magnitude larger; scaling the features keeps the scoring
# head from ignoring them early in training.
LEXICAL_FEATURE_SCALE = 5.0

# Batched reranking pushes (mention, candidate) rows through the encoder in
# chunks of this many rows: large enough to amortise per-call overhead, small
# enough that the attention temporaries stay cache-resident.
MAX_FORWARD_ROWS = 128

# Capacity of the per-entity token/feature caches; beyond this the oldest
# entries are evicted (FIFO) so a long-running serving process reranking
# traffic over a huge KB cannot grow without bound.
ENTITY_CACHE_CAPACITY = 65536


def _cache_put(cache: Dict, key: str, value) -> None:
    """Insert with FIFO eviction at :data:`ENTITY_CACHE_CAPACITY`.

    Overwriting an existing key never evicts: the dict does not grow, so
    removing the oldest entry would throw away an unrelated cached value.
    """
    if key not in cache and len(cache) >= ENTITY_CACHE_CAPACITY:
        del cache[next(iter(cache))]
    cache[key] = value


def _jaccard(left: frozenset, right: frozenset) -> float:
    if not left or not right:
        return 0.0
    return len(left & right) / len(left | right)


def lexical_features(mention: Mention, candidate: Entity) -> np.ndarray:
    """Hand-crafted mention/candidate interaction features.

    A pre-trained BERT cross-encoder captures lexical interactions between the
    mention side and the entity side implicitly; the tiny from-scratch encoder
    used offline cannot, so we expose three explicit interaction signals to
    the scoring head (the head still has to *learn* how much to trust them):

    1. surface ↔ title token overlap (the exact-match shortcut),
    2. context ↔ description token overlap (the semantic signal),
    3. exact title match indicator.
    """
    surface_tokens = frozenset(simple_tokenize(mention.surface))
    title_tokens = frozenset(simple_tokenize(candidate.title))
    context_tokens = frozenset(simple_tokenize(f"{mention.context_left} {mention.context_right}"))
    description_tokens = frozenset(simple_tokenize(candidate.description))

    exact = float(
        normalize_text(mention.surface) in {
            normalize_text(candidate.title),
            normalize_text(strip_disambiguation(candidate.title)),
        }
    )
    return np.array([_jaccard(surface_tokens, title_tokens),
                     _jaccard(context_tokens, description_tokens),
                     exact], dtype=np.float64)


@dataclass
class RankingExample:
    """One training example: a mention, its candidates, and the gold index."""

    mention: Mention
    candidates: List[Entity]
    gold_index: int
    weight: float = 1.0


class CrossEncoder(Module):
    """Single-tower encoder over concatenated mention/entity text + score head."""

    def __init__(self, config: CrossEncoderConfig, tokenizer: Tokenizer) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer
        encoder_config = config.encoder
        vocab_size = max(encoder_config.vocab_size, tokenizer.vocab_size)
        self.encoder = TransformerEncoder(
            vocab_size=vocab_size,
            model_dim=encoder_config.model_dim,
            num_layers=encoder_config.num_layers,
            num_heads=encoder_config.num_heads,
            hidden_dim=encoder_config.hidden_dim,
            max_length=encoder_config.max_length,
            dropout=encoder_config.dropout,
            padding_idx=tokenizer.pad_id,
            seed=config.seed,
        )
        self.score_head = Linear(
            encoder_config.model_dim + NUM_LEXICAL_FEATURES,
            1,
            rng=np.random.default_rng(config.seed + 7),
        )
        # Per-entity caches keyed by entity_id (entity content is immutable):
        # tokenized ``<sep> title <sep> description`` id suffixes and the
        # token sets the lexical features are computed from.  Entities repeat
        # across mentions in every rerank batch, so these caches turn the
        # per-row tokenisation cost into a one-time cost per entity.
        self._entity_suffix_cache: Dict[str, List[int]] = {}
        self._entity_feature_cache: Dict[str, Tuple[frozenset, frozenset, frozenset]] = {}
        # Mention-side memo, keyed by the text the derived values depend on
        # (mention ids are reused by rewritten surfaces, so the id alone is
        # not a safe key).  Mentions recur across training epochs and across
        # rerank calls, and without the memo the surface / context token sets
        # were re-derived for every scoring call.
        self._mention_prefix_cache: Dict[Tuple[str, str, str], List[int]] = {}
        self._mention_feature_cache: Dict[Tuple[str, str, str], Tuple[frozenset, frozenset, str]] = {}

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def scores_from_ids(self, cross_ids: np.ndarray, features: Optional[np.ndarray] = None) -> Tensor:
        """Scalar score for each row of concatenated mention/candidate ids."""
        pooled = self.encoder.encode(cross_ids)
        if features is None:
            features = np.zeros((len(cross_ids), NUM_LEXICAL_FEATURES))
        combined = concatenate([pooled, Tensor(np.asarray(features, dtype=np.float64))], axis=1)
        return self.score_head(combined).reshape(len(cross_ids))

    def _entity_suffix_ids(self, entity: Entity) -> List[int]:
        """Cached ``<sep> title <sep> description`` id suffix for one entity."""
        cached = self._entity_suffix_cache.get(entity.entity_id)
        if cached is None:
            tokens = (
                [SEP_TOKEN]
                + self.tokenizer.tokenize(entity.title)
                + [SEP_TOKEN]
                + self.tokenizer.tokenize(entity.description)
            )
            cached = self.tokenizer.vocabulary.encode_tokens(tokens)
            _cache_put(self._entity_suffix_cache, entity.entity_id, cached)
        return cached

    @staticmethod
    def _mention_key(mention: Mention) -> Tuple[str, str, str]:
        return (mention.surface, mention.context_left, mention.context_right)

    def _mention_prefix_ids(self, mention: Mention) -> List[int]:
        """Cached mention-in-context id prefix (one tokenisation per mention text)."""
        key = self._mention_key(mention)
        cached = self._mention_prefix_cache.get(key)
        if cached is None:
            tokens = self.tokenizer.mention_tokens(
                mention.surface, mention.context_left, mention.context_right
            )
            cached = self.tokenizer.vocabulary.encode_tokens(tokens)
            _cache_put(self._mention_prefix_cache, key, cached)
        return cached

    def _mention_feature_sets(self, mention: Mention) -> Tuple[frozenset, frozenset, str]:
        """Cached mention-side inputs of the lexical features.

        Returns ``(surface_tokens, context_tokens, normalized_surface)``; the
        memo means reranking *n* candidates for a mention tokenises the
        mention side once instead of once per (mention, candidate) pair, and
        repeat mentions (training epochs, steady-state serving traffic) skip
        the work entirely.
        """
        key = self._mention_key(mention)
        cached = self._mention_feature_cache.get(key)
        if cached is None:
            cached = (
                frozenset(simple_tokenize(mention.surface)),
                frozenset(simple_tokenize(f"{mention.context_left} {mention.context_right}")),
                normalize_text(mention.surface),
            )
            _cache_put(self._mention_feature_cache, key, cached)
        return cached

    def _cross_input_ids(
        self,
        mention: Mention,
        candidates: Sequence[Entity],
        prefix: Optional[List[int]] = None,
    ) -> np.ndarray:
        """Cross-encoder id rows; identical to ``Tokenizer.encode_cross`` output.

        ``prefix`` optionally supplies the mention-side id sequence (e.g. from
        the serving pipeline's tokenize stage) so the mention is not
        re-tokenised here.
        """
        max_length = self.config.encoder.max_length
        rows = np.full((len(candidates), max_length), self.tokenizer.pad_id, dtype=np.int64)
        if prefix is None:
            prefix = self._mention_prefix_ids(mention)
        for position, candidate in enumerate(candidates):
            ids = (prefix + self._entity_suffix_ids(candidate))[:max_length]
            rows[position, : len(ids)] = ids
        return rows

    def _entity_feature_sets(self, entity: Entity) -> Tuple[frozenset, frozenset, frozenset]:
        cached = self._entity_feature_cache.get(entity.entity_id)
        if cached is None:
            cached = (
                frozenset(simple_tokenize(entity.title)),
                frozenset(simple_tokenize(entity.description)),
                frozenset(
                    {
                        normalize_text(entity.title),
                        normalize_text(strip_disambiguation(entity.title)),
                    }
                ),
            )
            _cache_put(self._entity_feature_cache, entity.entity_id, cached)
        return cached

    def _candidate_features(
        self,
        mention: Mention,
        candidates: Sequence[Entity],
        mention_sets: Optional[Tuple[frozenset, frozenset, str]] = None,
    ) -> np.ndarray:
        """Interaction features of :func:`lexical_features`, with the
        mention-side token sets computed once per mention and the entity-side
        sets cached per entity id.  ``mention_sets`` optionally supplies
        precomputed ``(surface_tokens, context_tokens, normalized_surface)``.
        """
        if mention_sets is not None:
            surface_tokens, context_tokens, normalized_surface = mention_sets
        else:
            surface_tokens, context_tokens, normalized_surface = self._mention_feature_sets(mention)
        features = np.empty((len(candidates), NUM_LEXICAL_FEATURES), dtype=np.float64)
        for position, candidate in enumerate(candidates):
            title_tokens, description_tokens, title_forms = self._entity_feature_sets(candidate)
            features[position, 0] = _jaccard(surface_tokens, title_tokens)
            features[position, 1] = _jaccard(context_tokens, description_tokens)
            features[position, 2] = float(normalized_surface in title_forms)
        return features * LEXICAL_FEATURE_SCALE

    def score_candidates(self, mention: Mention, candidates: Sequence[Entity]) -> np.ndarray:
        """Inference-time candidate scores for one mention."""
        ids = self._cross_input_ids(mention, candidates)
        features = self._candidate_features(mention, candidates)
        self.eval()
        with no_grad():
            return self.scores_from_ids(ids, features).data.copy()

    def rank(self, mention: Mention, candidates: Sequence[Entity]) -> List[Entity]:
        """Candidates sorted by decreasing score."""
        scores = self.score_candidates(mention, candidates)
        order = np.argsort(-scores)
        return [candidates[i] for i in order]

    def predict(self, mention: Mention, candidates: Sequence[Entity]) -> Optional[Entity]:
        """Best candidate, or None when the candidate list is empty."""
        if not candidates:
            return None
        return self.rank(mention, candidates)[0]

    # ------------------------------------------------------------------
    # Batched inference
    # ------------------------------------------------------------------
    def score_candidate_batch(
        self,
        mentions: Sequence[Mention],
        candidate_lists: Sequence[Sequence[Entity]],
        mention_tokens: Optional[Sequence[object]] = None,
    ) -> List[np.ndarray]:
        """Candidate scores for many mentions in one encoder forward pass.

        All ``(mention, candidate)`` rows are concatenated into a single id
        matrix and scored together (in :data:`MAX_FORWARD_ROWS` chunks) — the
        vectorized rerank stage of the serving pipeline.  Returns one score
        array per mention, aligned with its candidate list (empty array for
        an empty list).

        ``mention_tokens`` optionally carries per-mention tokenisation
        artefacts (objects exposing ``prefix_ids``, ``surface_tokens``,
        ``context_tokens`` and ``normalized_surface``, e.g.
        :class:`repro.serving.stages.MentionTokens`) so mentions are not
        re-tokenised here.

        Example::

            scores = crossencoder.score_candidate_batch(mentions, candidates)
            best = [cands[int(np.argmax(s))] for s, cands in zip(scores, candidates) if len(cands)]
        """
        if len(mentions) != len(candidate_lists):
            raise ValueError("mentions and candidate lists must align")
        if mention_tokens is not None and len(mention_tokens) != len(mentions):
            raise ValueError("mention_tokens and mentions must align")
        row_blocks: List[np.ndarray] = []
        feature_blocks: List[np.ndarray] = []
        lengths: List[int] = []
        for position, (mention, candidates) in enumerate(zip(mentions, candidate_lists)):
            lengths.append(len(candidates))
            if not candidates:
                continue
            prefix = None
            mention_sets = None
            if mention_tokens is not None:
                tokens = mention_tokens[position]
                prefix = tokens.prefix_ids
                mention_sets = (
                    tokens.surface_tokens,
                    tokens.context_tokens,
                    tokens.normalized_surface,
                )
            row_blocks.append(self._cross_input_ids(mention, candidates, prefix=prefix))
            feature_blocks.append(self._candidate_features(mention, candidates, mention_sets=mention_sets))
        if not row_blocks:
            return [np.zeros(0) for _ in lengths]

        ids = np.concatenate(row_blocks, axis=0)
        features = np.concatenate(feature_blocks, axis=0)
        self.eval()
        with no_grad():
            if len(ids) <= MAX_FORWARD_ROWS:
                flat_scores = self.scores_from_ids(ids, features).data.copy()
            else:
                flat_scores = np.concatenate(
                    [
                        self.scores_from_ids(
                            ids[start:start + MAX_FORWARD_ROWS],
                            features[start:start + MAX_FORWARD_ROWS],
                        ).data
                        for start in range(0, len(ids), MAX_FORWARD_ROWS)
                    ]
                )

        scores: List[np.ndarray] = []
        offset = 0
        for length in lengths:
            scores.append(flat_scores[offset:offset + length])
            offset += length
        return scores

    def predict_batch(
        self,
        mentions: Sequence[Mention],
        candidate_lists: Sequence[Sequence[Entity]],
    ) -> List[Optional[Entity]]:
        """Best candidate per mention (None for empty candidate lists).

        Ties are broken toward the earlier candidate, matching the retrieval
        order, so batched prediction is deterministic.
        """
        all_scores = self.score_candidate_batch(mentions, candidate_lists)
        best: List[Optional[Entity]] = []
        for scores, candidates in zip(all_scores, candidate_lists):
            if len(candidates) == 0:
                best.append(None)
                continue
            best.append(candidates[int(np.argmax(scores))])
        return best

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def example_loss(self, example: RankingExample):
        """Cross entropy of the gold candidate within the candidate list."""
        ids = self._cross_input_ids(example.mention, example.candidates)
        features = self._candidate_features(example.mention, example.candidates)
        scores = self.scores_from_ids(ids, features).reshape(1, len(example.candidates))
        return F.cross_entropy(scores, [example.gold_index], reduction="sum")

    def _graph_scores_flat(self, ids: np.ndarray, features: np.ndarray) -> Tensor:
        """Scores for all rows with autodiff, chunked at MAX_FORWARD_ROWS."""
        if len(ids) <= MAX_FORWARD_ROWS:
            return self.scores_from_ids(ids, features)
        return concatenate(
            [
                self.scores_from_ids(
                    ids[start:start + MAX_FORWARD_ROWS],
                    features[start:start + MAX_FORWARD_ROWS],
                )
                for start in range(0, len(ids), MAX_FORWARD_ROWS)
            ],
            axis=0,
        )

    def prepare_examples_loss(self, examples: Sequence[RankingExample]):
        """Tokenize ranking examples once; return a loss-evaluating closure.

        All ``(mention, candidate)`` rows are concatenated into one id/feature
        matrix up front.  The returned ``run(reduction="mean",
        sample_weights=None)`` pushes those rows through the encoder in a
        single (chunked) forward at the model's **current** parameters and
        assembles per-example softmax cross-entropy losses — the batched
        replacement for looping ``example_loss`` over the list.  Examples may
        have differing candidate counts; rows are regrouped by count so each
        group softmaxes over a rectangular score matrix, and the per-example
        losses are returned in the original example order.
        """
        if not examples:
            raise ValueError("examples_loss requires at least one ranking example")
        for position, example in enumerate(examples):
            if not example.candidates:
                raise ValueError(f"ranking example {position} has no candidates")
            if not 0 <= example.gold_index < len(example.candidates):
                raise ValueError(
                    f"ranking example {position} gold_index {example.gold_index} "
                    f"out of range for {len(example.candidates)} candidates"
                )
        ids = np.concatenate(
            [self._cross_input_ids(e.mention, e.candidates) for e in examples], axis=0
        )
        features = np.concatenate(
            [self._candidate_features(e.mention, e.candidates) for e in examples], axis=0
        )
        counts = np.array([len(e.candidates) for e in examples], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        # One (row indices, golds) group per distinct candidate count, plus the
        # permutation restoring original example order after regrouping.
        groups = []
        grouped_order: List[int] = []
        for count in sorted(set(counts.tolist())):
            members = np.flatnonzero(counts == count)
            flat_rows = (offsets[members][:, None] + np.arange(count)[None, :]).reshape(-1)
            golds = np.array([examples[i].gold_index for i in members], dtype=np.int64)
            groups.append((flat_rows, len(members), count, golds))
            grouped_order.extend(members.tolist())
        inverse_order = np.argsort(np.array(grouped_order))

        def run(reduction: str = "mean", sample_weights: Optional[np.ndarray] = None):
            flat_scores = self._graph_scores_flat(ids, features)
            chunks = [
                F.cross_entropy(
                    flat_scores[rows].reshape(size, count), golds, reduction="none"
                )
                for rows, size, count, golds in groups
            ]
            losses = chunks[0] if len(chunks) == 1 else concatenate(chunks, axis=0)
            if len(groups) > 1:
                losses = losses[inverse_order]
            if sample_weights is not None:
                losses = losses * Tensor(np.asarray(sample_weights, dtype=np.float64))
            if reduction == "none":
                return losses
            if reduction == "sum":
                return losses.sum()
            if reduction == "mean":
                return losses.mean()
            raise ValueError(f"unknown reduction {reduction!r}")

        return run

    def examples_loss(
        self,
        examples: Sequence[RankingExample],
        reduction: str = "mean",
        sample_weights: Optional[np.ndarray] = None,
    ):
        """Batched ranking loss over many examples in one encoder forward.

        Equivalent to summing/averaging :meth:`example_loss` over ``examples``
        but with every (mention, candidate) row scored together.
        ``sample_weights`` scales each example's loss (zero-weight examples
        still contribute their 0 to sums, keeping logged epoch losses
        comparable across trainers).  Raises ``ValueError`` on an empty list.
        """
        return self.prepare_examples_loss(examples)(
            reduction=reduction, sample_weights=sample_weights
        )


def build_ranking_examples(
    pairs: Sequence[EntityMentionPair],
    candidate_pool: Sequence[Entity],
    num_candidates: int,
    seed: int = 0,
) -> List[RankingExample]:
    """Create ranking examples with random negatives from ``candidate_pool``.

    The gold entity always occupies a random slot among ``num_candidates``
    candidates; negatives are sampled without replacement from the pool.
    """
    if num_candidates < 2:
        raise ValueError("num_candidates must be at least 2")
    pool = [entity for entity in candidate_pool]
    if len(pool) < 2:
        raise ValueError("candidate pool must contain at least two entities")
    examples: List[RankingExample] = []
    for pair_index, pair in enumerate(pairs):
        rng = np.random.default_rng(derive_seed(seed, "ranking", pair.mention.mention_id, str(pair_index)))
        negatives: List[Entity] = []
        attempts = 0
        while len(negatives) < num_candidates - 1 and attempts < 10 * num_candidates:
            candidate = pool[int(rng.integers(0, len(pool)))]
            attempts += 1
            if candidate.entity_id == pair.entity.entity_id:
                continue
            if any(candidate.entity_id == chosen.entity_id for chosen in negatives):
                continue
            negatives.append(candidate)
        candidates = negatives + [pair.entity]
        gold_position = int(rng.integers(0, len(candidates)))
        candidates[gold_position], candidates[-1] = candidates[-1], candidates[gold_position]
        examples.append(
            RankingExample(
                mention=pair.mention,
                candidates=candidates,
                gold_index=gold_position,
                weight=pair.weight,
            )
        )
    return examples


class CrossEncoderTrainer:
    """Training loop over :class:`RankingExample` lists."""

    def __init__(self, model: CrossEncoder, config: Optional[CrossEncoderConfig] = None) -> None:
        self.model = model
        self.config = config or model.config

    def fit(
        self,
        examples: Sequence[RankingExample],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train with Adam; per-example weights scale each example's loss."""
        if not examples:
            raise ValueError("cannot train on an empty example list")
        epochs = self.config.epochs if epochs is None else epochs
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)
        examples = list(examples)

        self.model.train()
        try:
            for epoch in range(epochs):
                losses: List[float] = []
                for index_batch in batched_indices(len(examples), self.config.batch_size, rng):
                    batch_examples = [examples[i] for i in index_batch]
                    total = None
                    weight_sum = 0.0
                    for example in batch_examples:
                        example_loss = self.model.example_loss(example) * example.weight
                        total = example_loss if total is None else total + example_loss
                        weight_sum += example.weight
                    if total is None or weight_sum == 0.0:
                        continue
                    loss = total * (1.0 / max(weight_sum, 1e-8))
                    self.model.zero_grad()
                    loss.backward()
                    clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                    optimizer.step()
                    losses.append(loss.item())
                mean_loss = float(np.mean(losses)) if losses else float("nan")
                history.add("loss", mean_loss)
                _LOGGER.debug("cross-encoder epoch %d loss %.4f", epoch, mean_loss)
        finally:
            self.model.eval()
        return history
