"""Cross-encoder: candidate-ranking stage of BLINK (Section IV-B1).

The cross-encoder reads the concatenation of the mention-in-context and one
candidate entity and produces a scalar relevance score; ranking the candidates
retrieved by the bi-encoder with these scores yields the final prediction.
Training maximises the gold candidate against the other retrieved candidates
(softmax cross entropy over the candidate list), again with optional
per-example weights for the meta-learning loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..nn import Adam, Linear, Module, Tensor, TransformerEncoder, clip_grad_norm, concatenate, no_grad
from ..nn import functional as F
from ..text.normalization import normalize_text, simple_tokenize, strip_disambiguation
from ..text.tokenizer import Tokenizer
from ..utils.config import CrossEncoderConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices, derive_seed
from .encoders import encode_cross_inputs

_LOGGER = get_logger("crossencoder")

NUM_LEXICAL_FEATURES = 3

# The interaction features live in [0, 1] while pooled transformer activations
# are an order of magnitude larger; scaling the features keeps the scoring
# head from ignoring them early in training.
LEXICAL_FEATURE_SCALE = 5.0


def lexical_features(mention: Mention, candidate: Entity) -> np.ndarray:
    """Hand-crafted mention/candidate interaction features.

    A pre-trained BERT cross-encoder captures lexical interactions between the
    mention side and the entity side implicitly; the tiny from-scratch encoder
    used offline cannot, so we expose three explicit interaction signals to
    the scoring head (the head still has to *learn* how much to trust them):

    1. surface ↔ title token overlap (the exact-match shortcut),
    2. context ↔ description token overlap (the semantic signal),
    3. exact title match indicator.
    """
    surface_tokens = set(simple_tokenize(mention.surface))
    title_tokens = set(simple_tokenize(candidate.title))
    context_tokens = set(simple_tokenize(f"{mention.context_left} {mention.context_right}"))
    description_tokens = set(simple_tokenize(candidate.description))

    def jaccard(left: set, right: set) -> float:
        if not left or not right:
            return 0.0
        return len(left & right) / len(left | right)

    exact = float(
        normalize_text(mention.surface) in {
            normalize_text(candidate.title),
            normalize_text(strip_disambiguation(candidate.title)),
        }
    )
    return np.array([jaccard(surface_tokens, title_tokens),
                     jaccard(context_tokens, description_tokens),
                     exact], dtype=np.float64)


@dataclass
class RankingExample:
    """One training example: a mention, its candidates, and the gold index."""

    mention: Mention
    candidates: List[Entity]
    gold_index: int
    weight: float = 1.0


class CrossEncoder(Module):
    """Single-tower encoder over concatenated mention/entity text + score head."""

    def __init__(self, config: CrossEncoderConfig, tokenizer: Tokenizer) -> None:
        super().__init__()
        self.config = config
        self.tokenizer = tokenizer
        encoder_config = config.encoder
        vocab_size = max(encoder_config.vocab_size, tokenizer.vocab_size)
        self.encoder = TransformerEncoder(
            vocab_size=vocab_size,
            model_dim=encoder_config.model_dim,
            num_layers=encoder_config.num_layers,
            num_heads=encoder_config.num_heads,
            hidden_dim=encoder_config.hidden_dim,
            max_length=encoder_config.max_length,
            dropout=encoder_config.dropout,
            padding_idx=tokenizer.pad_id,
            seed=config.seed,
        )
        self.score_head = Linear(
            encoder_config.model_dim + NUM_LEXICAL_FEATURES,
            1,
            rng=np.random.default_rng(config.seed + 7),
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def scores_from_ids(self, cross_ids: np.ndarray, features: Optional[np.ndarray] = None) -> Tensor:
        """Scalar score for each row of concatenated mention/candidate ids."""
        pooled = self.encoder.encode(cross_ids)
        if features is None:
            features = np.zeros((len(cross_ids), NUM_LEXICAL_FEATURES))
        combined = concatenate([pooled, Tensor(np.asarray(features, dtype=np.float64))], axis=1)
        return self.score_head(combined).reshape(len(cross_ids))

    def _candidate_features(self, mention: Mention, candidates: Sequence[Entity]) -> np.ndarray:
        features = np.stack([lexical_features(mention, candidate) for candidate in candidates])
        return features * LEXICAL_FEATURE_SCALE

    def score_candidates(self, mention: Mention, candidates: Sequence[Entity]) -> np.ndarray:
        """Inference-time candidate scores for one mention."""
        ids = encode_cross_inputs(mention, candidates, self.tokenizer, self.config.encoder.max_length)
        features = self._candidate_features(mention, candidates)
        self.eval()
        with no_grad():
            return self.scores_from_ids(ids, features).data.copy()

    def rank(self, mention: Mention, candidates: Sequence[Entity]) -> List[Entity]:
        """Candidates sorted by decreasing score."""
        scores = self.score_candidates(mention, candidates)
        order = np.argsort(-scores)
        return [candidates[i] for i in order]

    def predict(self, mention: Mention, candidates: Sequence[Entity]) -> Optional[Entity]:
        """Best candidate, or None when the candidate list is empty."""
        if not candidates:
            return None
        return self.rank(mention, candidates)[0]

    # ------------------------------------------------------------------
    # Loss
    # ------------------------------------------------------------------
    def example_loss(self, example: RankingExample):
        """Cross entropy of the gold candidate within the candidate list."""
        ids = encode_cross_inputs(
            example.mention, example.candidates, self.tokenizer, self.config.encoder.max_length
        )
        features = self._candidate_features(example.mention, example.candidates)
        scores = self.scores_from_ids(ids, features).reshape(1, len(example.candidates))
        return F.cross_entropy(scores, [example.gold_index], reduction="sum")


def build_ranking_examples(
    pairs: Sequence[EntityMentionPair],
    candidate_pool: Sequence[Entity],
    num_candidates: int,
    seed: int = 0,
) -> List[RankingExample]:
    """Create ranking examples with random negatives from ``candidate_pool``.

    The gold entity always occupies a random slot among ``num_candidates``
    candidates; negatives are sampled without replacement from the pool.
    """
    if num_candidates < 2:
        raise ValueError("num_candidates must be at least 2")
    pool = [entity for entity in candidate_pool]
    if len(pool) < 2:
        raise ValueError("candidate pool must contain at least two entities")
    examples: List[RankingExample] = []
    for pair_index, pair in enumerate(pairs):
        rng = np.random.default_rng(derive_seed(seed, "ranking", pair.mention.mention_id, str(pair_index)))
        negatives: List[Entity] = []
        attempts = 0
        while len(negatives) < num_candidates - 1 and attempts < 10 * num_candidates:
            candidate = pool[int(rng.integers(0, len(pool)))]
            attempts += 1
            if candidate.entity_id == pair.entity.entity_id:
                continue
            if any(candidate.entity_id == chosen.entity_id for chosen in negatives):
                continue
            negatives.append(candidate)
        candidates = negatives + [pair.entity]
        gold_position = int(rng.integers(0, len(candidates)))
        candidates[gold_position], candidates[-1] = candidates[-1], candidates[gold_position]
        examples.append(
            RankingExample(
                mention=pair.mention,
                candidates=candidates,
                gold_index=gold_position,
                weight=pair.weight,
            )
        )
    return examples


class CrossEncoderTrainer:
    """Training loop over :class:`RankingExample` lists."""

    def __init__(self, model: CrossEncoder, config: Optional[CrossEncoderConfig] = None) -> None:
        self.model = model
        self.config = config or model.config

    def fit(
        self,
        examples: Sequence[RankingExample],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train with Adam; per-example weights scale each example's loss."""
        if not examples:
            raise ValueError("cannot train on an empty example list")
        epochs = self.config.epochs if epochs is None else epochs
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)
        examples = list(examples)

        self.model.train()
        for epoch in range(epochs):
            losses: List[float] = []
            for index_batch in batched_indices(len(examples), self.config.batch_size, rng):
                batch_examples = [examples[i] for i in index_batch]
                total = None
                weight_sum = 0.0
                for example in batch_examples:
                    example_loss = self.model.example_loss(example) * example.weight
                    total = example_loss if total is None else total + example_loss
                    weight_sum += example.weight
                if total is None or weight_sum == 0.0:
                    continue
                loss = total * (1.0 / max(weight_sum, 1e-8))
                self.model.zero_grad()
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            history.add("loss", mean_loss)
            _LOGGER.debug("cross-encoder epoch %d loss %.4f", epoch, mean_loss)
        self.model.eval()
        return history
