"""Domain ("world") specifications for the synthetic Zeshel substitute.

The Zeshel benchmark (Logeswaran et al., 2019) collects 16 fandom wikis split
into 8 training, 4 development and 4 test domains (Table III of the paper).
We keep the same domain names and split so every experiment reads exactly like
the paper; the content of each domain is procedurally generated from the
specifications below.

Two knobs control the *structure* the paper's analysis relies on:

* ``gap`` — how much of a domain's vocabulary is domain-specific rather than
  shared with the general (training) domains.  The paper measures this gap in
  Table VIII and finds Forgotten Realms / Star Trek close to the general
  domain while Lego / YuGiOh are far; we encode that ordering directly.
* ``entity_scale`` — relative number of entities, so the generated Table III
  keeps the qualitative size ordering of the original benchmark (Military and
  StarWars large, YuGiOh and Lego small).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

TRAIN_SPLIT = "train"
DEV_SPLIT = "dev"
TEST_SPLIT = "test"


@dataclass(frozen=True)
class WorldSpec:
    """Specification of one synthetic domain."""

    name: str
    split: str
    gap: float
    entity_scale: float
    name_parts: Tuple[str, ...]
    topics: Tuple[str, ...]
    entity_types: Tuple[str, ...] = ("character", "location", "item", "episode", "faction")


# Shared vocabulary that every domain draws from; the mixing ratio between
# this pool and the domain-specific ``topics`` pool is governed by ``gap``.
GENERAL_TOPICS: Tuple[str, ...] = (
    "story", "battle", "season", "leader", "ancient", "legend", "power",
    "journey", "secret", "alliance", "weapon", "kingdom", "captain", "crew",
    "mission", "shadow", "council", "guardian", "empire", "rebel", "hero",
    "villain", "artifact", "prophecy", "war", "peace", "city", "ship",
    "master", "apprentice", "temple", "fortress", "signal", "archive",
)

_WORLD_SPECS: Tuple[WorldSpec, ...] = (
    WorldSpec(
        name="american_football", split=TRAIN_SPLIT, gap=0.35, entity_scale=1.2,
        name_parts=("brady", "lombardi", "halas", "madden", "packers", "giants",
                     "bears", "cowboys", "eagles", "steelers", "colts", "rams"),
        topics=("quarterback", "touchdown", "playoff", "draft", "stadium", "coach",
                 "offense", "defense", "league", "franchise", "receiver", "lineman"),
    ),
    WorldSpec(
        name="doctor_who", split=TRAIN_SPLIT, gap=0.4, entity_scale=1.4,
        name_parts=("gallifrey", "tardis", "dalek", "cyber", "sontaran", "torchwood",
                     "skaro", "rassilon", "omega", "koschei", "jelly", "baker"),
        topics=("regeneration", "timelord", "vortex", "companion", "sonic", "paradox",
                 "timeline", "exterminate", "dimension", "rift", "screwdriver", "doctor"),
    ),
    WorldSpec(
        name="fallout", split=TRAIN_SPLIT, gap=0.45, entity_scale=0.8,
        name_parts=("vault", "megaton", "ncr", "enclave", "brotherhood", "raider",
                     "ghoul", "pipboy", "nuka", "wasteland", "mutant", "dogmeat"),
        topics=("radiation", "bunker", "bottlecap", "settlement", "stimpak", "overseer",
                 "reactor", "scavenger", "terminal", "holotape", "perk", "wanderer"),
    ),
    WorldSpec(
        name="final_fantasy", split=TRAIN_SPLIT, gap=0.45, entity_scale=0.7,
        name_parts=("cloud", "sephiroth", "midgar", "chocobo", "moogle", "cid",
                     "shinra", "ivalice", "zanarkand", "alexandria", "tifa", "noctis"),
        topics=("summon", "crystal", "limit", "materia", "airship", "esper",
                 "dungeon", "boss", "magic", "sword", "quest", "guild"),
    ),
    WorldSpec(
        name="military", split=TRAIN_SPLIT, gap=0.3, entity_scale=2.0,
        name_parts=("normandy", "patton", "sherman", "bradley", "panzer", "luftwaffe",
                     "midway", "okinawa", "ardennes", "anzio", "pacific", "atlantic"),
        topics=("division", "regiment", "offensive", "artillery", "infantry", "armored",
                 "campaign", "operation", "battalion", "commander", "squadron", "front"),
    ),
    WorldSpec(
        name="pro_wrestling", split=TRAIN_SPLIT, gap=0.4, entity_scale=0.6,
        name_parts=("hogan", "austin", "undertaker", "kane", "mysterio", "flair",
                     "wrestlemania", "smackdown", "nitro", "starrcade", "cena", "rock"),
        topics=("championship", "heel", "face", "promo", "feud", "tagteam",
                 "cage", "belt", "ring", "manager", "submission", "ladder"),
    ),
    WorldSpec(
        name="starwars", split=TRAIN_SPLIT, gap=0.35, entity_scale=1.8,
        name_parts=("tatooine", "coruscant", "skywalker", "kenobi", "vader", "yoda",
                     "endor", "hoth", "dagobah", "mandalore", "corellia", "alderaan"),
        topics=("jedi", "sith", "lightsaber", "force", "blaster", "droid",
                 "senate", "clone", "padawan", "holocron", "starfighter", "smuggler"),
    ),
    WorldSpec(
        name="world_of_warcraft", split=TRAIN_SPLIT, gap=0.45, entity_scale=1.0,
        name_parts=("azeroth", "orgrimmar", "stormwind", "thrall", "sylvanas", "arthas",
                     "draenor", "ironforge", "teldrassil", "gnome", "tauren", "worgen"),
        topics=("raid", "horde", "alliance", "mana", "dungeon", "questline",
                 "shaman", "paladin", "warlock", "expansion", "loot", "guild"),
    ),
    WorldSpec(
        name="coronation_street", split=DEV_SPLIT, gap=0.4, entity_scale=0.8,
        name_parts=("weatherfield", "rovers", "barlow", "platt", "tilsley", "baldwin",
                     "duckworth", "webster", "battersby", "roberts", "grimshaw", "connor"),
        topics=("cobbles", "factory", "landlady", "affair", "wedding", "funeral",
                 "barmaid", "corner", "shop", "street", "family", "scandal"),
    ),
    WorldSpec(
        name="muppets", split=DEV_SPLIT, gap=0.45, entity_scale=0.9,
        name_parts=("kermit", "piggy", "fozzie", "gonzo", "scooter", "rowlf",
                     "animal", "beaker", "statler", "waldorf", "swedish", "rizzo"),
        topics=("sketch", "theater", "song", "puppet", "show", "stage",
                 "audience", "band", "comedy", "guest", "frog", "chicken"),
    ),
    WorldSpec(
        name="ice_hockey", split=DEV_SPLIT, gap=0.35, entity_scale=1.1,
        name_parts=("gretzky", "orr", "canadiens", "rangers", "bruins", "maple",
                     "penguins", "flyers", "islanders", "oilers", "stanley", "selke"),
        topics=("goaltender", "defenseman", "powerplay", "faceoff", "hattrick", "playoff",
                 "rink", "slapshot", "penalty", "forward", "trophy", "franchise"),
    ),
    WorldSpec(
        name="elder_scrolls", split=DEV_SPLIT, gap=0.45, entity_scale=0.9,
        name_parts=("tamriel", "skyrim", "morrowind", "cyrodiil", "daedric", "dovahkiin",
                     "whiterun", "solitude", "dunmer", "nord", "argonian", "khajiit"),
        topics=("shout", "dragonborn", "guild", "daedra", "mage", "thane",
                 "province", "shrine", "scroll", "enchanting", "jarl", "ruin"),
    ),
    # --- Test domains -------------------------------------------------
    WorldSpec(
        name="forgotten_realms", split=TEST_SPLIT, gap=0.25, entity_scale=0.7,
        name_parts=("waterdeep", "baldur", "neverwinter", "drizzt", "elminster", "menzoberranzan",
                     "cormyr", "thay", "calimshan", "icewind", "harpers", "zhentarim"),
        topics=("wizard", "rogue", "dragon", "dungeon", "realm", "sword",
                 "temple", "guild", "quest", "mage", "lord", "prophecy"),
    ),
    WorldSpec(
        name="lego", split=TEST_SPLIT, gap=0.6, entity_scale=0.45,
        name_parts=("bionicle", "ninjago", "chima", "minifigure", "brickset", "octan",
                     "technic", "duplo", "mindstorms", "friends", "creator", "modular"),
        topics=("brick", "set", "minifig", "stud", "baseplate", "instruction",
                 "piece", "theme", "wave", "mold", "printed", "release"),
    ),
    WorldSpec(
        name="star_trek", split=TEST_SPLIT, gap=0.3, entity_scale=1.5,
        name_parts=("enterprise", "voyager", "picard", "spock", "klingon", "romulan",
                     "vulcan", "ferengi", "borg", "starfleet", "bajor", "cardassia"),
        topics=("warp", "phaser", "tricorder", "shuttle", "federation", "transporter",
                 "nebula", "starbase", "ensign", "admiral", "anomaly", "diplomat"),
    ),
    WorldSpec(
        name="yugioh", split=TEST_SPLIT, gap=0.6, entity_scale=0.45,
        name_parts=("yugi", "kaiba", "joey", "exodia", "obelisk", "slifer",
                     "millennium", "duelist", "pegasus", "marik", "jaden", "yusei"),
        topics=("duel", "card", "monster", "trap", "spell", "summon",
                 "tribute", "deck", "lifepoints", "fusion", "synchro", "archetype"),
    ),
)


WORLDS: Dict[str, WorldSpec] = {spec.name: spec for spec in _WORLD_SPECS}

TRAIN_DOMAINS: List[str] = [spec.name for spec in _WORLD_SPECS if spec.split == TRAIN_SPLIT]
DEV_DOMAINS: List[str] = [spec.name for spec in _WORLD_SPECS if spec.split == DEV_SPLIT]
TEST_DOMAINS: List[str] = [spec.name for spec in _WORLD_SPECS if spec.split == TEST_SPLIT]

# Pretty names used when rendering paper-style tables.
DISPLAY_NAMES: Dict[str, str] = {
    "american_football": "American Football",
    "doctor_who": "Doctor Who",
    "fallout": "Fallout",
    "final_fantasy": "Final Fantasy",
    "military": "Military",
    "pro_wrestling": "Pro Wrestling",
    "starwars": "StarWars",
    "world_of_warcraft": "World of Warcraft",
    "coronation_street": "Coronation Street",
    "muppets": "Muppets",
    "ice_hockey": "Ice Hockey",
    "elder_scrolls": "Elder Scrolls",
    "forgotten_realms": "Forgotten Realms",
    "lego": "Lego",
    "star_trek": "Star Trek",
    "yugioh": "YuGiOh",
}


def get_world(name: str) -> WorldSpec:
    """Return the spec for ``name`` (raises KeyError with known names listed)."""
    if name not in WORLDS:
        known = ", ".join(sorted(WORLDS))
        raise KeyError(f"unknown domain {name!r}; known domains: {known}")
    return WORLDS[name]


def domains_for_split(split: str) -> List[str]:
    """Return the domain names belonging to a split (train / dev / test)."""
    if split not in (TRAIN_SPLIT, DEV_SPLIT, TEST_SPLIT):
        raise ValueError(f"unknown split {split!r}")
    return [spec.name for spec in _WORLD_SPECS if spec.split == split]
