"""Persistence for the synthetic corpus (JSON export / import).

Examples and downstream users can generate a corpus once, save it, and reload
it later without re-running the generator.  The format is plain JSON so it is
diff-able and easy to inspect.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from ..kb.entity import Entity, Mention
from ..kb.knowledge_base import KnowledgeBase
from ..utils.config import CorpusConfig
from .documents import Document, DocumentCollection
from .worlds import get_world
from .zeshel import Corpus, DomainData

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def save_corpus(corpus: Corpus, path: PathLike) -> Path:
    """Serialise a corpus to a JSON file and return the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "config": corpus.config.to_dict(),
        "domains": {
            name: {
                "split": data.split,
                "entities": [entity.to_dict() for entity in data.entities],
                "mentions": [mention.to_dict() for mention in data.mentions],
                "documents": [document.to_dict() for document in data.documents],
                "aliases": data.aliases,
            }
            for name, data in corpus.domains.items()
        },
        "triples": [
            {"head": triple.head, "relation": triple.relation, "tail": triple.tail}
            for triple in corpus.kb.triples()
        ],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def load_corpus(path: PathLike) -> Corpus:
    """Load a corpus written by :func:`save_corpus`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported corpus format version {version!r}")

    config = CorpusConfig(**payload["config"])
    kb = KnowledgeBase(name="zeshel-synthetic")
    domains: Dict[str, DomainData] = {}
    collection = DocumentCollection()

    for name, blob in payload["domains"].items():
        get_world(name)  # validates the domain name
        entities = [Entity.from_dict(record) for record in blob["entities"]]
        mentions = [Mention.from_dict(record) for record in blob["mentions"]]
        documents = [Document.from_dict(record) for record in blob["documents"]]
        data = DomainData(
            name=name,
            split=blob["split"],
            entities=entities,
            mentions=mentions,
            documents=documents,
            aliases=dict(blob.get("aliases", {})),
        )
        domains[name] = data
        kb.add_entities(entities)
        for document in documents:
            collection.add(document)

    for triple in payload.get("triples", []):
        if triple["head"] in kb and triple["tail"] in kb:
            kb.add_triple(triple["head"], triple["relation"], triple["tail"])

    return Corpus(kb=kb, domains=domains, documents=collection, config=config)


def corpus_summary(corpus: Corpus) -> List[Dict[str, object]]:
    """Flat per-domain summary rows (domain, split, entities, mentions)."""
    rows: List[Dict[str, object]] = []
    for name, data in sorted(corpus.domains.items()):
        rows.append(
            {
                "domain": name,
                "split": data.split,
                "entities": len(data.entities),
                "mentions": len(data.mentions),
                "documents": len(data.documents),
            }
        )
    return rows
