"""Synthetic Zeshel-substitute corpus generator.

The original benchmark is scraped from fandom.com wikis and cannot be
downloaded in this offline environment, so this module procedurally generates
a corpus with the same *structure* (see DESIGN.md):

* 16 domains named and split exactly as in Table III (8 train / 4 dev / 4 test);
* each domain has its own entity dictionary with titles, descriptions and a
  relation graph;
* labelled mentions whose surface forms follow the paper's four overlap
  categories, with Low Overlap as the majority class;
* unlabelled domain documents for the rewriter's denoising task;
* a controllable "domain gap": test domains share more (Forgotten Realms,
  Star Trek) or less (Lego, YuGiOh) vocabulary with the training domains,
  which is what drives the transfer-gap analysis of Tables VII–IX.

Linking is learnable because every entity owns a small set of *keyword*
tokens that appear both in its description and in the contexts of its
mentions; surface forms alone are deliberately insufficient (Low Overlap
mentions use aliases that do not share tokens with the title).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..kb.knowledge_base import KnowledgeBase
from ..utils.config import CorpusConfig
from ..utils.rng import derive_seed
from .categories import OverlapCategory
from .documents import Document, DocumentCollection
from .worlds import GENERAL_TOPICS, WORLDS, WorldSpec, get_world

# Target proportions of the four overlap categories among generated mentions.
# The paper observes that the majority of Zeshel samples are Low Overlap.
CATEGORY_PROPORTIONS: Dict[OverlapCategory, float] = {
    OverlapCategory.LOW_OVERLAP: 0.45,
    OverlapCategory.HIGH_OVERLAP: 0.25,
    OverlapCategory.AMBIGUOUS_SUBSTRING: 0.15,
    OverlapCategory.MULTIPLE_CATEGORIES: 0.15,
}

_DISAMBIGUATION_PHRASES = ("series", "character", "location", "episode", "item", "faction")

_DESCRIPTION_TEMPLATES = (
    "{title} is a {type_word} known for the {kw0} and the {kw1} in the {flavor} {general}",
    "{title} appears during the {kw0} {general} and commands the {kw1} near {related}",
    "{title} was first seen in the {flavor} {kw0} alongside {related} and the {kw1}",
    "{title} leads the {kw0} {type_word} and guards the {kw1} of the {flavor} {general}",
)

_CONTEXT_TEMPLATES = (
    ("during the {kw0} the", "joined the {kw1} against the {flavor} {general}"),
    ("the {general} of the {kw0} reached", "before the {kw1} could fall to the {flavor}"),
    ("many remember how", "defended the {kw0} with the {kw1} in that {general}"),
    ("after the {flavor} {general} the", "returned to the {kw0} carrying the {kw1}"),
    ("reports about the {kw0} say that", "was behind the {kw1} all along"),
)

_NICKNAME_PREFIXES = ("old", "young", "lost", "great", "silent", "crimson", "iron", "swift")
_NICKNAME_NOUNS = ("one", "wanderer", "founder", "champion", "outsider", "veteran", "stranger", "keeper")


@dataclass
class DomainData:
    """All generated material for one domain."""

    name: str
    split: str
    entities: List[Entity]
    mentions: List[Mention]
    documents: List[Document]
    aliases: Dict[str, str] = field(default_factory=dict)

    @property
    def entity_index(self) -> Dict[str, Entity]:
        return {entity.entity_id: entity for entity in self.entities}


@dataclass
class Corpus:
    """The full 16-domain synthetic benchmark."""

    kb: KnowledgeBase
    domains: Dict[str, DomainData]
    documents: DocumentCollection
    config: CorpusConfig

    def domain(self, name: str) -> DomainData:
        if name not in self.domains:
            known = ", ".join(sorted(self.domains))
            raise KeyError(f"unknown domain {name!r}; known: {known}")
        return self.domains[name]

    def mentions(self, domain: str) -> List[Mention]:
        return list(self.domain(domain).mentions)

    def entities(self, domain: str) -> List[Entity]:
        return list(self.domain(domain).entities)

    def pairs(self, domain: str) -> List[EntityMentionPair]:
        """Gold (mention, entity) pairs for one domain."""
        data = self.domain(domain)
        index = data.entity_index
        return [
            EntityMentionPair(mention=mention, entity=index[mention.gold_entity_id], source="gold")
            for mention in data.mentions
            if mention.gold_entity_id in index
        ]

    def domain_names(self, split: Optional[str] = None) -> List[str]:
        if split is None:
            return sorted(self.domains)
        return sorted(name for name, data in self.domains.items() if data.split == split)

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Per-domain entity / mention / document counts (Table III analogue)."""
        return {
            name: {
                "entities": len(data.entities),
                "mentions": len(data.mentions),
                "documents": len(data.documents),
            }
            for name, data in sorted(self.domains.items())
        }

    def all_texts(self) -> List[str]:
        """Every piece of text in the corpus (used to build tokenizer vocabularies)."""
        texts: List[str] = []
        for data in self.domains.values():
            for entity in data.entities:
                texts.append(entity.title)
                texts.append(entity.description)
            for mention in data.mentions:
                texts.append(mention.surface)
                texts.append(mention.context)
            for document in data.documents:
                texts.append(document.text)
        return texts


class ZeshelGenerator:
    """Procedural generator for the synthetic benchmark."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate(self, domains: Optional[Sequence[str]] = None) -> Corpus:
        """Generate the corpus for ``domains`` (default: all 16 worlds)."""
        names = list(domains) if domains is not None else sorted(WORLDS)
        kb = KnowledgeBase(name="zeshel-synthetic")
        domain_data: Dict[str, DomainData] = {}
        collection = DocumentCollection()
        for name in names:
            data = self.generate_domain(name)
            domain_data[name] = data
            kb.add_entities(data.entities)
            for document in data.documents:
                collection.add(document)
            self._add_relations(kb, data)
        return Corpus(kb=kb, domains=domain_data, documents=collection, config=self.config)

    def generate_domain(self, name: str) -> DomainData:
        """Generate entities, mentions and documents for one domain."""
        spec = get_world(name)
        rng = np.random.default_rng(derive_seed(self.config.seed, "domain", name))
        entity_count = max(8, int(round(self.config.entities_per_domain * spec.entity_scale)))
        # Test domains always get the full mention budget so the paper's
        # 50 / 50 / rest few-shot split (Table IV) is always possible.
        mention_scale = 1.0 if spec.split == "test" else max(spec.entity_scale, 0.6)
        mention_count = max(20, int(round(self.config.mentions_per_domain * mention_scale)))

        entities, aliases, keywords = self._generate_entities(spec, entity_count, rng)
        mentions = self._generate_mentions(spec, entities, aliases, keywords, mention_count, rng)
        documents = self._generate_documents(spec, entities, keywords, rng)
        return DomainData(
            name=name,
            split=spec.split,
            entities=entities,
            mentions=mentions,
            documents=documents,
            aliases=aliases,
        )

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def _topic_word(self, spec: WorldSpec, rng: np.random.Generator) -> str:
        """Draw a topic word; ``spec.gap`` controls domain-specific probability."""
        if rng.random() < spec.gap:
            return str(rng.choice(spec.topics))
        return str(rng.choice(GENERAL_TOPICS))

    def _generate_entities(
        self,
        spec: WorldSpec,
        count: int,
        rng: np.random.Generator,
    ) -> Tuple[List[Entity], Dict[str, str], Dict[str, List[str]]]:
        entities: List[Entity] = []
        aliases: Dict[str, str] = {}
        keywords: Dict[str, List[str]] = {}
        used_titles: set = set()

        for index in range(count):
            entity_id = f"{spec.name}:{index}"
            entity_type = str(rng.choice(spec.entity_types))
            base_name = self._make_name(spec, rng, used_titles)
            has_phrase = rng.random() < 0.18
            title = f"{base_name} ({rng.choice(_DISAMBIGUATION_PHRASES)})" if has_phrase else base_name
            used_titles.add(base_name.lower())

            entity_keywords = self._make_keywords(spec, rng)
            keywords[entity_id] = entity_keywords
            aliases[entity_id] = self._make_alias(rng)

            description = self._make_description(
                spec, title, entity_type, entity_keywords, rng,
                related=self._related_title(entities, rng),
            )
            entities.append(
                Entity(
                    entity_id=entity_id,
                    title=title,
                    description=description,
                    domain=spec.name,
                    entity_type=entity_type,
                )
            )
        return entities, aliases, keywords

    def _make_name(self, spec: WorldSpec, rng: np.random.Generator, used: set) -> str:
        for _ in range(40):
            parts = rng.choice(spec.name_parts, size=int(rng.integers(1, 3)), replace=False)
            suffix = str(rng.choice(spec.topics)) if rng.random() < 0.5 else ""
            tokens = [str(part).capitalize() for part in parts]
            if suffix:
                tokens.append(suffix.capitalize())
            name = " ".join(tokens)
            if name.lower() not in used:
                return name
        # Fall back to a numbered name to guarantee uniqueness.
        return f"{str(rng.choice(spec.name_parts)).capitalize()} {rng.integers(0, 10_000)}"

    def _make_keywords(self, spec: WorldSpec, rng: np.random.Generator) -> List[str]:
        pool = list(spec.topics) + list(GENERAL_TOPICS)
        picked = rng.choice(len(pool), size=4, replace=False)
        return [pool[i] for i in picked]

    def _make_alias(self, rng: np.random.Generator) -> str:
        return f"the {rng.choice(_NICKNAME_PREFIXES)} {rng.choice(_NICKNAME_NOUNS)}"

    def _related_title(self, existing: List[Entity], rng: np.random.Generator) -> str:
        if not existing:
            return "the old order"
        return existing[int(rng.integers(0, len(existing)))].title

    def _make_description(
        self,
        spec: WorldSpec,
        title: str,
        entity_type: str,
        entity_keywords: List[str],
        rng: np.random.Generator,
        related: str,
    ) -> str:
        sentences = []
        for sentence_index in range(max(1, self.config.description_sentences)):
            template = _DESCRIPTION_TEMPLATES[int(rng.integers(0, len(_DESCRIPTION_TEMPLATES)))]
            sentences.append(
                template.format(
                    title=title,
                    type_word=entity_type,
                    kw0=entity_keywords[(2 * sentence_index) % len(entity_keywords)],
                    kw1=entity_keywords[(2 * sentence_index + 1) % len(entity_keywords)],
                    flavor=self._topic_word(spec, rng),
                    general=str(rng.choice(GENERAL_TOPICS)),
                    related=related,
                )
            )
        return ". ".join(sentences) + "."

    # ------------------------------------------------------------------
    # Mentions
    # ------------------------------------------------------------------
    def _generate_mentions(
        self,
        spec: WorldSpec,
        entities: List[Entity],
        aliases: Dict[str, str],
        keywords: Dict[str, List[str]],
        count: int,
        rng: np.random.Generator,
    ) -> List[Mention]:
        categories = list(CATEGORY_PROPORTIONS)
        probabilities = np.array([CATEGORY_PROPORTIONS[c] for c in categories])
        probabilities = probabilities / probabilities.sum()

        entities_with_phrase = [entity for entity in entities if "(" in entity.title]
        mentions: List[Mention] = []
        for index in range(count):
            category = categories[int(rng.choice(len(categories), p=probabilities))]
            # Multiple Categories requires a title with a disambiguation
            # phrase; sample the entity from that sub-pool when possible so
            # the generated distribution matches the target proportions.
            if category == OverlapCategory.MULTIPLE_CATEGORIES and entities_with_phrase:
                entity = entities_with_phrase[int(rng.integers(0, len(entities_with_phrase)))]
            else:
                entity = entities[int(rng.integers(0, len(entities)))]
            surface = self._surface_for_category(entity, aliases[entity.entity_id], category, rng)
            left, right = self._make_context(spec, entity, keywords[entity.entity_id], entities, rng)
            mentions.append(
                Mention(
                    mention_id=f"{spec.name}:m{index}",
                    surface=surface,
                    context_left=left,
                    context_right=right,
                    domain=spec.name,
                    gold_entity_id=entity.entity_id,
                    source="gold",
                )
            )
        return mentions

    def _surface_for_category(
        self,
        entity: Entity,
        alias: str,
        category: OverlapCategory,
        rng: np.random.Generator,
    ) -> str:
        title_tokens = entity.title.split()
        base_title = entity.title.split(" (")[0]
        if category == OverlapCategory.HIGH_OVERLAP:
            return entity.title
        if category == OverlapCategory.MULTIPLE_CATEGORIES:
            if "(" in entity.title:
                return base_title
            return entity.title
        if category == OverlapCategory.AMBIGUOUS_SUBSTRING:
            if len(title_tokens) > 1:
                return str(title_tokens[int(rng.integers(0, len(title_tokens) - 1))])
            return entity.title
        return alias

    def _make_context(
        self,
        spec: WorldSpec,
        entity: Entity,
        entity_keywords: List[str],
        entities: List[Entity],
        rng: np.random.Generator,
    ) -> Tuple[str, str]:
        left_template, right_template = _CONTEXT_TEMPLATES[int(rng.integers(0, len(_CONTEXT_TEMPLATES)))]
        values = {
            "kw0": entity_keywords[int(rng.integers(0, len(entity_keywords)))],
            "kw1": entity_keywords[int(rng.integers(0, len(entity_keywords)))],
            "flavor": self._topic_word(spec, rng),
            "general": str(rng.choice(GENERAL_TOPICS)),
        }
        left = left_template.format(**values)
        right = right_template.format(**values)
        # Occasionally mention another entity in the context, which is what
        # makes exact-match-only training fall into the shortcut the paper
        # describes (Table II).
        if len(entities) > 1 and rng.random() < 0.3:
            other = entities[int(rng.integers(0, len(entities)))]
            if other.entity_id != entity.entity_id:
                right = f"{right} together with {other.title.split(' (')[0].lower()}"
        return left, right

    # ------------------------------------------------------------------
    # Documents & relations
    # ------------------------------------------------------------------
    def _generate_documents(
        self,
        spec: WorldSpec,
        entities: List[Entity],
        keywords: Dict[str, List[str]],
        rng: np.random.Generator,
    ) -> List[Document]:
        documents: List[Document] = []
        count = max(4, len(entities) // 2)
        for index in range(count):
            entity = entities[int(rng.integers(0, len(entities)))]
            extra_topic = self._topic_word(spec, rng)
            body = (
                f"{entity.description} The {extra_topic} of {entity.title} remains part of the "
                f"{str(rng.choice(GENERAL_TOPICS))} records. Scholars of {spec.name.replace('_', ' ')} "
                f"still debate the {keywords[entity.entity_id][0]}."
            )
            documents.append(
                Document(
                    document_id=f"{spec.name}:d{index}",
                    domain=spec.name,
                    title=f"Notes on {entity.title}",
                    text=body,
                )
            )
        return documents

    def _add_relations(self, kb: KnowledgeBase, data: DomainData) -> None:
        rng = np.random.default_rng(derive_seed(self.config.seed, "relations", data.name))
        relations = ("related_to", "appears_in", "part_of", "allied_with")
        ids = [entity.entity_id for entity in data.entities]
        if len(ids) < 2:
            return
        for entity_id in ids:
            for _ in range(2):
                other = ids[int(rng.integers(0, len(ids)))]
                if other == entity_id:
                    continue
                kb.add_triple(entity_id, str(rng.choice(relations)), other)


def generate_corpus(
    config: Optional[CorpusConfig] = None,
    domains: Optional[Sequence[str]] = None,
) -> Corpus:
    """Convenience wrapper: build a :class:`Corpus` from a config."""
    return ZeshelGenerator(config).generate(domains=domains)
