"""Mention / entity-title overlap categories (Section VI-A of the paper).

Based on the string overlap between a mention and its gold entity's title the
paper divides samples into four categories:

* **High Overlap** — mention text equals the title text.
* **Multiple Categories** — title is the mention text followed by a
  parenthesised disambiguation phrase (e.g. ``SORA (satellite)``).
* **Ambiguous Substring** — mention is a proper substring of the title.
* **Low Overlap** — everything else.
"""

from __future__ import annotations

from collections import Counter
from enum import Enum
from typing import Dict, Iterable, Tuple

from ..kb.entity import Entity, Mention
from ..text.normalization import normalize_text, strip_disambiguation


class OverlapCategory(str, Enum):
    """The four mention-title overlap categories of the paper."""

    HIGH_OVERLAP = "high_overlap"
    MULTIPLE_CATEGORIES = "multiple_categories"
    AMBIGUOUS_SUBSTRING = "ambiguous_substring"
    LOW_OVERLAP = "low_overlap"


def categorize(mention_surface: str, entity_title: str) -> OverlapCategory:
    """Classify one (mention surface, entity title) pair."""
    surface = normalize_text(mention_surface)
    title = normalize_text(entity_title)
    title_without_phrase = normalize_text(strip_disambiguation(entity_title))

    if surface == title:
        return OverlapCategory.HIGH_OVERLAP
    if surface and surface == title_without_phrase and title_without_phrase != title:
        return OverlapCategory.MULTIPLE_CATEGORIES
    if surface and surface in title:
        return OverlapCategory.AMBIGUOUS_SUBSTRING
    return OverlapCategory.LOW_OVERLAP


def categorize_pair(mention: Mention, entity: Entity) -> OverlapCategory:
    """Classify a mention against its gold entity."""
    return categorize(mention.surface, entity.title)


def category_distribution(
    pairs: Iterable[Tuple[Mention, Entity]],
) -> Dict[OverlapCategory, float]:
    """Fraction of pairs in each category (all four keys always present)."""
    counts: Counter = Counter(categorize_pair(mention, entity) for mention, entity in pairs)
    total = sum(counts.values())
    return {
        category: (counts.get(category, 0) / total if total else 0.0)
        for category in OverlapCategory
    }
