"""Few-shot splits of the test domains (Table IV of the paper).

The paper splits each of the four test domains into 50 training (seed)
samples, 50 development samples and keeps the rest for testing.  This module
implements that split plus the sized sub-sampling used by Figure 1 (training
sets of 10..500 samples) and Table VIII (500-sample fine-tuning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..kb.entity import EntityMentionPair, Mention
from ..utils.rng import derive_seed
from .zeshel import Corpus


@dataclass
class FewShotSplit:
    """Seed / dev / test mention split for one domain."""

    domain: str
    train: List[Mention]
    dev: List[Mention]
    test: List[Mention]

    def sizes(self) -> Dict[str, int]:
        return {"train": len(self.train), "dev": len(self.dev), "test": len(self.test)}


def split_domain(
    corpus: Corpus,
    domain: str,
    seed_size: int = 50,
    dev_size: int = 50,
    seed: int = 13,
) -> FewShotSplit:
    """Split a domain's mentions into seed / dev / test partitions.

    Raises ``ValueError`` when the domain has too few mentions to leave at
    least one test sample.
    """
    mentions = corpus.mentions(domain)
    if len(mentions) <= seed_size + dev_size:
        raise ValueError(
            f"domain {domain!r} has {len(mentions)} mentions, need more than "
            f"{seed_size + dev_size} for a few-shot split"
        )
    rng = np.random.default_rng(derive_seed(seed, "few_shot", domain))
    order = rng.permutation(len(mentions))
    shuffled = [mentions[i] for i in order]
    train = [m.__class__(**{**m.to_dict(), "source": "seed"}) for m in shuffled[:seed_size]]
    dev = shuffled[seed_size:seed_size + dev_size]
    test = shuffled[seed_size + dev_size:]
    return FewShotSplit(domain=domain, train=train, dev=dev, test=test)


def split_all_test_domains(
    corpus: Corpus,
    seed_size: int = 50,
    dev_size: int = 50,
    seed: int = 13,
) -> Dict[str, FewShotSplit]:
    """Split every test domain (Table IV)."""
    return {
        domain: split_domain(corpus, domain, seed_size=seed_size, dev_size=dev_size, seed=seed)
        for domain in corpus.domain_names(split="test")
    }


def sample_training_subset(
    split: FewShotSplit,
    size: int,
    corpus: Corpus,
    seed: int = 13,
) -> List[Mention]:
    """Return ``size`` in-domain training mentions.

    Figure 1 and Table VIII train on larger in-domain sets than the 50-sample
    seed; those extra samples are drawn from the *test* partition (and the
    evaluation then uses the remaining test mentions), mimicking the paper's
    "select 500 samples for training" protocol.
    """
    if size <= len(split.train):
        return split.train[:size]
    pool = split.train + split.test
    if size > len(pool):
        raise ValueError(f"requested {size} samples but only {len(pool)} are available")
    rng = np.random.default_rng(derive_seed(seed, "subset", split.domain, str(size)))
    extra_indices = rng.choice(len(split.test), size=size - len(split.train), replace=False)
    return split.train + [split.test[i] for i in sorted(extra_indices)]


def remaining_test_mentions(split: FewShotSplit, used: Sequence[Mention]) -> List[Mention]:
    """Test mentions not present in ``used`` (by mention id)."""
    used_ids = {mention.mention_id for mention in used}
    return [mention for mention in split.test if mention.mention_id not in used_ids]


def pairs_from_mentions(corpus: Corpus, domain: str, mentions: Sequence[Mention], source: str) -> List[EntityMentionPair]:
    """Materialise (mention, gold entity) pairs for a mention list."""
    index = corpus.domain(domain).entity_index
    pairs: List[EntityMentionPair] = []
    for mention in mentions:
        if mention.gold_entity_id is None or mention.gold_entity_id not in index:
            continue
        pairs.append(
            EntityMentionPair(mention=mention, entity=index[mention.gold_entity_id], source=source)
        )
    return pairs


def table4_rows(
    splits: Dict[str, FewShotSplit],
) -> List[Dict[str, object]]:
    """Rows of Table IV: per-domain train/dev/test sizes."""
    rows: List[Dict[str, object]] = []
    for domain in sorted(splits):
        sizes = splits[domain].sizes()
        rows.append({"domain": domain, **sizes})
    return rows
