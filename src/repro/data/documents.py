"""Unlabelled domain documents, used for the rewriter's denoising fine-tune.

The paper's ``syn*`` variant adapts T5 to a target domain with an
unsupervised sentinel-masking (denoising) task run over raw in-domain text.
A :class:`Document` is the synthetic analogue of a fandom wiki page: a title
plus a few sentences of body text drawn from the same generator that writes
entity descriptions and mention contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List


@dataclass(frozen=True)
class Document:
    """A raw text page belonging to one domain (no linking labels)."""

    document_id: str
    domain: str
    title: str
    text: str

    def sentences(self) -> List[str]:
        """Split the body into rough sentences."""
        return [part.strip() for part in self.text.split(".") if part.strip()]

    def to_dict(self) -> Dict[str, str]:
        return {
            "document_id": self.document_id,
            "domain": self.domain,
            "title": self.title,
            "text": self.text,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "Document":
        return cls(**payload)


class DocumentCollection:
    """Documents grouped by domain."""

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._by_domain: Dict[str, List[Document]] = {}
        for document in documents:
            self.add(document)

    def add(self, document: Document) -> None:
        self._by_domain.setdefault(document.domain, []).append(document)

    def domains(self) -> List[str]:
        return sorted(self._by_domain)

    def for_domain(self, domain: str) -> List[Document]:
        return list(self._by_domain.get(domain, []))

    def texts(self, domain: str) -> List[str]:
        """Raw body texts for one domain (denoising training corpus)."""
        return [document.text for document in self._by_domain.get(domain, [])]

    def __len__(self) -> int:
        return sum(len(docs) for docs in self._by_domain.values())

    def __iter__(self):
        for documents in self._by_domain.values():
            yield from documents
