"""Dataset substrate: the synthetic Zeshel-substitute benchmark."""

from .categories import OverlapCategory, categorize, categorize_pair, category_distribution
from .documents import Document, DocumentCollection
from .few_shot import (
    FewShotSplit,
    pairs_from_mentions,
    remaining_test_mentions,
    sample_training_subset,
    split_all_test_domains,
    split_domain,
    table4_rows,
)
from .loaders import corpus_summary, load_corpus, save_corpus
from .worlds import (
    DEV_DOMAINS,
    DISPLAY_NAMES,
    TEST_DOMAINS,
    TRAIN_DOMAINS,
    WORLDS,
    WorldSpec,
    domains_for_split,
    get_world,
)
from .zeshel import CATEGORY_PROPORTIONS, Corpus, DomainData, ZeshelGenerator, generate_corpus

__all__ = [
    "OverlapCategory",
    "categorize",
    "categorize_pair",
    "category_distribution",
    "Document",
    "DocumentCollection",
    "FewShotSplit",
    "split_domain",
    "split_all_test_domains",
    "sample_training_subset",
    "remaining_test_mentions",
    "pairs_from_mentions",
    "table4_rows",
    "save_corpus",
    "load_corpus",
    "corpus_summary",
    "WorldSpec",
    "WORLDS",
    "TRAIN_DOMAINS",
    "DEV_DOMAINS",
    "TEST_DOMAINS",
    "DISPLAY_NAMES",
    "get_world",
    "domains_for_split",
    "Corpus",
    "DomainData",
    "ZeshelGenerator",
    "generate_corpus",
    "CATEGORY_PROPORTIONS",
]
