"""Knowledge-base substrate: entities, mentions, graphs and alias tables."""

from .alias_table import AliasTable
from .entity import Entity, EntityMentionPair, Mention
from .knowledge_base import KnowledgeBase, Triple

__all__ = [
    "Entity",
    "Mention",
    "EntityMentionPair",
    "KnowledgeBase",
    "Triple",
    "AliasTable",
]
