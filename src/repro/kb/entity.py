"""Core data types: entities, mentions and (weakly) labelled pairs."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class Entity:
    """A knowledge-base entity (a fandom page in the Zeshel setting).

    Attributes
    ----------
    entity_id:
        Globally unique identifier (``"<domain>:<index>"`` in the synthetic
        corpus).
    title:
        Page title; may carry a parenthesised disambiguation phrase.
    description:
        First paragraph of the page — what the entity encoder reads.
    domain:
        The specialised dictionary (world) the entity belongs to.
    entity_type:
        Coarse semantic type used by the corpus generator (character, place,
        item, ...); handy for analysis, never shown to the linker.
    """

    entity_id: str
    title: str
    description: str
    domain: str
    entity_type: str = "thing"

    def to_dict(self) -> Dict[str, str]:
        return {
            "entity_id": self.entity_id,
            "title": self.title,
            "description": self.description,
            "domain": self.domain,
            "entity_type": self.entity_type,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "Entity":
        return cls(**payload)


@dataclass(frozen=True)
class Mention:
    """A textual mention with its surrounding context.

    ``context_left`` and ``context_right`` hold the words before/after the
    surface form inside the source document, mirroring the Zeshel format.
    """

    mention_id: str
    surface: str
    context_left: str
    context_right: str
    domain: str
    gold_entity_id: Optional[str] = None
    source: str = "gold"

    @property
    def context(self) -> str:
        """Full context with the surface form in place."""
        return f"{self.context_left} {self.surface} {self.context_right}".strip()

    def with_surface(self, new_surface: str, source: Optional[str] = None) -> "Mention":
        """Return a copy with the surface form replaced (mention rewriting)."""
        return replace(self, surface=new_surface, source=source or self.source)

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {
            "mention_id": self.mention_id,
            "surface": self.surface,
            "context_left": self.context_left,
            "context_right": self.context_right,
            "domain": self.domain,
            "gold_entity_id": self.gold_entity_id,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Optional[str]]) -> "Mention":
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class EntityMentionPair:
    """A (mention, entity) training pair with provenance and an optional weight.

    ``source`` records how the pair was produced — ``"gold"`` for annotated
    data, ``"seed"`` for the few-shot seed set, ``"exact_match"`` /
    ``"rewritten"`` for weak supervision, ``"noise"`` for the corrupted pairs
    of Figure 4.  ``weight`` is the meta-learned importance (defaults to 1).
    """

    mention: Mention
    entity: Entity
    source: str = "gold"
    weight: float = 1.0

    def reweighted(self, weight: float) -> "EntityMentionPair":
        return replace(self, weight=weight)

    def relabelled(self, entity: Entity, source: Optional[str] = None) -> "EntityMentionPair":
        """Return a copy linked to a different entity (used for noise injection)."""
        return replace(self, entity=entity, source=source or self.source)
