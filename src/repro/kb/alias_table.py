"""Alias table mapping normalised surface forms to candidate entities.

The paper notes that many production linkers depend on powerful KB resources
such as alias tables and frequency statistics, which are *not* available in
specialised few-shot domains.  We still implement the structure because (a)
the Name Matching baseline is an alias lookup with only exact titles, and (b)
it provides a fast candidate-generation fallback for analysis.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from ..text.normalization import normalize_text, strip_disambiguation
from .entity import Entity
from .knowledge_base import KnowledgeBase


class AliasTable:
    """Surface form → [(entity_id, prior)] lookup with frequency priors."""

    def __init__(self) -> None:
        self._aliases: Dict[str, Dict[str, int]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_alias(self, surface: str, entity_id: str, count: int = 1) -> None:
        """Register ``surface`` as an alias of ``entity_id`` with a count."""
        key = normalize_text(surface)
        if not key:
            return
        bucket = self._aliases[key]
        bucket[entity_id] = bucket.get(entity_id, 0) + count

    @classmethod
    def from_knowledge_base(cls, kb: KnowledgeBase) -> "AliasTable":
        """Build a table from entity titles (with and without disambiguation)."""
        table = cls()
        for entity in kb:
            table.add_alias(entity.title, entity.entity_id)
            stripped = strip_disambiguation(entity.title)
            if stripped != entity.title:
                table.add_alias(stripped, entity.entity_id)
        return table

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[str, str]]) -> "AliasTable":
        """Build from (surface, entity_id) pairs, e.g. observed links."""
        table = cls()
        for surface, entity_id in pairs:
            table.add_alias(surface, entity_id)
        return table

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def candidates(self, surface: str, top_k: Optional[int] = None) -> List[Tuple[str, float]]:
        """Return (entity_id, prior probability) sorted by prior, best first."""
        key = normalize_text(surface)
        bucket = self._aliases.get(key, {})
        total = sum(bucket.values())
        if not total:
            return []
        ranked = sorted(bucket.items(), key=lambda item: (-item[1], item[0]))
        if top_k is not None:
            ranked = ranked[:top_k]
        return [(entity_id, count / total) for entity_id, count in ranked]

    def best(self, surface: str) -> Optional[str]:
        """Most frequent entity for a surface form, or None."""
        ranked = self.candidates(surface, top_k=1)
        return ranked[0][0] if ranked else None

    def lookup_entities(self, surface: str, kb: KnowledgeBase, top_k: Optional[int] = None) -> List[Entity]:
        """Resolve candidate ids through a knowledge base."""
        return [kb.get(entity_id) for entity_id, _ in self.candidates(surface, top_k=top_k) if entity_id in kb]

    def __contains__(self, surface: str) -> bool:
        return normalize_text(surface) in self._aliases

    def __len__(self) -> int:
        return len(self._aliases)

    def ambiguity(self) -> float:
        """Average number of entities per alias (1.0 = unambiguous table)."""
        if not self._aliases:
            return 0.0
        return sum(len(bucket) for bucket in self._aliases.values()) / len(self._aliases)
