"""Knowledge base ``G = {E, R, T}``: entities, relations and fact triples.

The paper defines a knowledge base as a directed graph whose nodes are
entities and whose edges are subject-property-object triples (Section II-A).
The synthetic corpus generator populates one :class:`KnowledgeBase` per
domain; the linking models only read entity titles/descriptions, while the
graph structure is used by corpus generation (related entities co-occur in
contexts) and available for downstream analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from .entity import Entity


@dataclass(frozen=True)
class Triple:
    """A fact triple (head entity id, relation, tail entity id)."""

    head: str
    relation: str
    tail: str


class KnowledgeBase:
    """A collection of entities plus a typed relation graph."""

    def __init__(self, name: str = "kb") -> None:
        self.name = name
        self._entities: Dict[str, Entity] = {}
        self._title_index: Dict[str, List[str]] = {}
        self._graph = nx.MultiDiGraph(name=name)

    # ------------------------------------------------------------------
    # Entities
    # ------------------------------------------------------------------
    def add_entity(self, entity: Entity) -> None:
        """Add an entity; raises on duplicate ids."""
        if entity.entity_id in self._entities:
            raise KeyError(f"duplicate entity id {entity.entity_id!r}")
        self._entities[entity.entity_id] = entity
        self._graph.add_node(entity.entity_id)
        key = entity.title.lower()
        self._title_index.setdefault(key, []).append(entity.entity_id)

    def add_entities(self, entities: Iterable[Entity]) -> None:
        for entity in entities:
            self.add_entity(entity)

    def get(self, entity_id: str) -> Entity:
        if entity_id not in self._entities:
            raise KeyError(f"unknown entity id {entity_id!r}")
        return self._entities[entity_id]

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def __iter__(self) -> Iterator[Entity]:
        return iter(self._entities.values())

    def entities(self, domain: Optional[str] = None) -> List[Entity]:
        """All entities, optionally filtered to one domain."""
        if domain is None:
            return list(self._entities.values())
        return [entity for entity in self._entities.values() if entity.domain == domain]

    def entity_ids(self, domain: Optional[str] = None) -> List[str]:
        return [entity.entity_id for entity in self.entities(domain)]

    def domains(self) -> List[str]:
        return sorted({entity.domain for entity in self._entities.values()})

    def find_by_title(self, title: str) -> List[Entity]:
        """Case-insensitive exact title lookup (used by Name Matching)."""
        return [self._entities[eid] for eid in self._title_index.get(title.lower(), [])]

    # ------------------------------------------------------------------
    # Relations / triples
    # ------------------------------------------------------------------
    def add_triple(self, head: str, relation: str, tail: str) -> Triple:
        """Add a fact triple; both endpoints must already exist."""
        if head not in self._entities:
            raise KeyError(f"unknown head entity {head!r}")
        if tail not in self._entities:
            raise KeyError(f"unknown tail entity {tail!r}")
        self._graph.add_edge(head, tail, relation=relation)
        return Triple(head=head, relation=relation, tail=tail)

    def triples(self) -> List[Triple]:
        return [
            Triple(head=head, relation=data.get("relation", ""), tail=tail)
            for head, tail, data in self._graph.edges(data=True)
        ]

    def relations(self) -> List[str]:
        return sorted({data.get("relation", "") for _, _, data in self._graph.edges(data=True)})

    def neighbors(self, entity_id: str) -> List[Entity]:
        """Entities directly connected to ``entity_id`` (either direction)."""
        if entity_id not in self._entities:
            raise KeyError(f"unknown entity id {entity_id!r}")
        ids = set(self._graph.successors(entity_id)) | set(self._graph.predecessors(entity_id))
        return [self._entities[eid] for eid in sorted(ids)]

    def degree(self, entity_id: str) -> int:
        return int(self._graph.degree(entity_id))

    # ------------------------------------------------------------------
    # Stats / export
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, int]:
        """Summary counts (entities, triples, relations, domains)."""
        return {
            "entities": len(self._entities),
            "triples": self._graph.number_of_edges(),
            "relations": len(self.relations()),
            "domains": len(self.domains()),
        }

    def subgraph(self, domain: str) -> "KnowledgeBase":
        """Return a new KB restricted to one domain (triples kept if both ends match)."""
        sub = KnowledgeBase(name=f"{self.name}:{domain}")
        sub.add_entities(self.entities(domain))
        for triple in self.triples():
            if triple.head in sub and triple.tail in sub:
                sub.add_triple(triple.head, triple.relation, triple.tail)
        return sub

    def to_records(self) -> List[Dict[str, str]]:
        """Entity payloads as plain dictionaries (for JSON export)."""
        return [entity.to_dict() for entity in self._entities.values()]

    @classmethod
    def from_records(
        cls,
        records: Sequence[Dict[str, str]],
        triples: Sequence[Tuple[str, str, str]] = (),
        name: str = "kb",
    ) -> "KnowledgeBase":
        kb = cls(name=name)
        kb.add_entities(Entity.from_dict(record) for record in records)
        for head, relation, tail in triples:
            kb.add_triple(head, relation, tail)
        return kb
