"""Seed-set construction (Section V and VI-C).

Under the **few-shot** setting the seed is simply the 50 labelled in-domain
samples.  Under **zero-shot domain transfer** there are no labelled samples,
so the paper builds a heuristic seed from the synthetic data itself:

1. *Filtering*: keep synthetic pairs that look clean — non-empty surface, no
   trivial overlap between mention and entity title, sensible length.
2. *Self-match*: for entities whose title carries a disambiguation phrase
   ("SORA (satellite)"), the title without the phrase is located in the
   entity's own description and used as a mention, filling the
   Multiple-Categories gap of the synthetic data.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..text.normalization import has_disambiguation, normalize_text, strip_disambiguation
from ..utils.rng import derive_seed

SEED_SOURCE = "seed"


def filter_synthetic_for_seed(
    pairs: Sequence[EntityMentionPair],
    max_surface_tokens: int = 6,
) -> List[EntityMentionPair]:
    """Rule-based filtering of synthetic pairs into seed candidates.

    Keeps pairs whose generated surface is non-empty, reasonably short and
    does *not* trivially equal the entity title (those teach nothing beyond
    exact matching).
    """
    kept: List[EntityMentionPair] = []
    for pair in pairs:
        surface = normalize_text(pair.mention.surface)
        title = normalize_text(pair.entity.title)
        if not surface:
            continue
        if surface == title or surface == normalize_text(strip_disambiguation(pair.entity.title)):
            continue
        if len(surface.split()) > max_surface_tokens:
            continue
        kept.append(
            EntityMentionPair(
                mention=pair.mention.with_surface(pair.mention.surface, source=SEED_SOURCE),
                entity=pair.entity,
                source=SEED_SOURCE,
            )
        )
    return kept


def self_match_pairs(entities: Sequence[Entity]) -> List[EntityMentionPair]:
    """Self-match heuristic for disambiguation-phrase titles.

    For an entity titled ``"SORA (satellite)"`` whose description contains the
    bare name ``"SORA"``, a mention with that surface is created from the
    description text.  Mimics the paper's strategy for covering the
    Multiple-Categories type in the zero-shot seed.
    """
    pairs: List[EntityMentionPair] = []
    for entity in entities:
        if not has_disambiguation(entity.title):
            continue
        bare = strip_disambiguation(entity.title)
        description = entity.description
        position = description.lower().find(bare.lower())
        if position < 0:
            continue
        left = description[:position].strip()
        right = description[position + len(bare):].strip()
        mention = Mention(
            mention_id=f"{entity.entity_id}::selfmatch",
            surface=bare,
            context_left=left[-120:],
            context_right=right[:120],
            domain=entity.domain,
            gold_entity_id=entity.entity_id,
            source=SEED_SOURCE,
        )
        pairs.append(EntityMentionPair(mention=mention, entity=entity, source=SEED_SOURCE))
    return pairs


def build_zero_shot_seed(
    synthetic_pairs: Sequence[EntityMentionPair],
    entities: Sequence[Entity],
    size: int = 50,
    seed: int = 13,
) -> List[EntityMentionPair]:
    """Heuristic seed for zero-shot transfer: filtered synthetic + self-match."""
    if size <= 0:
        raise ValueError("seed size must be positive")
    candidates = self_match_pairs(entities) + filter_synthetic_for_seed(synthetic_pairs)
    if not candidates:
        raise ValueError("no seed candidates could be constructed")
    if len(candidates) <= size:
        return candidates
    rng = np.random.default_rng(derive_seed(seed, "zero_shot_seed"))
    chosen = rng.choice(len(candidates), size=size, replace=False)
    return [candidates[i] for i in sorted(chosen)]


def few_shot_seed(
    pairs: Sequence[EntityMentionPair],
    size: Optional[int] = None,
) -> List[EntityMentionPair]:
    """Few-shot seed: the labelled in-domain pairs (optionally truncated)."""
    seeded = [
        EntityMentionPair(mention=pair.mention, entity=pair.entity, source=SEED_SOURCE)
        for pair in pairs
    ]
    return seeded if size is None else seeded[:size]
