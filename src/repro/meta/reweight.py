"""Learning to reweight synthetic data (Algorithm 1 of the paper).

The paper follows Ren et al. (2018): each training step draws a synthetic
batch and a small seed batch from the target domain, takes a *virtual* SGD
step on the synthetic batch with per-example weights ``w`` initialised at
zero, measures the seed loss at the updated parameters, and sets each weight
to the (rectified, normalised) negative gradient of that seed loss w.r.t. the
example's weight.

With ``w = 0`` the virtual step does not move the parameters, so the
meta-gradient has a closed form:

.. math::

   \\frac{\\partial L_{seed}(\\hat\\phi(w))}{\\partial w_j}\\Big|_{w=0}
   = -\\alpha \\; \\langle \\nabla_\\phi l_j(\\phi_t),\\; \\nabla_\\phi L_{seed}(\\phi_t) \\rangle

i.e. a synthetic example receives positive weight exactly when its gradient
points in the same direction as the seed-set gradient.  The implementation
offers two ways to obtain the per-example gradients:

* **exact** — backpropagate each synthetic example separately (slow but
  exactly Eq. 12);
* **jvp** — a finite-difference Jacobian-vector product: evaluate each
  example's loss at ``φ`` and at ``φ + ε·g_seed`` and divide by ``ε``.  This
  costs two batched forward passes instead of ``n`` backward passes and
  matches the exact dot products to first order.

Both paths end with the paper's Eq. 13–14: negative weights are clipped to
zero and the remainder is normalised to sum to one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..kb.entity import EntityMentionPair
from ..utils.config import MetaConfig
from ..utils.logging import get_logger

_LOGGER = get_logger("meta.reweight")

# A "loss function" maps a list of pairs to a repro.nn Tensor scalar (sum of
# per-pair losses) or, with reduction="none", to a vector of per-pair losses.
LossFunction = Callable[..., object]


@dataclass
class ReweightResult:
    """Outcome of one reweighting step."""

    weights: np.ndarray
    raw_gradients: np.ndarray
    seed_gradient_norm: float

    @property
    def selected_fraction(self) -> float:
        """Fraction of synthetic examples with strictly positive weight."""
        if self.weights.size == 0:
            return 0.0
        return float((self.weights > 0).mean())


def normalize_weights(raw: np.ndarray) -> np.ndarray:
    """Eq. 13–14: clip negatives to zero then normalise to sum to one."""
    clipped = np.maximum(np.asarray(raw, dtype=np.float64), 0.0)
    total = clipped.sum()
    if total <= 0.0:
        return clipped  # all-zero weights: the batch is skipped by callers
    return clipped / total


class ExampleReweighter:
    """Compute per-example weights for synthetic batches.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`; the reweighter only needs
        ``zero_grad`` / ``gradient_vector`` / ``flatten_parameters`` /
        ``assign_flat_parameters``.
    loss_fn:
        Callable ``loss_fn(pairs, reduction=...)`` returning a scalar Tensor
        for ``reduction="sum"``/``"mean"`` and a vector Tensor of per-example
        losses for ``reduction="none"``.
    config:
        Meta-learning hyper-parameters (inner learning rate, JVP epsilon...).
    """

    def __init__(self, model, loss_fn: LossFunction, config: Optional[MetaConfig] = None) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.config = config or MetaConfig()

    # ------------------------------------------------------------------
    # Gradient helpers
    # ------------------------------------------------------------------
    def seed_gradient(self, seed_pairs: Sequence[EntityMentionPair]) -> np.ndarray:
        """∇_φ of the mean seed loss at the current parameters."""
        if not seed_pairs:
            raise ValueError("seed batch must not be empty")
        self.model.zero_grad()
        loss = self.loss_fn(seed_pairs, reduction="mean")
        loss.backward()
        gradient = self.model.gradient_vector()
        self.model.zero_grad()
        return gradient

    def per_example_gradient_dots(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_gradient: np.ndarray,
    ) -> np.ndarray:
        """⟨∇_φ l_j, g_seed⟩ for every synthetic example (exact path)."""
        dots = np.zeros(len(synthetic_pairs))
        for index, pair in enumerate(synthetic_pairs):
            self.model.zero_grad()
            loss = self.loss_fn([pair], reduction="sum")
            loss.backward()
            dots[index] = float(self.model.gradient_vector() @ seed_gradient)
        self.model.zero_grad()
        return dots

    def jvp_gradient_dots(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_gradient: np.ndarray,
    ) -> np.ndarray:
        """Finite-difference estimate of the same dot products (fast path).

        ``(l_j(φ + ε·g) - l_j(φ)) / ε ≈ ⟨∇_φ l_j, g⟩`` — one extra forward
        pass evaluates every example's directional derivative at once.
        """
        epsilon = self.config.jvp_epsilon
        gradient_norm = np.linalg.norm(seed_gradient)
        if gradient_norm == 0.0:
            return np.zeros(len(synthetic_pairs))
        original = self.model.flatten_parameters()
        base = np.asarray(self.loss_fn(synthetic_pairs, reduction="none").data, dtype=np.float64)
        try:
            self.model.assign_flat_parameters(original + epsilon * seed_gradient)
            shifted = np.asarray(
                self.loss_fn(synthetic_pairs, reduction="none").data, dtype=np.float64
            )
        finally:
            self.model.assign_flat_parameters(original)
        return (shifted - base) / epsilon

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def compute_weights(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        exact: Optional[bool] = None,
    ) -> ReweightResult:
        """Weights for one synthetic batch given one seed batch (Alg. 1, lines 2–9)."""
        if not synthetic_pairs:
            raise ValueError("synthetic batch must not be empty")
        use_exact = self.config.use_exact_per_example_gradients if exact is None else exact
        seed_grad = self.seed_gradient(seed_pairs)
        if use_exact:
            dots = self.per_example_gradient_dots(synthetic_pairs, seed_grad)
        else:
            dots = self.jvp_gradient_dots(synthetic_pairs, seed_grad)
        # Eq. 12: ∂L_seed/∂w_j |_{w=0} = -α ⟨g_j, g_seed⟩; the weight is the
        # *negative* of that derivative, i.e. +α ⟨g_j, g_seed⟩.
        raw = self.config.inner_learning_rate * dots
        weights = normalize_weights(raw)
        return ReweightResult(
            weights=weights,
            raw_gradients=raw,
            seed_gradient_norm=float(np.linalg.norm(seed_grad)),
        )

    # ------------------------------------------------------------------
    # Analysis helper (Figure 4)
    # ------------------------------------------------------------------
    def selection_ratio_by_source(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        batch_size: Optional[int] = None,
        seed: int = 0,
        exact: Optional[bool] = None,
    ) -> dict:
        """Fraction of examples with positive weight, grouped by pair ``source``.

        This is the quantity plotted in Figure 4: normal synthetic data should
        be selected far more often than deliberately corrupted data.
        """
        batch_size = batch_size or self.config.meta_batch_size
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(synthetic_pairs))
        selected: dict = {}
        totals: dict = {}
        for start in range(0, len(order), batch_size):
            batch = [synthetic_pairs[i] for i in order[start:start + batch_size]]
            if len(batch) < 2:
                continue
            result = self.compute_weights(batch, seed_pairs, exact=exact)
            for pair, weight in zip(batch, result.weights):
                totals[pair.source] = totals.get(pair.source, 0) + 1
                if weight > 0:
                    selected[pair.source] = selected.get(pair.source, 0) + 1
        return {
            source: selected.get(source, 0) / count
            for source, count in sorted(totals.items())
        }
