"""Learning to reweight synthetic data (Algorithm 1 of the paper).

The paper follows Ren et al. (2018): each training step draws a synthetic
batch and a small seed batch from the target domain, takes a *virtual* SGD
step on the synthetic batch with per-example weights ``w`` initialised at
zero, measures the seed loss at the updated parameters, and sets each weight
to the (rectified, normalised) negative gradient of that seed loss w.r.t. the
example's weight.

With ``w = 0`` the virtual step does not move the parameters, so the
meta-gradient has a closed form:

.. math::

   \\frac{\\partial L_{seed}(\\hat\\phi(w))}{\\partial w_j}\\Big|_{w=0}
   = -\\alpha \\; \\langle \\nabla_\\phi l_j(\\phi_t),\\; \\nabla_\\phi L_{seed}(\\phi_t) \\rangle

i.e. a synthetic example receives positive weight exactly when its gradient
points in the same direction as the seed-set gradient.  The implementation
offers two ways to obtain the per-example gradients:

* **exact** — backpropagate each synthetic example separately.  The probe
  forward is batched: examples are grouped into *probe blocks*, the
  per-example loss vector of a block is built with one shared forward pass
  (one tokenisation, one negative-pool encode), and each example's gradient
  is read off that shared graph with a one-hot-seeded backward;
* **jvp** — a finite-difference Jacobian-vector product along the *unit*
  seed direction: evaluate every example's loss at ``φ`` and at
  ``φ + ε·g/‖g‖`` and rescale the quotient by ``‖g‖``.  This costs two
  batched graph-free forward passes instead of ``n`` backward passes and
  matches the exact dot products to first order.

All probe evaluations (seed gradient included) run with the model in eval
mode: dropout draws a fresh mask per forward, so probing in training mode
would measure mask noise instead of ⟨∇l_j, g_seed⟩ — catastrophically so for
the finite difference, whose quotient divides that noise by ε.  The mode is
restored afterwards, so the *update* step of Algorithm 1 still trains with
dropout active.

Both paths end with the paper's Eq. 13–14: negative weights are clipped to
zero and the remainder is normalised to sum to one.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from ..kb.entity import EntityMentionPair
from ..nn.tensor import Tensor, no_grad
from ..utils.config import MetaConfig
from ..utils.logging import get_logger

_LOGGER = get_logger("meta.reweight")

# A "loss function" maps a list of pairs to a repro.nn Tensor scalar (sum of
# per-pair losses) or, with reduction="none", to a vector of per-pair losses.
# Objects that additionally expose ``prepare(items) -> callable(reduction=...)``
# let the reweighter tokenize a probe batch once and re-evaluate it at
# different parameters (the JVP path) or reuse its graph inputs (the exact
# path); see repro.training.tasks for such adapters.
LossFunction = Callable[..., object]


@dataclass
class ReweightResult:
    """Outcome of one reweighting step."""

    weights: np.ndarray
    raw_gradients: np.ndarray
    seed_gradient_norm: float

    @property
    def selected_fraction(self) -> float:
        """Fraction of synthetic examples with strictly positive weight."""
        if self.weights.size == 0:
            return 0.0
        return float((self.weights > 0).mean())


def normalize_weights(raw: np.ndarray) -> np.ndarray:
    """Eq. 13–14: clip negatives to zero then normalise to sum to one."""
    clipped = np.maximum(np.asarray(raw, dtype=np.float64), 0.0)
    total = clipped.sum()
    if total <= 0.0:
        return clipped  # all-zero weights: the batch is skipped by callers
    return clipped / total


def _graph_tensors(root: Tensor) -> List[Tensor]:
    """Every tensor reachable from ``root`` through recorded parents."""
    nodes: List[Tensor] = []
    seen: set = set()
    stack: List[Tensor] = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        nodes.append(node)
        stack.extend(node._parents)
    return nodes


class ExampleReweighter:
    """Compute per-example weights for synthetic batches.

    Parameters
    ----------
    model:
        Any :class:`repro.nn.Module`; the reweighter only needs
        ``zero_grad`` / ``gradient_vector`` / ``flatten_parameters`` /
        ``assign_flat_parameters`` / ``train``.
    loss_fn:
        Callable ``loss_fn(pairs, reduction=...)`` returning a scalar Tensor
        for ``reduction="sum"``/``"mean"`` and a vector Tensor of per-example
        losses for ``reduction="none"``.  When the callable also exposes
        ``prepare(pairs)`` (see :mod:`repro.training.tasks`), the probe batch
        is tokenized once and shared between the base and shifted JVP
        evaluations and across a probe block's exact backwards.
    config:
        Meta-learning hyper-parameters (inner learning rate, JVP epsilon,
        probe block size...).
    """

    def __init__(self, model, loss_fn: LossFunction, config: Optional[MetaConfig] = None) -> None:
        self.model = model
        self.loss_fn = loss_fn
        self.config = config or MetaConfig()

    # ------------------------------------------------------------------
    # Probe helpers
    # ------------------------------------------------------------------
    def _prepare_probe(self, pairs: Sequence[EntityMentionPair]) -> Callable[..., object]:
        """A closure evaluating the per-example losses at the current params.

        Prefers the loss function's ``prepare`` hook (tokenize once, evaluate
        many times); falls back to calling the loss function directly.
        """
        prepare = getattr(self.loss_fn, "prepare", None)
        if prepare is not None:
            return prepare(pairs)
        return lambda reduction="none": self.loss_fn(pairs, reduction=reduction)

    @contextmanager
    def _probe_mode(self) -> Iterator[None]:
        """Run probes in eval mode; restore the previous mode afterwards.

        Dropout draws an independent mask per forward pass, so probe losses
        evaluated in training mode are noisy point estimates: the JVP finite
        difference would divide that noise by ε, and exact per-example
        gradients would each see a different network.  Evaluation mode makes
        every probe deterministic at the current parameters.
        """
        was_training = self.model.training
        self.model.eval()
        try:
            yield
        finally:
            self.model.train(was_training)

    # ------------------------------------------------------------------
    # Gradient helpers
    # ------------------------------------------------------------------
    def seed_gradient(self, seed_pairs: Sequence[EntityMentionPair]) -> np.ndarray:
        """∇_φ of the mean seed loss at the current parameters."""
        if not seed_pairs:
            raise ValueError("seed batch must not be empty")
        with self._probe_mode():
            self.model.zero_grad()
            loss = self.loss_fn(seed_pairs, reduction="mean")
            loss.backward()
            gradient = self.model.gradient_vector()
            self.model.zero_grad()
        return gradient

    def per_example_gradient_dots(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_gradient: np.ndarray,
        block_size: Optional[int] = None,
    ) -> np.ndarray:
        """⟨∇_φ l_j, g_seed⟩ for every synthetic example (exact path).

        Examples are processed in probe blocks of ``block_size`` (default
        ``config.probe_block_size``): one batched forward builds the block's
        per-example loss vector — tokenisation and any shared sub-forward
        (e.g. the fixed negative pool of the bi-encoder loss) happen once per
        block instead of once per example — and each example's exact gradient
        is then extracted with a one-hot-seeded backward on that shared graph.
        """
        block_size = block_size or self.config.probe_block_size
        block_size = max(1, int(block_size))
        dots = np.zeros(len(synthetic_pairs))
        with self._probe_mode():
            self.model.zero_grad()
            for start in range(0, len(synthetic_pairs), block_size):
                block = list(synthetic_pairs[start:start + block_size])
                probe = self._prepare_probe(block)
                losses = probe(reduction="none")
                nodes = _graph_tensors(losses)
                seed = np.zeros(len(block))
                for offset in range(len(block)):
                    for node in nodes:
                        node.grad = None
                    seed[:] = 0.0
                    seed[offset] = 1.0
                    losses.backward(seed)
                    dots[start + offset] = float(self.model.gradient_vector() @ seed_gradient)
                for node in nodes:
                    node.grad = None
            self.model.zero_grad()
        return dots

    def jvp_gradient_dots(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_gradient: np.ndarray,
    ) -> np.ndarray:
        """Finite-difference estimate of the same dot products (fast path).

        ``‖g‖ · (l_j(φ + ε·g/‖g‖) - l_j(φ)) / ε ≈ ⟨∇_φ l_j, g⟩`` — one extra
        batched forward pass evaluates every example's directional derivative
        at once.  The perturbation is taken along the *unit* seed direction so
        the step stays inside the linear regime regardless of the seed
        gradient's magnitude, and the quotient is rescaled by ``‖g‖``
        afterwards.  Both evaluations run in eval mode (identical, dropout
        free) and graph-free.
        """
        epsilon = self.config.jvp_epsilon
        gradient_norm = float(np.linalg.norm(seed_gradient))
        if gradient_norm == 0.0:
            return np.zeros(len(synthetic_pairs))
        direction = seed_gradient / gradient_norm
        probe = self._prepare_probe(synthetic_pairs)
        original = self.model.flatten_parameters()
        with self._probe_mode():
            try:
                with no_grad():
                    base = np.array(probe(reduction="none").data, dtype=np.float64, copy=True)
                self.model.assign_flat_parameters(original + epsilon * direction)
                with no_grad():
                    shifted = np.array(probe(reduction="none").data, dtype=np.float64, copy=True)
            finally:
                self.model.assign_flat_parameters(original)
        return (shifted - base) * (gradient_norm / epsilon)

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def compute_weights(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        exact: Optional[bool] = None,
    ) -> ReweightResult:
        """Weights for one synthetic batch given one seed batch (Alg. 1, lines 2–9)."""
        if not synthetic_pairs:
            raise ValueError("synthetic batch must not be empty")
        use_exact = self.config.use_exact_per_example_gradients if exact is None else exact
        seed_grad = self.seed_gradient(seed_pairs)
        if use_exact:
            dots = self.per_example_gradient_dots(synthetic_pairs, seed_grad)
        else:
            dots = self.jvp_gradient_dots(synthetic_pairs, seed_grad)
        # Eq. 12: ∂L_seed/∂w_j |_{w=0} = -α ⟨g_j, g_seed⟩; the weight is the
        # *negative* of that derivative, i.e. +α ⟨g_j, g_seed⟩.
        raw = self.config.inner_learning_rate * dots
        weights = normalize_weights(raw)
        return ReweightResult(
            weights=weights,
            raw_gradients=raw,
            seed_gradient_norm=float(np.linalg.norm(seed_grad)),
        )

    # ------------------------------------------------------------------
    # Analysis helper (Figure 4)
    # ------------------------------------------------------------------
    def selection_ratio_by_source(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        batch_size: Optional[int] = None,
        seed: int = 0,
        exact: Optional[bool] = None,
    ) -> dict:
        """Fraction of examples with positive weight, grouped by pair ``source``.

        This is the quantity plotted in Figure 4: normal synthetic data should
        be selected far more often than deliberately corrupted data.
        """
        batch_size = batch_size or self.config.meta_batch_size
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(synthetic_pairs))
        selected: dict = {}
        totals: dict = {}
        for start in range(0, len(order), batch_size):
            batch = [synthetic_pairs[i] for i in order[start:start + batch_size]]
            if len(batch) < 2:
                continue
            result = self.compute_weights(batch, seed_pairs, exact=exact)
            for pair, weight in zip(batch, result.weights):
                totals[pair.source] = totals.get(pair.source, 0) + 1
                if weight > 0:
                    selected[pair.source] = selected.get(pair.source, 0) + 1
        return {
            source: selected.get(source, 0) / count
            for source, count in sorted(totals.items())
        }
