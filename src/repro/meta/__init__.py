"""Meta-learning core: example reweighting and the MetaBLINK trainer."""

from .metablink import (
    MetaBiEncoderTrainer,
    MetaBlinkTrainer,
    MetaCrossEncoderTrainer,
    MetaTrainingReport,
)
from .reweight import ExampleReweighter, ReweightResult, normalize_weights
from .seed import (
    SEED_SOURCE,
    build_zero_shot_seed,
    few_shot_seed,
    filter_synthetic_for_seed,
    self_match_pairs,
)

__all__ = [
    "ExampleReweighter",
    "ReweightResult",
    "normalize_weights",
    "MetaBiEncoderTrainer",
    "MetaCrossEncoderTrainer",
    "MetaBlinkTrainer",
    "MetaTrainingReport",
    "SEED_SOURCE",
    "few_shot_seed",
    "build_zero_shot_seed",
    "filter_synthetic_for_seed",
    "self_match_pairs",
]
