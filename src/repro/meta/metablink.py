"""MetaBLINK: meta-learning enhanced entity linking (Algorithms 1 and 2).

``MetaBiEncoderTrainer`` and ``MetaCrossEncoderTrainer`` implement Algorithm 1
for the two BLINK stages: every step reweights the synthetic batch using the
seed batch (via :class:`~repro.meta.reweight.ExampleReweighter`) and then
applies a normal optimiser update with the weighted loss (Eq. 15).

``MetaBlinkTrainer`` implements Algorithm 2: it owns a
:class:`~repro.linking.blink.BlinkPipeline` and trains both stages on the
synthetic data ``D_f`` under the supervision of the seed set ``D_g``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair
from ..linking.biencoder import BiEncoder
from ..linking.blink import BlinkPipeline
from ..linking.crossencoder import CrossEncoder, RankingExample, build_ranking_examples
from ..linking.encoders import unique_entities
from ..nn import Adam, clip_grad_norm
from ..text.tokenizer import Tokenizer
from ..utils.config import BiEncoderConfig, CrossEncoderConfig, MetaConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import batched_indices
from .reweight import ExampleReweighter

_LOGGER = get_logger("metablink")


@dataclass
class MetaTrainingReport:
    """Diagnostics collected while training MetaBLINK."""

    biencoder_loss: Optional[MetricHistory] = None
    crossencoder_loss: Optional[MetricHistory] = None
    mean_selected_fraction: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)


class MetaBiEncoderTrainer:
    """Algorithm 1 applied to the bi-encoder stage.

    ``negative_entities`` supplies a fixed negative pool for the per-example
    loss used by the reweighter (the in-batch loss degenerates for single
    examples); it defaults to the entities of the seed pairs at fit time.
    """

    def __init__(
        self,
        model: BiEncoder,
        config: Optional[BiEncoderConfig] = None,
        meta_config: Optional[MetaConfig] = None,
        negative_entities: Optional[Sequence[Entity]] = None,
        max_negatives: int = 16,
    ) -> None:
        self.model = model
        self.config = config or model.config
        self.meta_config = meta_config or MetaConfig()
        self.max_negatives = max_negatives
        self._negatives: List[Entity] = list(negative_entities or [])[:max_negatives]
        self.reweighter = ExampleReweighter(model, self._loss_fn, self.meta_config)

    def _loss_fn(self, pairs: Sequence[EntityMentionPair], reduction: str = "sum"):
        if self._negatives:
            return self.model.pairs_loss_with_negatives(pairs, self._negatives, reduction=reduction)
        return self.model.pairs_loss(pairs, reduction=reduction)

    def fit(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train the bi-encoder on weighted synthetic batches (Alg. 1)."""
        if not synthetic_pairs:
            raise ValueError("synthetic pair list must not be empty")
        if not seed_pairs:
            raise ValueError("seed pair list must not be empty")
        epochs = self.config.epochs if epochs is None else epochs
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)
        synthetic_pairs = list(synthetic_pairs)
        seed_pairs = list(seed_pairs)
        if not self._negatives:
            self._negatives = unique_entities(seed_pairs)[: self.max_negatives]
        selected_fractions: List[float] = []

        self.model.train()
        for epoch in range(epochs):
            losses: List[float] = []
            for index_batch in batched_indices(len(synthetic_pairs), self.config.batch_size, rng):
                if len(index_batch) < 2:
                    continue
                batch = [synthetic_pairs[i] for i in index_batch]
                seed_batch_size = min(self.meta_config.seed_batch_size, len(seed_pairs))
                seed_indices = rng.choice(len(seed_pairs), size=seed_batch_size, replace=False)
                seed_batch = [seed_pairs[i] for i in seed_indices]

                result = self.reweighter.compute_weights(batch, seed_batch)
                selected_fractions.append(result.selected_fraction)
                if result.weights.sum() <= 0:
                    continue  # nothing in this batch helps the seed loss
                weighted_batch = [
                    pair.reweighted(weight) for pair, weight in zip(batch, result.weights)
                ]
                # The update must optimise the same objective the weights were
                # derived for: _loss_fn routes to the fixed-negative loss when
                # a negative pool exists (exactly what the reweighter used).
                loss = self._loss_fn(weighted_batch, reduction="sum")
                self.model.zero_grad()
                loss.backward()
                clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                optimizer.step()
                losses.append(loss.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            history.add("loss", mean_loss)
            _LOGGER.debug("meta bi-encoder epoch %d loss %.4f", epoch, mean_loss)
        history.add("selected_fraction", float(np.mean(selected_fractions)) if selected_fractions else 0.0)
        self.model.eval()
        return history


class MetaCrossEncoderTrainer:
    """Algorithm 1 applied to the cross-encoder (ranking) stage."""

    def __init__(
        self,
        model: CrossEncoder,
        config: Optional[CrossEncoderConfig] = None,
        meta_config: Optional[MetaConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or model.config
        self.meta_config = meta_config or MetaConfig()
        self.reweighter = ExampleReweighter(model, self._loss_fn, self.meta_config)

    def _loss_fn(self, examples: Sequence[RankingExample], reduction: str = "sum"):
        losses = [self.model.example_loss(example) for example in examples]
        total = losses[0]
        for item in losses[1:]:
            total = total + item
        if reduction == "mean":
            return total * (1.0 / len(losses))
        if reduction == "sum":
            return total
        if reduction == "none":
            from ..nn import stack_tensors

            return stack_tensors([loss.reshape(1)[0] for loss in losses])
        raise ValueError(f"unknown reduction {reduction!r}")

    def fit(
        self,
        synthetic_examples: Sequence[RankingExample],
        seed_examples: Sequence[RankingExample],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train the cross-encoder on weighted synthetic ranking examples."""
        if not synthetic_examples:
            raise ValueError("synthetic example list must not be empty")
        if not seed_examples:
            raise ValueError("seed example list must not be empty")
        epochs = self.config.epochs if epochs is None else epochs
        optimizer = Adam(self.model.parameters(), lr=self.config.learning_rate)
        history = MetricHistory()
        rng = np.random.default_rng(seed)
        synthetic_examples = list(synthetic_examples)
        seed_examples = list(seed_examples)
        selected_fractions: List[float] = []

        self.model.train()
        for epoch in range(epochs):
            losses: List[float] = []
            for index_batch in batched_indices(len(synthetic_examples), self.config.batch_size, rng):
                if len(index_batch) < 2:
                    continue
                batch = [synthetic_examples[i] for i in index_batch]
                seed_batch_size = min(self.meta_config.seed_batch_size, len(seed_examples))
                seed_indices = rng.choice(len(seed_examples), size=seed_batch_size, replace=False)
                seed_batch = [seed_examples[i] for i in seed_indices]

                result = self.reweighter.compute_weights(batch, seed_batch)
                selected_fractions.append(result.selected_fraction)
                if result.weights.sum() <= 0:
                    continue
                total = None
                for example, weight in zip(batch, result.weights):
                    if weight <= 0:
                        continue
                    term = self.model.example_loss(example) * float(weight)
                    total = term if total is None else total + term
                if total is None:
                    continue
                self.model.zero_grad()
                total.backward()
                clip_grad_norm(self.model.parameters(), self.config.max_grad_norm)
                optimizer.step()
                losses.append(total.item())
            mean_loss = float(np.mean(losses)) if losses else float("nan")
            history.add("loss", mean_loss)
            _LOGGER.debug("meta cross-encoder epoch %d loss %.4f", epoch, mean_loss)
        history.add("selected_fraction", float(np.mean(selected_fractions)) if selected_fractions else 0.0)
        self.model.eval()
        return history


class MetaBlinkTrainer:
    """Algorithm 2: train a full MetaBLINK pipeline on Df (synthetic) + Dg (seed)."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        biencoder_config: Optional[BiEncoderConfig] = None,
        crossencoder_config: Optional[CrossEncoderConfig] = None,
        meta_config: Optional[MetaConfig] = None,
    ) -> None:
        self.tokenizer = tokenizer
        self.biencoder_config = biencoder_config or BiEncoderConfig()
        self.crossencoder_config = crossencoder_config or CrossEncoderConfig()
        self.meta_config = meta_config or MetaConfig()
        self.pipeline = BlinkPipeline(tokenizer, self.biencoder_config, self.crossencoder_config)

    def train(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        candidate_pool: Optional[Sequence[Entity]] = None,
        max_crossencoder_examples: Optional[int] = 80,
        train_crossencoder: bool = True,
        finetune_on_seed: bool = True,
        seed: int = 0,
    ) -> MetaTrainingReport:
        """Train both stages with meta-reweighting and return diagnostics.

        ``finetune_on_seed`` runs one final standard epoch over the seed pairs
        after the meta-weighted training — the seed set is clean in-domain
        supervision, so using it directly (in addition to using it for
        weighting) combines the strengths of synthetic and seed data the way
        the paper describes.
        """
        report = MetaTrainingReport()
        negatives = list(candidate_pool) if candidate_pool is not None else None
        bi_trainer = MetaBiEncoderTrainer(
            self.pipeline.biencoder,
            self.biencoder_config,
            self.meta_config,
            negative_entities=negatives,
        )
        report.biencoder_loss = bi_trainer.fit(synthetic_pairs, seed_pairs, seed=seed)

        selected = [report.biencoder_loss.last("selected_fraction")]
        if train_crossencoder:
            pool = list(candidate_pool) if candidate_pool is not None else unique_entities(
                list(synthetic_pairs) + list(seed_pairs)
            )
            ranking_pairs = list(synthetic_pairs)
            if max_crossencoder_examples is not None and len(ranking_pairs) > max_crossencoder_examples:
                ranking_pairs = ranking_pairs[:max_crossencoder_examples]
            synthetic_examples = build_ranking_examples(
                ranking_pairs, pool, self.crossencoder_config.num_candidates, seed=seed
            )
            seed_examples = build_ranking_examples(
                list(seed_pairs), pool, self.crossencoder_config.num_candidates, seed=seed + 1
            )
            cross_trainer = MetaCrossEncoderTrainer(
                self.pipeline.crossencoder, self.crossencoder_config, self.meta_config
            )
            report.crossencoder_loss = cross_trainer.fit(synthetic_examples, seed_examples, seed=seed)
            selected.append(report.crossencoder_loss.last("selected_fraction"))
        report.mean_selected_fraction = float(np.mean(selected))

        if finetune_on_seed:
            from ..linking.biencoder import BiEncoderTrainer
            from ..linking.crossencoder import CrossEncoderTrainer

            BiEncoderTrainer(self.pipeline.biencoder, self.biencoder_config).fit(
                list(seed_pairs), epochs=1, seed=seed + 100
            )
            if train_crossencoder:
                pool = list(candidate_pool) if candidate_pool is not None else unique_entities(
                    list(synthetic_pairs) + list(seed_pairs)
                )
                seed_examples = build_ranking_examples(
                    list(seed_pairs), pool, self.crossencoder_config.num_candidates, seed=seed + 101
                )
                CrossEncoderTrainer(self.pipeline.crossencoder, self.crossencoder_config).fit(
                    seed_examples, epochs=1, seed=seed + 101
                )
        return report

    def predict(self, mentions, entities, k: int = 16, rerank: bool = True):
        """Delegate prediction to the underlying BLINK pipeline."""
        return self.pipeline.predict(mentions, entities, k=k, rerank=rerank)
