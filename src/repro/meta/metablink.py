"""MetaBLINK: meta-learning enhanced entity linking (Algorithms 1 and 2).

``MetaBiEncoderTrainer`` and ``MetaCrossEncoderTrainer`` implement Algorithm 1
for the two BLINK stages as thin facades over the
:class:`~repro.training.MetaTrainingEngine`: every step reweights the
synthetic batch using the seed batch (via
:class:`~repro.meta.reweight.ExampleReweighter`) and then applies a
warmup-scheduled optimiser update with the weighted loss (Eq. 15).  The
engine adds gradient accumulation, per-step structured metrics and resumable
checkpointing; pass an :class:`~repro.training.EngineConfig` to turn those
knobs.

``MetaBlinkTrainer`` implements Algorithm 2: it owns a
:class:`~repro.linking.blink.BlinkPipeline` and trains both stages on the
synthetic data ``D_f`` under the supervision of the seed set ``D_g``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair
from ..linking.biencoder import BiEncoder
from ..linking.blink import BlinkPipeline
from ..linking.crossencoder import CrossEncoder, RankingExample, build_ranking_examples
from ..linking.encoders import unique_entities
from ..text.tokenizer import Tokenizer
from ..training.engine import EngineConfig, MetaTrainingEngine
from ..training.tasks import BiEncoderMetaTask, CrossEncoderMetaTask
from ..utils.config import BiEncoderConfig, CrossEncoderConfig, MetaConfig
from ..utils.logging import MetricHistory, get_logger
from .reweight import ExampleReweighter

_LOGGER = get_logger("metablink")


@dataclass
class MetaTrainingReport:
    """Diagnostics collected while training MetaBLINK."""

    biencoder_loss: Optional[MetricHistory] = None
    crossencoder_loss: Optional[MetricHistory] = None
    mean_selected_fraction: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)


class MetaBiEncoderTrainer:
    """Algorithm 1 applied to the bi-encoder stage.

    ``negative_entities`` supplies a fixed negative pool for the per-example
    loss used by the reweighter (the in-batch loss degenerates for single
    examples); it defaults to the entities of the seed pairs at fit time.
    ``engine_config`` tunes the underlying engine (accumulation, warmup,
    checkpointing); the engine that ran the last ``fit`` is exposed as
    ``self.engine`` (step metrics, checkpoint helpers).
    """

    def __init__(
        self,
        model: BiEncoder,
        config: Optional[BiEncoderConfig] = None,
        meta_config: Optional[MetaConfig] = None,
        negative_entities: Optional[Sequence[Entity]] = None,
        max_negatives: int = 16,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or model.config
        self.meta_config = meta_config or MetaConfig()
        self.engine_config = engine_config
        self.max_negatives = max_negatives
        self._negatives: List[Entity] = list(negative_entities or [])[:max_negatives]
        self.reweighter = ExampleReweighter(model, self._loss_fn, self.meta_config)
        self.engine: Optional[MetaTrainingEngine] = None

    def _loss_fn(self, pairs: Sequence[EntityMentionPair], reduction: str = "sum"):
        if self._negatives:
            return self.model.pairs_loss_with_negatives(pairs, self._negatives, reduction=reduction)
        return self.model.pairs_loss(pairs, reduction=reduction)

    def fit(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train the bi-encoder on weighted synthetic batches (Alg. 1)."""
        if not synthetic_pairs:
            raise ValueError("synthetic pair list must not be empty")
        if not seed_pairs:
            raise ValueError("seed pair list must not be empty")
        seed_pairs = list(seed_pairs)
        if not self._negatives:
            self._negatives = unique_entities(seed_pairs)[: self.max_negatives]
        task = BiEncoderMetaTask(self.model, self._negatives)
        self.engine = MetaTrainingEngine(
            self.model,
            task,
            learning_rate=self.config.learning_rate,
            batch_size=self.config.batch_size,
            epochs=self.config.epochs,
            max_grad_norm=self.config.max_grad_norm,
            meta_config=self.meta_config,
            engine_config=self.engine_config,
        )
        return self.engine.fit(list(synthetic_pairs), seed_pairs, epochs=epochs, seed=seed)


class MetaCrossEncoderTrainer:
    """Algorithm 1 applied to the cross-encoder (ranking) stage."""

    def __init__(
        self,
        model: CrossEncoder,
        config: Optional[CrossEncoderConfig] = None,
        meta_config: Optional[MetaConfig] = None,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.model = model
        self.config = config or model.config
        self.meta_config = meta_config or MetaConfig()
        self.engine_config = engine_config
        self.reweighter = ExampleReweighter(model, self._loss_fn, self.meta_config)
        self.engine: Optional[MetaTrainingEngine] = None

    def _loss_fn(self, examples: Sequence[RankingExample], reduction: str = "sum"):
        """Batched ranking loss; raises ``ValueError`` on an empty list."""
        return self.model.examples_loss(examples, reduction=reduction)

    def fit(
        self,
        synthetic_examples: Sequence[RankingExample],
        seed_examples: Sequence[RankingExample],
        epochs: Optional[int] = None,
        seed: int = 0,
    ) -> MetricHistory:
        """Train the cross-encoder on weighted synthetic ranking examples."""
        if not synthetic_examples:
            raise ValueError("synthetic example list must not be empty")
        if not seed_examples:
            raise ValueError("seed example list must not be empty")
        task = CrossEncoderMetaTask(self.model)
        self.engine = MetaTrainingEngine(
            self.model,
            task,
            learning_rate=self.config.learning_rate,
            batch_size=self.config.batch_size,
            epochs=self.config.epochs,
            max_grad_norm=self.config.max_grad_norm,
            meta_config=self.meta_config,
            engine_config=self.engine_config,
        )
        return self.engine.fit(list(synthetic_examples), list(seed_examples), epochs=epochs, seed=seed)


class MetaBlinkTrainer:
    """Algorithm 2: train a full MetaBLINK pipeline on Df (synthetic) + Dg (seed)."""

    def __init__(
        self,
        tokenizer: Tokenizer,
        biencoder_config: Optional[BiEncoderConfig] = None,
        crossencoder_config: Optional[CrossEncoderConfig] = None,
        meta_config: Optional[MetaConfig] = None,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.tokenizer = tokenizer
        self.biencoder_config = biencoder_config or BiEncoderConfig()
        self.crossencoder_config = crossencoder_config or CrossEncoderConfig()
        self.meta_config = meta_config or MetaConfig()
        self.engine_config = engine_config
        self.pipeline = BlinkPipeline(tokenizer, self.biencoder_config, self.crossencoder_config)

    def _stage_engine_config(self, stage: str) -> Optional[EngineConfig]:
        """Per-stage engine config: each stage checkpoints into its own
        subdirectory, otherwise the two engines would overwrite (and prune)
        each other's ``epoch-*.npz`` files."""
        if self.engine_config is None or not self.engine_config.checkpoint_dir:
            return self.engine_config
        return replace(
            self.engine_config,
            checkpoint_dir=str(Path(self.engine_config.checkpoint_dir) / stage),
        )

    def train(
        self,
        synthetic_pairs: Sequence[EntityMentionPair],
        seed_pairs: Sequence[EntityMentionPair],
        candidate_pool: Optional[Sequence[Entity]] = None,
        max_crossencoder_examples: Optional[int] = 80,
        train_crossencoder: bool = True,
        finetune_on_seed: bool = True,
        seed: int = 0,
    ) -> MetaTrainingReport:
        """Train both stages with meta-reweighting and return diagnostics.

        ``finetune_on_seed`` runs one final standard epoch over the seed pairs
        after the meta-weighted training — the seed set is clean in-domain
        supervision, so using it directly (in addition to using it for
        weighting) combines the strengths of synthetic and seed data the way
        the paper describes.
        """
        report = MetaTrainingReport()
        negatives = list(candidate_pool) if candidate_pool is not None else None
        bi_trainer = MetaBiEncoderTrainer(
            self.pipeline.biencoder,
            self.biencoder_config,
            self.meta_config,
            negative_entities=negatives,
            engine_config=self._stage_engine_config("biencoder"),
        )
        report.biencoder_loss = bi_trainer.fit(synthetic_pairs, seed_pairs, seed=seed)

        selected = [report.biencoder_loss.last("selected_fraction")]
        if train_crossencoder:
            pool = list(candidate_pool) if candidate_pool is not None else unique_entities(
                list(synthetic_pairs) + list(seed_pairs)
            )
            ranking_pairs = list(synthetic_pairs)
            if max_crossencoder_examples is not None and len(ranking_pairs) > max_crossencoder_examples:
                ranking_pairs = ranking_pairs[:max_crossencoder_examples]
            synthetic_examples = build_ranking_examples(
                ranking_pairs, pool, self.crossencoder_config.num_candidates, seed=seed
            )
            seed_examples = build_ranking_examples(
                list(seed_pairs), pool, self.crossencoder_config.num_candidates, seed=seed + 1
            )
            cross_trainer = MetaCrossEncoderTrainer(
                self.pipeline.crossencoder, self.crossencoder_config, self.meta_config,
                engine_config=self._stage_engine_config("crossencoder"),
            )
            report.crossencoder_loss = cross_trainer.fit(synthetic_examples, seed_examples, seed=seed)
            selected.append(report.crossencoder_loss.last("selected_fraction"))
        report.mean_selected_fraction = float(np.mean(selected))

        if finetune_on_seed:
            from ..linking.biencoder import BiEncoderTrainer
            from ..linking.crossencoder import CrossEncoderTrainer

            BiEncoderTrainer(self.pipeline.biencoder, self.biencoder_config).fit(
                list(seed_pairs), epochs=1, seed=seed + 100
            )
            if train_crossencoder:
                pool = list(candidate_pool) if candidate_pool is not None else unique_entities(
                    list(synthetic_pairs) + list(seed_pairs)
                )
                seed_examples = build_ranking_examples(
                    list(seed_pairs), pool, self.crossencoder_config.num_candidates, seed=seed + 101
                )
                CrossEncoderTrainer(self.pipeline.crossencoder, self.crossencoder_config).fit(
                    seed_examples, epochs=1, seed=seed + 101
                )
        return report

    def predict(self, mentions, entities, k: int = 16, rerank: bool = True):
        """Delegate prediction to the underlying BLINK pipeline."""
        return self.pipeline.predict(mentions, entities, k=k, rerank=rerank)
