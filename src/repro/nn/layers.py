"""Core neural layers: Linear, Embedding, LayerNorm, Dropout, feed-forward."""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor, active_compute_dtype


class Linear(Module):
    """Affine transformation ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        dtype = active_compute_dtype()
        if dtype is None:
            out = x.matmul(self.weight.T)
            if self.bias is not None:
                out = out + self.bias
            return out
        # Inference compute-dtype path: feed cached low-precision casts of
        # the parameters so the matmul runs (and stays) in that dtype.
        out = x.matmul(Tensor(self.weight.cast(dtype)).T)
        if self.bias is not None:
            out = out + Tensor(self.bias.cast(dtype))
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features})"


class Embedding(Module):
    """Trainable lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        padding_idx: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        weight = init.normal((num_embeddings, embedding_dim), rng, std=0.02)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight, name="weight")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)), name="weight")
        self.bias = Parameter(init.zeros((normalized_shape,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        dtype = active_compute_dtype()
        if dtype is None:
            return x.standardize(self.eps) * self.weight + self.bias
        return (
            x.standardize(self.eps) * Tensor(self.weight.cast(dtype))
            + Tensor(self.bias.cast(dtype))
        )

    def __repr__(self) -> str:
        return f"LayerNorm(dim={self.normalized_shape})"


class Dropout(Module):
    """Inverted dropout layer; inert in eval mode."""

    def __init__(self, rate: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must lie in [0, 1)")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, training=self.training, rng=self._rng)

    def __repr__(self) -> str:
        return f"Dropout(rate={self.rate})"


class FeedForward(Module):
    """Position-wise feed-forward block (Linear → GELU → Linear)."""

    def __init__(
        self,
        model_dim: int,
        hidden_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.expand = Linear(model_dim, hidden_dim, rng=rng)
        self.project = Linear(hidden_dim, model_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.project(F.gelu(self.expand(x))))
