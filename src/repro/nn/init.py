"""Weight-initialisation helpers for :mod:`repro.nn` modules."""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a 2-D weight matrix."""
    fan_in, fan_out = _fans(shape)
    limit = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He initialisation suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal initialisation (BERT-style std=0.02)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases, LayerNorm shift)."""
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-one initialisation (LayerNorm scale)."""
    return np.ones(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out
