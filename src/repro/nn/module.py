"""Module/Parameter abstractions, the backbone of every model in the repo.

A :class:`Module` owns named :class:`Parameter` tensors and child modules and
provides the familiar ``parameters`` / ``state_dict`` / ``load_state_dict`` /
``train`` / ``eval`` API.  The meta-learning loop relies on two extra
operations that PyTorch hides behind ``higher``:

* :meth:`Module.flatten_parameters` / :meth:`Module.assign_flat_parameters`
  allow taking a "virtual step" (the meta-forward update of Algorithm 1) and
  rolling it back without rebuilding the model.
* :meth:`Module.gradient_vector` collects all parameter gradients into a
  single flat vector, which the reweighting rule dots against per-example
  gradients.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for neural modules (layers and whole models)."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def register_module(self, name: str, module: "Module") -> None:
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs, depth first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` pairs including ``self``."""
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(parameter.size for parameter in self.parameters()))

    # ------------------------------------------------------------------
    # Train / eval / gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def gradient_vector(self) -> np.ndarray:
        """Concatenate all parameter gradients into one flat vector.

        Missing gradients contribute zeros, so the result always has the same
        length as :meth:`flatten_parameters`.
        """
        chunks = []
        for parameter in self.parameters():
            if parameter.grad is None:
                chunks.append(np.zeros(parameter.size))
            else:
                chunks.append(parameter.grad.reshape(-1))
        return np.concatenate(chunks) if chunks else np.zeros(0)

    # ------------------------------------------------------------------
    # Flat-parameter view (used for virtual meta steps)
    # ------------------------------------------------------------------
    def flatten_parameters(self) -> np.ndarray:
        """Return a copy of all parameters concatenated into one vector."""
        if not self.parameters():
            return np.zeros(0)
        return np.concatenate([parameter.data.reshape(-1).copy() for parameter in self.parameters()])

    def assign_flat_parameters(self, flat: np.ndarray) -> None:
        """Overwrite parameters in place from a flat vector."""
        offset = 0
        for parameter in self.parameters():
            size = parameter.size
            parameter.data = flat[offset:offset + size].reshape(parameter.shape).copy()
            offset += size
        if offset != flat.size:
            raise ValueError(
                f"flat parameter vector has {flat.size} entries, model expects {offset}"
            )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a name → array snapshot of all parameters."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters from a snapshot produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = [name for name in own if name not in state]
        unexpected = [name for name in state if name not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        for name, parameter in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != parameter.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {parameter.shape}"
                )
            parameter.data = value.astype(parameter.data.dtype, copy=True)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            self.register_module(name, module)
            self._order.append(name)

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class ModuleList(Module):
    """Hold an indexable list of child modules."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = f"item{len(self._order)}"
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)
