"""Multi-head attention used by the encoder and decoder stacks."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Scaled dot-product attention with multiple heads.

    Supports self-attention (``query is key is value``), cross-attention
    (decoder attending to encoder states) and both padding and causal masks.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.query_proj = Linear(model_dim, model_dim, rng=rng)
        self.key_proj = Linear(model_dim, model_dim, rng=rng)
        self.value_proj = Linear(model_dim, model_dim, rng=rng)
        self.out_proj = Linear(model_dim, model_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key: Optional[Tensor] = None,
        value: Optional[Tensor] = None,
        key_padding_mask: Optional[np.ndarray] = None,
        causal: bool = False,
    ) -> Tensor:
        """Compute attention.

        Parameters
        ----------
        query, key, value:
            Tensors of shape ``(batch, length, model_dim)``.  ``key`` and
            ``value`` default to ``query`` (self-attention).
        key_padding_mask:
            Boolean array ``(batch, key_length)``; True marks padding
            positions that must not be attended to.
        causal:
            If True, position *i* may only attend to positions ``<= i``.
        """
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))

        bias = self._build_bias(
            batch=query.shape[0],
            query_len=query.shape[1],
            key_len=key.shape[1],
            key_padding_mask=key_padding_mask,
            causal=causal,
        )
        if bias is not None:
            # Additive -1e9 bias broadcasts over the head/query axes, so no
            # (batch, heads, query, key) mask is ever materialised.
            scores = scores + bias

        weights = F.softmax(scores, axis=-1)
        weights = self.dropout(weights)
        attended = weights.matmul(v)
        return self.out_proj(self._merge_heads(attended))

    def _build_bias(
        self,
        batch: int,
        query_len: int,
        key_len: int,
        key_padding_mask: Optional[np.ndarray],
        causal: bool,
    ) -> Optional[np.ndarray]:
        bias: Optional[np.ndarray] = None
        if key_padding_mask is not None:
            padding = np.asarray(key_padding_mask, dtype=bool)
            if padding.shape != (batch, key_len):
                raise ValueError(
                    f"key_padding_mask shape {padding.shape} != {(batch, key_len)}"
                )
            bias = np.where(padding, -1e9, 0.0)[:, None, None, :]
        if causal:
            causal_bias = np.where(
                np.triu(np.ones((query_len, key_len), dtype=bool), k=1), -1e9, 0.0
            )[None, None, :, :]
            bias = causal_bias if bias is None else bias + causal_bias
        return bias
