"""Multi-head attention used by the encoder and decoder stacks."""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from . import functional as F
from .layers import Dropout, Linear
from .module import Module
from .tensor import Tensor


@lru_cache(maxsize=512)
def _causal_bias(query_len: int, key_len: int, offset: int, dtype_name: str) -> np.ndarray:
    """Memoized additive causal bias: ``-1e9`` where key ``j > offset + i``.

    ``offset`` is the absolute position of the first query row, so the same
    helper serves full forwards (``offset=0``, square) and incremental chunks
    (queries at positions ``[offset, offset + query_len)`` over ``key_len``
    cached keys).  Every decoder layer re-requests the same shapes each
    forward, so the table is built once per (shape, dtype) instead of per
    layer per step.  The returned array is shared — marked read-only.
    """
    dtype = np.dtype(dtype_name)
    bias = np.where(
        np.triu(np.ones((query_len, key_len), dtype=bool), k=1 + offset),
        dtype.type(-1e9),
        dtype.type(0.0),
    )[None, None, :, :]
    bias.flags.writeable = False
    return bias


class KVCache:
    """Preallocated per-layer K/V buffers for incremental self-attention.

    The buffers are shaped ``(batch, heads, max_length, head_dim)`` and grow
    by in-place writes: each decode step appends the new token's projected
    key/value at ``length`` instead of re-projecting the whole prefix.
    """

    def __init__(
        self,
        batch: int,
        num_heads: int,
        max_length: int,
        head_dim: int,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.k = np.zeros((batch, num_heads, max_length, head_dim), dtype=dtype)
        self.v = np.zeros_like(self.k)
        self.length = 0

    @property
    def batch(self) -> int:
        return self.k.shape[0]

    @property
    def max_length(self) -> int:
        return self.k.shape[2]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Write the new tokens' K/V at the end of the cached prefix."""
        new_tokens = k_new.shape[2]
        if self.length + new_tokens > self.max_length:
            raise ValueError(
                f"KV cache overflow: {self.length} + {new_tokens} > {self.max_length}"
            )
        self.k[:, :, self.length:self.length + new_tokens] = k_new
        self.v[:, :, self.length:self.length + new_tokens] = v_new
        self.length += new_tokens

    def select_rows(self, indices: np.ndarray) -> None:
        """Keep only the given batch rows (drops finished sequences)."""
        self.k = self.k[indices]
        self.v = self.v[indices]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with multiple heads.

    Supports self-attention (``query is key is value``), cross-attention
    (decoder attending to encoder states) and both padding and causal masks.
    For incremental decoding, :meth:`forward_step` attends over a
    :class:`KVCache` and :meth:`forward_cross` reuses K/V projected once from
    the encoder memory via :meth:`project_memory`.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} not divisible by num_heads {num_heads}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.query_proj = Linear(model_dim, model_dim, rng=rng)
        self.key_proj = Linear(model_dim, model_dim, rng=rng)
        self.value_proj = Linear(model_dim, model_dim, rng=rng)
        self.out_proj = Linear(model_dim, model_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    def _attend(self, q: Tensor, k, v, bias: Optional[np.ndarray]) -> Tensor:
        """Score / softmax / weight-sum / merge / output-project."""
        scores = q.matmul(k) * (1.0 / math.sqrt(self.head_dim))
        if bias is not None:
            # Additive -1e9 bias broadcasts over the head/query axes, so no
            # (batch, heads, query, key) mask is ever materialised.
            scores = scores + bias
        weights = F.softmax(scores, axis=-1)
        weights = self.dropout(weights)
        attended = weights.matmul(v)
        return self.out_proj(self._merge_heads(attended))

    def forward(
        self,
        query: Tensor,
        key: Optional[Tensor] = None,
        value: Optional[Tensor] = None,
        key_padding_mask: Optional[np.ndarray] = None,
        causal: bool = False,
    ) -> Tensor:
        """Compute attention.

        Parameters
        ----------
        query, key, value:
            Tensors of shape ``(batch, length, model_dim)``.  ``key`` and
            ``value`` default to ``query`` (self-attention).
        key_padding_mask:
            Boolean array ``(batch, key_length)``; True marks padding
            positions that must not be attended to.
        causal:
            If True, position *i* may only attend to positions ``<= i``.
        """
        key = query if key is None else key
        value = key if value is None else value

        q = self._split_heads(self.query_proj(query))
        k = self._split_heads(self.key_proj(key))
        v = self._split_heads(self.value_proj(value))

        bias = self._build_bias(
            batch=query.shape[0],
            query_len=query.shape[1],
            key_len=key.shape[1],
            key_padding_mask=key_padding_mask,
            causal=causal,
            dtype=q.data.dtype,
        )
        return self._attend(q, k.transpose(0, 1, 3, 2), v, bias)

    # ------------------------------------------------------------------
    # Incremental decoding
    # ------------------------------------------------------------------
    def init_cache(self, batch: int, max_length: int, dtype: np.dtype = np.float64) -> KVCache:
        """Allocate a :class:`KVCache` sized for this attention module."""
        return KVCache(batch, self.num_heads, max_length, self.head_dim, dtype=dtype)

    def project_memory(self, memory: Tensor) -> Tuple[np.ndarray, np.ndarray]:
        """Split-head K/V of the encoder memory, projected **once** per decode.

        Cross-attention K/V depend only on the encoder output, so computing
        them here and replaying them through :meth:`forward_cross` removes
        two ``(batch, source_len, model_dim)`` projections from every step.
        """
        k = self._split_heads(self.key_proj(memory)).data
        v = self._split_heads(self.value_proj(memory)).data
        return k, v

    def forward_step(self, query: Tensor, cache: KVCache) -> Tensor:
        """Self-attention of new tokens over the cached prefix plus themselves.

        ``query`` holds the new tokens only — ``(batch, new_tokens, dim)``;
        their K/V are appended to ``cache`` in place.  A causal bias is only
        needed when more than one token arrives at once (prefill): a single-
        token query attends to the entire (strictly past) cache.
        """
        new_tokens = query.shape[1]
        q = self._split_heads(self.query_proj(query))
        cache.append(
            self._split_heads(self.key_proj(query)).data,
            self._split_heads(self.value_proj(query)).data,
        )
        k = cache.k[:, :, :cache.length]
        v = cache.v[:, :, :cache.length]
        bias = None
        if new_tokens > 1:
            bias = _causal_bias(
                new_tokens, cache.length, cache.length - new_tokens, q.data.dtype.name
            )
        return self._attend(q, np.swapaxes(k, -1, -2), v, bias)

    def forward_cross(
        self,
        query: Tensor,
        memory_k: np.ndarray,
        memory_v: np.ndarray,
        memory_bias: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Cross-attention against K/V precomputed by :meth:`project_memory`.

        ``memory_bias`` is the additive padding bias ``(batch, 1, 1, source)``
        built once per decode from the memory padding mask.
        """
        q = self._split_heads(self.query_proj(query))
        return self._attend(q, np.swapaxes(memory_k, -1, -2), memory_v, memory_bias)

    # ------------------------------------------------------------------
    # Masks
    # ------------------------------------------------------------------
    @staticmethod
    def padding_bias(
        key_padding_mask: np.ndarray, dtype: np.dtype = np.float64
    ) -> np.ndarray:
        """Additive ``(batch, 1, 1, key_len)`` bias from a boolean pad mask."""
        padding = np.asarray(key_padding_mask, dtype=bool)
        dtype = np.dtype(dtype)
        return np.where(padding, dtype.type(-1e9), dtype.type(0.0))[:, None, None, :]

    def _build_bias(
        self,
        batch: int,
        query_len: int,
        key_len: int,
        key_padding_mask: Optional[np.ndarray],
        causal: bool,
        dtype: np.dtype = np.float64,
    ) -> Optional[np.ndarray]:
        bias: Optional[np.ndarray] = None
        if key_padding_mask is not None:
            padding = np.asarray(key_padding_mask, dtype=bool)
            if padding.shape != (batch, key_len):
                raise ValueError(
                    f"key_padding_mask shape {padding.shape} != {(batch, key_len)}"
                )
            bias = self.padding_bias(padding, dtype=dtype)
        if causal:
            causal_bias = _causal_bias(query_len, key_len, 0, np.dtype(dtype).name)
            bias = causal_bias if bias is None else bias + causal_bias
        return bias
