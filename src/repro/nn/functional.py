"""Functional neural-network operations built on :class:`repro.nn.tensor.Tensor`.

These free functions mirror the subset of ``torch.nn.functional`` the paper's
models rely on: activations, softmax / log-softmax, cross entropy, embedding
lookups, masking and dropout.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from .tensor import Tensor, active_compute_dtype, is_grad_enabled

__all__ = [
    "relu",
    "gelu",
    "tanh",
    "sigmoid",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "embedding",
    "dropout",
    "masked_fill",
    "cosine_similarity",
    "normalize",
    "one_hot",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    return x.sigmoid()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT)."""
    return x.gelu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a one-hot float matrix for integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def nll_loss(
    log_probs: Tensor,
    targets: Union[np.ndarray, Sequence[int]],
    reduction: str = "mean",
    sample_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Negative log-likelihood loss over the last axis of ``log_probs``.

    ``log_probs`` has shape ``(batch, classes)``; ``targets`` holds integer
    class indices.  ``sample_weights`` optionally weights each example, which
    is how the meta-learned weights enter the training objective (Eq. 7/15).
    """
    targets = np.asarray(targets, dtype=np.int64)
    mask = one_hot(targets, log_probs.shape[-1])
    per_example = -(log_probs * mask).sum(axis=-1)
    if sample_weights is not None:
        per_example = per_example * np.asarray(sample_weights, dtype=np.float64)
    if reduction == "none":
        return per_example
    if reduction == "sum":
        return per_example.sum()
    if reduction == "mean":
        return per_example.mean()
    raise ValueError(f"unknown reduction: {reduction!r}")


def cross_entropy(
    logits: Tensor,
    targets: Union[np.ndarray, Sequence[int]],
    reduction: str = "mean",
    sample_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Softmax cross entropy with integer targets.

    This is the in-batch contrastive loss of Eq. (6) when ``logits`` is the
    mention-vs-batch-entities score matrix and ``targets`` is the diagonal.
    """
    return nll_loss(
        log_softmax(logits, axis=-1),
        targets,
        reduction=reduction,
        sample_weights=sample_weights,
    )


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` according to integer ``indices``.

    Under an active inference compute dtype the gather reads a cached cast
    of the table, so the rows enter the forward already in that dtype.
    """
    indices = np.asarray(indices, dtype=np.int64)
    dtype = active_compute_dtype()
    table = weight.cast(dtype) if dtype is not None else weight.data
    out_data = table[indices]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, weight.shape[-1]))
            weight._accumulate(full)

    if not (is_grad_enabled() and weight.requires_grad):
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=(weight,), _backward=backward)


def dropout(x: Tensor, rate: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; a no-op when ``training`` is False or ``rate`` is 0."""
    if not training or rate <= 0.0:
        return x
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    rng = rng if rng is not None else np.random.default_rng()
    keep = (rng.random(x.shape) >= rate) / (1.0 - rate)
    return x * Tensor(keep)


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace positions where ``mask`` is True with ``value`` (e.g. -1e9)."""
    mask = np.asarray(mask, dtype=bool)
    keep = (~mask).astype(np.float64)
    fill = mask.astype(np.float64) * value
    return x * Tensor(keep) + Tensor(fill)


def normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """L2-normalise ``x`` along ``axis``."""
    norm = ((x * x).sum(axis=axis, keepdims=True) + eps) ** 0.5
    return x / norm


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    return (normalize(a, axis=axis) * normalize(b, axis=axis)).sum(axis=axis)
