"""``repro.nn`` — a from-scratch numpy neural-network substrate.

This subpackage replaces PyTorch in the reproduction: it provides an autodiff
:class:`~repro.nn.tensor.Tensor`, layers, transformer encoder / decoder
stacks, optimisers and checkpointing.  Every model in ``repro.linking``,
``repro.generation`` and ``repro.meta`` is built on top of it.
"""

from . import functional
from .attention import KVCache, MultiHeadAttention
from .layers import Dropout, Embedding, FeedForward, LayerNorm, Linear
from .module import Module, ModuleList, Parameter, Sequential
from .optim import SGD, Adam, LinearWarmupSchedule, Optimizer, clip_grad_norm
from .serialization import (
    load_checkpoint,
    load_training_checkpoint,
    save_checkpoint,
    save_training_checkpoint,
)
from .tensor import (
    Tensor,
    compute_dtype,
    concatenate,
    get_compute_dtype,
    no_grad,
    ones,
    ones_like,
    stack_tensors,
    tensor,
    zeros,
    zeros_like,
)
from .transformer import (
    DecoderState,
    PositionalEmbedding,
    TransformerDecoder,
    TransformerDecoderLayer,
    TransformerEncoder,
    TransformerEncoderLayer,
)

__all__ = [
    "functional",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "concatenate",
    "stack_tensors",
    "no_grad",
    "compute_dtype",
    "get_compute_dtype",
    "Module",
    "ModuleList",
    "Sequential",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "FeedForward",
    "MultiHeadAttention",
    "KVCache",
    "TransformerEncoder",
    "TransformerEncoderLayer",
    "TransformerDecoder",
    "TransformerDecoderLayer",
    "DecoderState",
    "PositionalEmbedding",
    "Optimizer",
    "SGD",
    "Adam",
    "LinearWarmupSchedule",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_checkpoint",
    "load_training_checkpoint",
]
