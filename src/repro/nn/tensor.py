"""A minimal reverse-mode automatic differentiation engine on numpy arrays.

This module provides the :class:`Tensor` class used by every neural model in
the reproduction (bi-encoder, cross-encoder, seq2seq rewriter).  It follows a
define-by-run design: each operation records its parents and a backward
closure, and :meth:`Tensor.backward` runs a topological sweep that accumulates
gradients into ``Tensor.grad``.

The engine intentionally supports only what the paper's models need:
broadcasted elementwise arithmetic, matrix multiplication, reductions,
indexing/gather, concatenation, reshaping and the usual activations (the
activations live in :mod:`repro.nn.functional`).
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Whether operations record gradient information.  Thread-local, like
#: ``_compute_dtype_state`` below: serving replicas run ``no_grad`` forward
#: passes on their own scheduler threads, and with a process-global flag two
#: interleaved enter/exit pairs can restore each other's snapshots and leave
#: gradients disabled for the whole process (breaking any training that runs
#: afterwards).  Each thread starts with gradients enabled.
_grad_state = threading.local()

#: Requested inference compute dtype, or None for the native float64 path.
#: Thread-local so a ``compute_dtype`` block on one thread (e.g. a caller of
#: LinkingService) cannot flip the precision of a forward running
#: concurrently on another thread mid-pass.  Only consulted when gradients
#: are disabled, so training always runs in full precision regardless of any
#: surrounding ``compute_dtype`` block.
_compute_dtype_state = threading.local()


class no_grad:
    """Context manager that disables gradient tracking.

    Mirrors ``torch.no_grad``; used during evaluation / retrieval so the
    engine does not build graphs for inference-only forward passes.
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        _grad_state.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _grad_state.enabled = self._previous


def is_grad_enabled() -> bool:
    """Whether operations on *this thread* record gradient information."""
    return getattr(_grad_state, "enabled", True)


class compute_dtype:
    """Context manager selecting the inference compute dtype.

    Inside ``with compute_dtype("float32")``, ``no_grad`` forward passes run
    end-to-end in float32: layers feed cached float32 casts of their
    parameters into the graph-free ops and every freshly-created tensor
    (biases, scalars, masks) adopts the same dtype, halving memory bandwidth
    on serving paths.  Gradient-tracked code is unaffected — training keeps
    the float64 default — and blocks nest/restore like ``no_grad``.
    """

    def __init__(self, dtype: Optional[Union[str, np.dtype]]) -> None:
        self._dtype = None if dtype is None else np.dtype(dtype)
        if self._dtype is not None and self._dtype.kind != "f":
            raise ValueError(f"compute dtype must be floating point, got {self._dtype}")

    def __enter__(self) -> "compute_dtype":
        self._previous = getattr(_compute_dtype_state, "value", None)
        _compute_dtype_state.value = self._dtype
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _compute_dtype_state.value = self._previous


def get_compute_dtype() -> Optional[np.dtype]:
    """Return this thread's requested compute dtype (None = float64 default)."""
    return getattr(_compute_dtype_state, "value", None)


def active_compute_dtype() -> Optional[np.dtype]:
    """The cast dtype for the *current* op, or None when no cast applies.

    Non-None only when a ``compute_dtype`` block is active on this thread
    **and** gradients are disabled: the reduced-precision path is
    inference-only.
    """
    dtype = getattr(_compute_dtype_state, "value", None)
    if is_grad_enabled() or dtype is None or dtype == np.float64:
        return None
    return dtype


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    dtype = active_compute_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype.kind == "f":
            if dtype is not None and value.dtype != dtype:
                return value.astype(dtype)
            return value
        if value.dtype.kind == "c":
            return value
        return value.astype(dtype if dtype is not None else np.float64)
    return np.asarray(value, dtype=dtype if dtype is not None else np.float64)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array-like payload.  Floating point data is kept as-is, everything
        else is cast to ``float64``.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_cast_cache")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name
        self._cast_cache: Optional[Tuple[np.ndarray, np.dtype, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a one-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def cast(self, dtype: Union[str, np.dtype]) -> np.ndarray:
        """Return ``data`` as ``dtype``, memoising one cast per payload.

        The cache is keyed on the identity of ``data``: optimisers and
        ``load_state_dict`` replace the payload array rather than mutating it
        in place, so a stale cast is never served.  This is what lets layers
        feed float32 copies of their float64 parameters into every inference
        forward without re-casting per call.
        """
        dtype = np.dtype(dtype)
        if self.data.dtype == dtype:
            return self.data
        cached = self._cast_cache
        if cached is None or cached[0] is not self.data or cached[1] != dtype:
            cached = (self.data, dtype, self.data.astype(dtype))
            self._cast_cache = cached
        return cached[2]

    def copy(self) -> "Tensor":
        """Return a tensor with a copied payload, outside the graph."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(out_data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__add__(self._ensure(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        """Matrix product supporting batched operands (numpy semantics)."""
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    grad_self = np.outer(grad, other.data) if grad.ndim == 1 else (
                        grad[..., None] * other.data
                    )
                    grad_self = grad_self.reshape(self.shape) if grad_self.shape == self.shape else _unbroadcast(grad_self, self.shape)
                else:
                    grad_self = grad @ np.swapaxes(other.data, -1, -2)
                    grad_self = _unbroadcast(grad_self, self.shape)
                self._accumulate(grad_self)
            if other.requires_grad:
                if self.data.ndim == 1:
                    grad_other = np.outer(self.data, grad) if grad.ndim == 1 else (
                        self.data[..., None] * grad
                    )
                    grad_other = _unbroadcast(grad_other, other.shape)
                else:
                    grad_other = np.swapaxes(self.data, -1, -2) @ grad
                    grad_other = _unbroadcast(grad_other, other.shape)
                other._accumulate(grad_other)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Fused GELU (tanh approximation, as in BERT).

        One graph node instead of the eight an op-by-op composition builds;
        ``x**3`` is computed as ``x*x*x`` (numpy's float ``power`` is an order
        of magnitude slower than two multiplies on large arrays).
        """
        x = self.data
        c = math.sqrt(2.0 / math.pi)
        t = np.tanh(c * (x + 0.044715 * (x * x * x)))
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                sech_sq = 1.0 - t * t
                local = 0.5 * (1.0 + t) + 0.5 * x * sech_sq * c * (1.0 + 0.134145 * (x * x))
                self._accumulate(grad * local)

        return self._make(out_data, (self,), backward)

    def standardize(self, eps: float = 1e-5) -> "Tensor":
        """Fused ``(x - mean) / sqrt(var + eps)`` over the last axis.

        The normalisation core of layer norm as a single graph node with the
        closed-form backward, avoiding the six intermediate arrays of the
        op-by-op version.
        """
        x = self.data
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        inv_std = 1.0 / np.sqrt(variance + eps)
        out_data = centred * inv_std

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                grad_mean = grad.mean(axis=-1, keepdims=True)
                projection = (grad * out_data).mean(axis=-1, keepdims=True)
                self._accumulate(inv_std * (grad - grad_mean - out_data * projection))

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        """Fused numerically-stable softmax along ``axis``.

        One graph node instead of the shift/exp/sum/divide chain, with the
        standard Jacobian-vector backward ``s * (g - sum(g * s))``.
        """
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        np.exp(shifted, out=shifted)
        out_data = shifted / shifted.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                inner = (grad * out_data).sum(axis=axis, keepdims=True)
                self._accumulate(out_data * (grad - inner))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(out_data, (self,), backward)

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = np.maximum(self.data, other.data)
        mask_self = self.data >= other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * mask_self, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * (~mask_self), other.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_arr = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad_arr, self.shape)
            else:
                if not keepdims:
                    grad_arr = np.expand_dims(grad_arr, axis=axis)
                expanded = np.broadcast_to(grad_arr, self.shape)
            self._accumulate(expanded.astype(self.data.dtype, copy=True))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_arr = np.asarray(grad)
            if axis is None:
                mask = (self.data == out_data)
                scale = mask.sum()
                self._accumulate(grad_arr * mask / scale)
            else:
                expanded_out = out_data if keepdims else np.expand_dims(out_data, axis=axis)
                mask = (self.data == expanded_out)
                counts = mask.sum(axis=axis, keepdims=True)
                grad_exp = grad_arr if keepdims else np.expand_dims(grad_arr, axis=axis)
                self._accumulate(mask * grad_exp / counts)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-compatible alias
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        ordering: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    ordering.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)
        self._accumulate(grad)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def zeros_like(other: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros_like(other.data), requires_grad=requires_grad)


def ones_like(other: Tensor, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones_like(other.data), requires_grad=requires_grad)


def stack_tensors(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, propagating gradients to each input."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for piece, t in zip(pieces, tensors):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis).reshape(t.shape))

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis with gradient support."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensors):
            if not t.requires_grad:
                continue
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            t._accumulate(grad[tuple(slicer)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(out_data)
    return Tensor(out_data, requires_grad=True, _parents=tuple(tensors), _backward=backward)
