"""Checkpoint save / load helpers for :class:`repro.nn.module.Module`."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_checkpoint(
    module: Module,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Save a module's parameters (and optional JSON metadata) to ``.npz``.

    Returns the path actually written (always with the ``.npz`` suffix).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {f"param::{name}": value for name, value in module.state_dict().items()}
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_checkpoint(module: Module, path: PathLike, strict: bool = True) -> Dict[str, object]:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    Returns the metadata dictionary stored alongside the parameters.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    module.load_state_dict(state, strict=strict)
    return json.loads(metadata_bytes.decode("utf-8"))
