"""Checkpoint save / load helpers for :class:`repro.nn.module.Module`.

Two layers of persistence:

* :func:`save_checkpoint` / :func:`load_checkpoint` — parameters plus JSON
  metadata, enough to ship a trained model;
* :func:`save_training_checkpoint` / :func:`load_training_checkpoint` — the
  same plus the optimiser's buffers (Adam moments, step counters), so an
  interrupted training run resumes bit-identically.  Array-valued optimiser
  state lands in the ``.npz`` payload under ``opt::`` keys; scalar state and
  caller metadata (RNG states, epoch cursors, loss history) travel in the
  embedded JSON blob.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]


def save_checkpoint(
    module: Module,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Save a module's parameters (and optional JSON metadata) to ``.npz``.

    Returns the path actually written (always with the ``.npz`` suffix).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {f"param::{name}": value for name, value in module.state_dict().items()}
    payload["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_checkpoint(module: Module, path: PathLike, strict: bool = True) -> Dict[str, object]:
    """Load parameters saved by :func:`save_checkpoint` into ``module``.

    Returns the metadata dictionary stored alongside the parameters.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path) as archive:
        state = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    module.load_state_dict(state, strict=strict)
    return json.loads(metadata_bytes.decode("utf-8"))


def _resolve(path: PathLike) -> Path:
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    return path


def save_training_checkpoint(
    module: Module,
    path: PathLike,
    optimizer=None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Save parameters + optimiser buffers + metadata for exact resume.

    ``optimizer`` is any object with a ``state_dict()`` whose values are
    scalars or lists of numpy arrays (:class:`repro.nn.optim.Adam` /
    :class:`~repro.nn.optim.SGD`).  Returns the path written (``.npz``).
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {f"param::{name}": value for name, value in module.state_dict().items()}
    meta = dict(metadata or {})
    if optimizer is not None:
        scalars: Dict[str, object] = {}
        array_keys: Dict[str, int] = {}
        for key, value in optimizer.state_dict().items():
            if isinstance(value, list) and all(isinstance(item, np.ndarray) for item in value):
                array_keys[key] = len(value)
                for index, item in enumerate(value):
                    payload[f"opt::{key}::{index}"] = item
            else:
                scalars[key] = value
        meta["__optimizer__"] = {"scalars": scalars, "array_keys": array_keys}
    payload["__metadata__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def load_training_checkpoint(
    module: Module,
    path: PathLike,
    optimizer=None,
    strict: bool = True,
) -> Dict[str, object]:
    """Restore a :func:`save_training_checkpoint` file into module + optimiser.

    Returns the caller metadata (with the internal optimiser section removed).
    """
    path = _resolve(path)
    with np.load(path) as archive:
        params = {
            key[len("param::"):]: archive[key]
            for key in archive.files
            if key.startswith("param::")
        }
        opt_arrays = {
            key[len("opt::"):]: archive[key]
            for key in archive.files
            if key.startswith("opt::")
        }
        metadata_bytes = archive["__metadata__"].tobytes() if "__metadata__" in archive.files else b"{}"
    module.load_state_dict(params, strict=strict)
    metadata = json.loads(metadata_bytes.decode("utf-8"))
    optimizer_meta = metadata.pop("__optimizer__", None)
    if optimizer is not None:
        if optimizer_meta is None:
            raise ValueError(f"checkpoint {path} holds no optimizer state")
        state: Dict[str, object] = dict(optimizer_meta["scalars"])
        for key, count in optimizer_meta["array_keys"].items():
            state[key] = [opt_arrays[f"{key}::{index}"] for index in range(int(count))]
        optimizer.load_state_dict(state)
    return metadata
