"""Optimisers (SGD, Adam), LR schedules and gradient utilities.

Optimisers and :class:`LinearWarmupSchedule` expose ``state_dict`` /
``load_state_dict`` so a training run can be checkpointed and resumed
bit-identically (moment buffers, step counters and the scheduled learning
rate all round-trip; see :func:`repro.nn.serialization.save_training_checkpoint`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Serialisable optimiser state (see subclasses for buffers)."""
        return {"lr": float(self.lr)}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state produced by :meth:`state_dict`."""
        self.lr = float(state["lr"])

    @staticmethod
    def _check_buffers(buffers: List[np.ndarray], parameters: List[Parameter], label: str) -> List[np.ndarray]:
        if len(buffers) != len(parameters):
            raise ValueError(
                f"optimizer state has {len(buffers)} {label} buffers, "
                f"model has {len(parameters)} parameters"
            )
        restored = []
        for buffer, parameter in zip(buffers, parameters):
            buffer = np.asarray(buffer, dtype=np.float64)
            if buffer.shape != parameter.shape:
                raise ValueError(
                    f"{label} buffer shape {buffer.shape} does not match "
                    f"parameter shape {parameter.shape}"
                )
            restored.append(buffer.copy())
        return restored


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad

    def state_dict(self) -> Dict[str, object]:
        return {"lr": float(self.lr), "velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._velocity = self._check_buffers(list(state["velocity"]), self.parameters, "velocity")


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015), the optimiser used by BLINK."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-5,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        return {
            "lr": float(self.lr),
            "step_count": int(self._step_count),
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._m = self._check_buffers(list(state["m"]), self.parameters, "m")
        self._v = self._check_buffers(list(state["v"]), self.parameters, "v")


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total


class LinearWarmupSchedule:
    """Learning-rate schedule with linear warmup then linear decay.

    Mirrors the schedule commonly used to fine-tune BERT-style encoders.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self._step_count = 0

    def _factor(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return step / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denominator = max(self.total_steps - self.warmup_steps, 1)
        return max(remaining / denominator, 0.0)

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step_count += 1
        self.optimizer.lr = self.base_lr * self._factor(self._step_count)
        return self.optimizer.lr

    def state_dict(self) -> Dict[str, object]:
        """Serialisable schedule state (counters + base learning rate)."""
        return {
            "step_count": int(self._step_count),
            "warmup_steps": int(self.warmup_steps),
            "total_steps": int(self.total_steps),
            "base_lr": float(self.base_lr),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore the schedule and re-apply the scheduled learning rate."""
        self.warmup_steps = int(state["warmup_steps"])
        self.total_steps = int(state["total_steps"])
        self.base_lr = float(state["base_lr"])
        self._step_count = int(state["step_count"])
        if self._step_count > 0:
            self.optimizer.lr = self.base_lr * self._factor(self._step_count)
