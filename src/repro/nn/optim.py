"""Optimisers (SGD, Adam) and gradient utilities."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015), the optimiser used by BLINK."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 2e-5,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (grad * grad)
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    parameters = [p for p in parameters if p.grad is not None]
    if not parameters:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * scale
    return total


class LinearWarmupSchedule:
    """Learning-rate schedule with linear warmup then linear decay.

    Mirrors the schedule commonly used to fine-tune BERT-style encoders.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.warmup_steps = max(0, warmup_steps)
        self.total_steps = total_steps
        self._step_count = 0

    def step(self) -> float:
        """Advance one step and return the new learning rate."""
        self._step_count += 1
        if self.warmup_steps and self._step_count <= self.warmup_steps:
            factor = self._step_count / self.warmup_steps
        else:
            remaining = max(self.total_steps - self._step_count, 0)
            denominator = max(self.total_steps - self.warmup_steps, 1)
            factor = max(remaining / denominator, 0.0)
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
