"""Transformer encoder / decoder stacks.

The encoders stand in for BERT in the BLINK-style bi-encoder and
cross-encoder, and the encoder-decoder pair stands in for T5 in the mention
rewriter (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from . import functional as F
from . import init
from .attention import KVCache, MultiHeadAttention
from .layers import Dropout, Embedding, FeedForward, LayerNorm, Linear
from .module import Module, ModuleList, Parameter
from .tensor import Tensor, active_compute_dtype, is_grad_enabled


class PositionalEmbedding(Module):
    """Learned absolute positional embeddings.

    ``forward(length, offset)`` returns the rows for positions
    ``[offset, offset + length)`` — the offset is how incremental decoding
    addresses the position of a single new token.  Inference forwards slice
    the weight table directly (no index array, no gather copy); the
    gradient-tracked path keeps the :func:`repro.nn.functional.embedding`
    gather with a cached position-id table instead of rebuilding
    ``np.arange`` on every layer-stack invocation.
    """

    def __init__(
        self,
        max_length: int,
        model_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.max_length = max_length
        self.weight = Parameter(init.normal((max_length, model_dim), rng, std=0.02), name="weight")
        self._position_ids = np.arange(max_length, dtype=np.int64)

    def forward(self, length: int, offset: int = 0) -> Tensor:
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if offset + length > self.max_length:
            raise ValueError(
                f"positions [{offset}, {offset + length}) exceed max_length {self.max_length}"
            )
        if not (is_grad_enabled() and self.weight.requires_grad):
            dtype = active_compute_dtype()
            table = self.weight.cast(dtype) if dtype is not None else self.weight.data
            return Tensor(table[offset:offset + length])
        return F.embedding(self.weight, self._position_ids[offset:offset + length])


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (self-attention + feed-forward)."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        hidden_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(model_dim, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng=rng)
        self.norm_attention = LayerNorm(model_dim)
        self.norm_feed_forward = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.self_attention(self.norm_attention(x), key_padding_mask=padding_mask)
        x = x + self.dropout(attended)
        x = x + self.feed_forward(self.norm_feed_forward(x))
        return x


class TransformerEncoder(Module):
    """Token embedding + positional embedding + a stack of encoder layers.

    ``forward`` returns the full sequence of hidden states; ``encode`` returns
    a pooled representation (mean over non-padding positions), which is what
    the bi-encoder uses as the mention / entity vector.
    """

    def __init__(
        self,
        vocab_size: int,
        model_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        hidden_dim: int = 128,
        max_length: int = 128,
        dropout: float = 0.1,
        padding_idx: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.model_dim = model_dim
        self.padding_idx = padding_idx
        self.token_embedding = Embedding(vocab_size, model_dim, rng=rng, padding_idx=padding_idx)
        self.position_embedding = PositionalEmbedding(max_length, model_dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(model_dim, num_heads, hidden_dim, dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        padding_mask = token_ids == self.padding_idx
        hidden = self.token_embedding(token_ids) + self.position_embedding(token_ids.shape[1])
        hidden = self.dropout(hidden)
        for layer in self.layers:
            hidden = layer(hidden, padding_mask=padding_mask)
        return self.final_norm(hidden)

    def encode(self, token_ids: np.ndarray) -> Tensor:
        """Return a pooled (mean over real tokens) representation per sequence."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        hidden = self.forward(token_ids)
        keep = (token_ids != self.padding_idx).astype(hidden.data.dtype)
        denom = np.maximum(keep.sum(axis=1, keepdims=True), 1.0)
        weights = Tensor(keep[:, :, None] / denom[:, :, None])
        return (hidden * weights).sum(axis=1)


@dataclass
class LayerDecoderState:
    """Per-layer incremental state: self-attention K/V cache plus the
    cross-attention K/V projected once from the encoder memory."""

    self_cache: KVCache
    cross_k: np.ndarray
    cross_v: np.ndarray

    def select_rows(self, indices: np.ndarray) -> None:
        self.self_cache.select_rows(indices)
        self.cross_k = self.cross_k[indices]
        self.cross_v = self.cross_v[indices]


@dataclass
class DecoderState:
    """Incremental decoding state threaded through a :class:`TransformerDecoder`.

    Create one with :meth:`TransformerDecoder.init_state`, then feed token
    chunks to :meth:`TransformerDecoder.forward_step` — a multi-token prefill
    first, single-token steps after.  ``length`` is the number of tokens
    already consumed (the positional offset of the next chunk).
    ``memory_bias`` is the additive cross-attention padding bias shared by
    all layers.  :meth:`select_rows` drops finished sequences from every
    buffer so later steps only pay for still-active rows.
    """

    layers: List[LayerDecoderState]
    memory_bias: Optional[np.ndarray]
    length: int = 0

    @property
    def batch(self) -> int:
        return self.layers[0].self_cache.batch

    @property
    def max_length(self) -> int:
        return self.layers[0].self_cache.max_length

    def select_rows(self, indices: np.ndarray) -> None:
        """Keep only the given batch rows (boolean or integer index array)."""
        for layer in self.layers:
            layer.select_rows(indices)
        if self.memory_bias is not None:
            self.memory_bias = self.memory_bias[indices]


class TransformerDecoderLayer(Module):
    """Pre-norm decoder block: causal self-attention, cross-attention, FFN."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        hidden_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(model_dim, num_heads, dropout, rng=rng)
        self.cross_attention = MultiHeadAttention(model_dim, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng=rng)
        self.norm_self = LayerNorm(model_dim)
        self.norm_cross = LayerNorm(model_dim)
        self.norm_feed_forward = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        memory_padding_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        attended = self.self_attention(self.norm_self(x), causal=True)
        x = x + self.dropout(attended)
        crossed = self.cross_attention(
            self.norm_cross(x), key=memory, value=memory, key_padding_mask=memory_padding_mask
        )
        x = x + self.dropout(crossed)
        x = x + self.feed_forward(self.norm_feed_forward(x))
        return x

    def init_state(
        self, memory: Tensor, max_length: int, dtype: np.dtype
    ) -> LayerDecoderState:
        """Allocate this layer's K/V cache and project the memory K/V once."""
        cross_k, cross_v = self.cross_attention.project_memory(memory)
        return LayerDecoderState(
            self_cache=self.self_attention.init_cache(memory.shape[0], max_length, dtype=dtype),
            cross_k=cross_k,
            cross_v=cross_v,
        )

    def forward_step(
        self,
        x: Tensor,
        state: LayerDecoderState,
        memory_bias: Optional[np.ndarray],
    ) -> Tensor:
        """One incremental chunk: new tokens only, prefix read from ``state``."""
        attended = self.self_attention.forward_step(self.norm_self(x), state.self_cache)
        x = x + self.dropout(attended)
        crossed = self.cross_attention.forward_cross(
            self.norm_cross(x), state.cross_k, state.cross_v, memory_bias
        )
        x = x + self.dropout(crossed)
        x = x + self.feed_forward(self.norm_feed_forward(x))
        return x


class TransformerDecoder(Module):
    """Decoder stack with a tied output projection to vocabulary logits."""

    def __init__(
        self,
        vocab_size: int,
        model_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        hidden_dim: int = 128,
        max_length: int = 64,
        dropout: float = 0.1,
        padding_idx: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.padding_idx = padding_idx
        self.token_embedding = Embedding(vocab_size, model_dim, rng=rng, padding_idx=padding_idx)
        self.position_embedding = PositionalEmbedding(max_length, model_dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerDecoderLayer(model_dim, num_heads, hidden_dim, dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(model_dim)
        self.output_proj = Linear(model_dim, vocab_size, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        token_ids: np.ndarray,
        memory: Tensor,
        memory_padding_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        hidden = self.token_embedding(token_ids) + self.position_embedding(token_ids.shape[1])
        hidden = self.dropout(hidden)
        for layer in self.layers:
            hidden = layer(hidden, memory, memory_padding_mask=memory_padding_mask)
        hidden = self.final_norm(hidden)
        return self.output_proj(hidden)

    # ------------------------------------------------------------------
    # Incremental decoding
    # ------------------------------------------------------------------
    def init_state(
        self,
        memory: Tensor,
        memory_padding_mask: Optional[np.ndarray] = None,
        max_length: Optional[int] = None,
    ) -> DecoderState:
        """Prepare an incremental :class:`DecoderState` for ``memory``.

        Projects every layer's cross-attention K/V from the encoder output
        once, builds the shared memory padding bias, and preallocates the
        self-attention caches for up to ``max_length`` tokens (defaults to
        the positional-embedding capacity).
        """
        if max_length is None:
            max_length = self.position_embedding.max_length
        max_length = min(max_length, self.position_embedding.max_length)
        dtype = memory.data.dtype
        memory_bias = None
        if memory_padding_mask is not None:
            memory_bias = MultiHeadAttention.padding_bias(memory_padding_mask, dtype=dtype)
        return DecoderState(
            layers=[layer.init_state(memory, max_length, dtype) for layer in self.layers],
            memory_bias=memory_bias,
        )

    def forward_step(self, token_ids: np.ndarray, state: DecoderState) -> Tensor:
        """Logits for a chunk of new tokens, advancing ``state`` in place.

        ``token_ids`` is ``(batch, new_tokens)`` — the prefill chunk on the
        first call, a single column on subsequent steps.  Positions are
        offset by the tokens already consumed; the causal bias for the
        1-token case is unnecessary (the query attends to a strictly-past
        cache) and is handled inside the attention step for prefill chunks.
        """
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        new_tokens = token_ids.shape[1]
        hidden = self.token_embedding(token_ids) + self.position_embedding(
            new_tokens, offset=state.length
        )
        hidden = self.dropout(hidden)
        for layer, layer_state in zip(self.layers, state.layers):
            hidden = layer.forward_step(hidden, layer_state, state.memory_bias)
        state.length += new_tokens
        hidden = self.final_norm(hidden)
        return self.output_proj(hidden)
