"""Transformer encoder / decoder stacks.

The encoders stand in for BERT in the BLINK-style bi-encoder and
cross-encoder, and the encoder-decoder pair stands in for T5 in the mention
rewriter (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .attention import MultiHeadAttention
from .layers import Dropout, Embedding, FeedForward, LayerNorm, Linear
from .module import Module, ModuleList, Parameter
from .tensor import Tensor


class PositionalEmbedding(Module):
    """Learned absolute positional embeddings."""

    def __init__(
        self,
        max_length: int,
        model_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.max_length = max_length
        self.weight = Parameter(init.normal((max_length, model_dim), rng, std=0.02), name="weight")

    def forward(self, length: int) -> Tensor:
        if length > self.max_length:
            raise ValueError(f"sequence length {length} exceeds max_length {self.max_length}")
        return F.embedding(self.weight, np.arange(length))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer encoder block (self-attention + feed-forward)."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        hidden_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(model_dim, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng=rng)
        self.norm_attention = LayerNorm(model_dim)
        self.norm_feed_forward = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.self_attention(self.norm_attention(x), key_padding_mask=padding_mask)
        x = x + self.dropout(attended)
        x = x + self.feed_forward(self.norm_feed_forward(x))
        return x


class TransformerEncoder(Module):
    """Token embedding + positional embedding + a stack of encoder layers.

    ``forward`` returns the full sequence of hidden states; ``encode`` returns
    a pooled representation (mean over non-padding positions), which is what
    the bi-encoder uses as the mention / entity vector.
    """

    def __init__(
        self,
        vocab_size: int,
        model_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        hidden_dim: int = 128,
        max_length: int = 128,
        dropout: float = 0.1,
        padding_idx: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.model_dim = model_dim
        self.padding_idx = padding_idx
        self.token_embedding = Embedding(vocab_size, model_dim, rng=rng, padding_idx=padding_idx)
        self.position_embedding = PositionalEmbedding(max_length, model_dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(model_dim, num_heads, hidden_dim, dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, token_ids: np.ndarray) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        padding_mask = token_ids == self.padding_idx
        hidden = self.token_embedding(token_ids) + self.position_embedding(token_ids.shape[1])
        hidden = self.dropout(hidden)
        for layer in self.layers:
            hidden = layer(hidden, padding_mask=padding_mask)
        return self.final_norm(hidden)

    def encode(self, token_ids: np.ndarray) -> Tensor:
        """Return a pooled (mean over real tokens) representation per sequence."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        hidden = self.forward(token_ids)
        keep = (token_ids != self.padding_idx).astype(np.float64)
        denom = np.maximum(keep.sum(axis=1, keepdims=True), 1.0)
        weights = Tensor(keep[:, :, None] / denom[:, :, None])
        return (hidden * weights).sum(axis=1)


class TransformerDecoderLayer(Module):
    """Pre-norm decoder block: causal self-attention, cross-attention, FFN."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        hidden_dim: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.self_attention = MultiHeadAttention(model_dim, num_heads, dropout, rng=rng)
        self.cross_attention = MultiHeadAttention(model_dim, num_heads, dropout, rng=rng)
        self.feed_forward = FeedForward(model_dim, hidden_dim, dropout, rng=rng)
        self.norm_self = LayerNorm(model_dim)
        self.norm_cross = LayerNorm(model_dim)
        self.norm_feed_forward = LayerNorm(model_dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        memory: Tensor,
        memory_padding_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        attended = self.self_attention(self.norm_self(x), causal=True)
        x = x + self.dropout(attended)
        crossed = self.cross_attention(
            self.norm_cross(x), key=memory, value=memory, key_padding_mask=memory_padding_mask
        )
        x = x + self.dropout(crossed)
        x = x + self.feed_forward(self.norm_feed_forward(x))
        return x


class TransformerDecoder(Module):
    """Decoder stack with a tied output projection to vocabulary logits."""

    def __init__(
        self,
        vocab_size: int,
        model_dim: int = 64,
        num_layers: int = 2,
        num_heads: int = 4,
        hidden_dim: int = 128,
        max_length: int = 64,
        dropout: float = 0.1,
        padding_idx: int = 0,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.padding_idx = padding_idx
        self.token_embedding = Embedding(vocab_size, model_dim, rng=rng, padding_idx=padding_idx)
        self.position_embedding = PositionalEmbedding(max_length, model_dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerDecoderLayer(model_dim, num_heads, hidden_dim, dropout, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(model_dim)
        self.output_proj = Linear(model_dim, vocab_size, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        token_ids: np.ndarray,
        memory: Tensor,
        memory_padding_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        token_ids = np.asarray(token_ids, dtype=np.int64)
        if token_ids.ndim == 1:
            token_ids = token_ids[None, :]
        hidden = self.token_embedding(token_ids) + self.position_embedding(token_ids.shape[1])
        hidden = self.dropout(hidden)
        for layer in self.layers:
            hidden = layer(hidden, memory, memory_padding_mask=memory_padding_mask)
        hidden = self.final_norm(hidden)
        return self.output_proj(hidden)
