"""IVF-style approximate shard: coarse k-means cells + exact re-scoring.

The exact :class:`~repro.linking.candidates.EntityIndex` scores every entity
for every query — perfect at 521 entities, impossible at millions.
:class:`IVFShard` is the approximate drop-in for one
:class:`~repro.linking.candidates.ShardedEntityIndex` shard:

1. **Coarse stage** — entity embeddings are clustered into ``num_cells``
   k-means cells (seeded, deterministic).  A query scores only the
   ``num_cells`` centroids and probes the best ``nprobe`` cells.
2. **Re-scoring stage** — the entities of the probed cells are re-scored
   with *exact* inner products against the stored embeddings (decoded from
   the shard's codec), so the final ranking is exact over the candidate set
   and quality is a pure recall question: did the probed cells contain the
   true top-k?  ``nprobe == num_cells`` degenerates to the exact index.

Both stages are vectorized over the whole query batch: one centroid matmul,
one ragged gather of every probed cell, one fused ``einsum`` re-score and
one ``lexsort`` top-k — no per-query model math in Python.

**Online mutation** routes through a small exact *pending tail*:
:meth:`add` / :meth:`update` append to an in-RAM float64 tail that every
search scans alongside the IVF lists (new entities are linkable
immediately, no re-clustering on the hot path); :meth:`remove` tombstones.
:meth:`compact` folds the tail and drops tombstones into a freshly
re-clustered generation and atomically swaps it in — searches never lock,
they read one immutable state snapshot per call.

Determinism: k-means init and iteration are driven by a seeded generator,
candidate ordering ties break by (score desc, position asc), and positions
are stable between compactions, so repeated searches of an unchanged shard
return identical rankings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..kb.entity import Entity
from ..linking.candidates import RetrievalResult
from .codecs import VectorStorage, as_storage, encode_matrix, storage_from_arrays

#: Default number of probed cells per query.
DEFAULT_NPROBE = 8

#: Default Lloyd iterations for the coarse clustering.
DEFAULT_KMEANS_ITERS = 8


def default_num_cells(num_entities: int) -> int:
    """The usual IVF heuristic: ~sqrt(N) cells, at least 1, at most N."""
    if num_entities <= 0:
        return 1
    return max(1, min(num_entities, int(round(float(np.sqrt(num_entities))))))


def kmeans(
    vectors: np.ndarray,
    num_cells: int,
    seed: int = 0,
    iters: int = DEFAULT_KMEANS_ITERS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Seeded deterministic Lloyd k-means.

    Returns ``(centroids, assignments)``.  Initialisation draws ``num_cells``
    distinct rows with a seeded generator; empty cells are re-seeded each
    iteration to the points currently worst-served by their centroid, so no
    cell stays empty while there are enough points — both choices are
    deterministic functions of ``(vectors, num_cells, seed)``.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = len(vectors)
    if n == 0:
        raise ValueError("cannot cluster zero vectors")
    k = max(1, min(num_cells, n))
    rng = np.random.default_rng(seed)
    centroids = vectors[np.sort(rng.choice(n, size=k, replace=False))].copy()

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(max(1, iters)):
        # Nearest centroid under L2: argmin |c|^2 - 2 v.c (|v|^2 constant).
        scores = vectors @ centroids.T
        norms = np.einsum("cd,cd->c", centroids, centroids)
        assignments = np.argmin(norms[None, :] - 2.0 * scores, axis=1)
        counts = np.bincount(assignments, minlength=k)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, vectors)
        filled = counts > 0
        centroids[filled] = sums[filled] / counts[filled, None]
        empty = np.flatnonzero(~filled)
        if empty.size:
            # Re-seed each empty cell with the point farthest from its
            # current centroid (deterministic: distances then position).
            own = np.take_along_axis(
                norms[None, :] - 2.0 * scores, assignments[:, None], axis=1
            ).ravel()
            worst = np.argsort(-own, kind="stable")[: empty.size]
            centroids[empty] = vectors[worst]
    # One final assignment pass against the returned centroids: the loop
    # moves centroids (means + empty-cell re-seeds) *after* assigning, so
    # without this a re-seeded cell would sit directly on a real point
    # while its inverted list is empty — a deterministic recall hole for
    # queries matching exactly that point.
    scores = vectors @ centroids.T
    norms = np.einsum("cd,cd->c", centroids, centroids)
    assignments = np.argmin(norms[None, :] - 2.0 * scores, axis=1)
    return centroids, assignments


def _invert_assignments(
    assignments: np.ndarray, num_cells: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Build concatenated inverted lists: (members, offsets).

    ``members[offsets[c]:offsets[c+1]]`` holds the positions of cell ``c``
    in ascending position order (stable sort), so list layout is
    deterministic.
    """
    members = np.argsort(assignments, kind="stable").astype(np.int64)
    counts = np.bincount(assignments, minlength=num_cells)
    offsets = np.zeros(num_cells + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return members, offsets


@dataclass(frozen=True)
class _IVFState:
    """One immutable generation of an IVF shard.

    Searches read a single reference to this object; mutations build a new
    state (copy-on-write of the parts they touch) and atomically swap the
    reference, so a search never observes a half-applied mutation.

    Positions are *stable*: main entities keep their row position for the
    lifetime of a generation (removals tombstone via ``main_alive``), and
    pending entities occupy ``len(main) + j`` with ``j`` append-only
    (removals tombstone via ``pending_alive``).  :meth:`IVFShard.compact`
    starts a new generation with fresh positions.
    """

    centroids: np.ndarray          # (num_cells, dim) float64
    members: np.ndarray            # (num_main,) int64 concatenated cell lists
    offsets: np.ndarray            # (num_cells + 1,) int64
    storage: VectorStorage         # main embeddings (possibly quantized/mmap)
    main_entities: Tuple[Entity, ...]
    main_alive: np.ndarray         # (num_main,) bool
    pending_entities: Tuple[Entity, ...]
    pending_vectors: np.ndarray    # (num_pending, dim) float64, exact
    pending_alive: np.ndarray      # (num_pending,) bool
    generation: int = 0
    id_to_position: Dict[str, int] = field(default_factory=dict)

    @property
    def num_main(self) -> int:
        return len(self.main_entities)

    @property
    def num_cells(self) -> int:
        return len(self.centroids)

    def alive_count(self) -> int:
        return int(self.main_alive.sum()) + int(self.pending_alive.sum())

    def entity_at(self, position: int) -> Entity:
        if position < self.num_main:
            return self.main_entities[position]
        return self.pending_entities[position - self.num_main]

    def vector_at(self, position: int) -> np.ndarray:
        if position < self.num_main:
            return self.storage.take(np.asarray([position]))[0]
        return np.asarray(self.pending_vectors[position - self.num_main],
                          dtype=np.float64)


def _empty_pending(dim: int) -> Tuple[Tuple[Entity, ...], np.ndarray, np.ndarray]:
    return (), np.zeros((0, dim), dtype=np.float64), np.zeros(0, dtype=bool)


class IVFShard:
    """Approximate MIPS shard: coarse k-means probe + exact re-scoring.

    Implements the same search/lookup surface as
    :class:`~repro.linking.candidates.EntityIndex` (``search_arrays``,
    ``search_arrays_with_ids``, ``search``, ``entity``, ``vector``,
    ``entity_id_at``, ``__len__``, ``__contains__``), so a
    :class:`ShardedEntityIndex` can hold exact and IVF shards
    interchangeably.

    Parameters
    ----------
    entities, vectors:
        The shard content.  ``vectors`` may be a raw float64 matrix (also
        memory-mapped) or a pre-encoded :class:`VectorStorage`.
    num_cells:
        Coarse cells; default ``~sqrt(len(entities))``.
    nprobe:
        Cells probed per query (clamped to ``num_cells``).  ``nprobe ==
        num_cells`` searches exhaustively — exact-parity mode.
    codec:
        Storage codec applied when ``vectors`` is a raw matrix
        (``float64`` / ``float16`` / ``int8``).
    seed, kmeans_iters:
        Clustering determinism knobs.
    """

    def __init__(
        self,
        entities: Sequence[Entity],
        vectors: Union[np.ndarray, VectorStorage],
        num_cells: Optional[int] = None,
        nprobe: int = DEFAULT_NPROBE,
        codec: str = "float64",
        seed: int = 0,
        kmeans_iters: int = DEFAULT_KMEANS_ITERS,
    ) -> None:
        entities = list(entities)
        if len(entities) == 0:
            raise ValueError("cannot build an IVF shard over zero entities")
        if nprobe <= 0:
            raise ValueError("nprobe must be positive")
        self.nprobe = nprobe
        self.codec = codec
        self.seed = seed
        self.kmeans_iters = kmeans_iters
        #: The *configured* cell count (None = sqrt heuristic); compact()
        #: re-applies it so an explicitly sized shard stays that size.
        self.num_cells_config = num_cells
        self._lock = threading.Lock()

        if isinstance(vectors, VectorStorage):
            storage = vectors
            dense_for_kmeans = None
        else:
            dense = np.asarray(vectors, dtype=np.float64)
            if len(dense) != len(entities):
                raise ValueError("entities and vectors must align")
            storage = dense if codec == "float64" else None
            dense_for_kmeans = dense
        if isinstance(storage, np.ndarray):
            storage = as_storage(storage)
        elif storage is None:
            storage = encode_matrix(dense_for_kmeans, codec)
        if len(storage) != len(entities):
            raise ValueError("entities and vectors must align")
        self.codec = storage.codec

        cells = default_num_cells(len(entities)) if num_cells is None else num_cells
        cells = max(1, min(cells, len(entities)))
        # Cluster on the decoded embeddings so cell geometry matches what
        # re-scoring sees (quantization shifts points slightly).
        cluster_input = (
            dense_for_kmeans
            if dense_for_kmeans is not None and storage.codec == "float64"
            else storage.to_dense()
        )
        centroids, assignments = kmeans(
            cluster_input, cells, seed=seed, iters=kmeans_iters
        )
        members, offsets = _invert_assignments(assignments, len(centroids))
        self._state = _IVFState(
            centroids=centroids,
            members=members,
            offsets=offsets,
            storage=storage,
            main_entities=tuple(entities),
            main_alive=np.ones(len(entities), dtype=bool),
            pending_entities=(),
            pending_vectors=np.zeros((0, storage.dim), dtype=np.float64),
            pending_alive=np.zeros(0, dtype=bool),
            generation=0,
            id_to_position={
                entity.entity_id: position
                for position, entity in enumerate(entities)
            },
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._state.alive_count()

    @property
    def dimension(self) -> int:
        return self._state.storage.dim

    @property
    def generation(self) -> int:
        """Compaction generation (0 for a freshly built shard)."""
        return self._state.generation

    @property
    def num_cells(self) -> int:
        return self._state.num_cells

    @property
    def num_pending(self) -> int:
        """Alive entities in the exact pending tail (0 after compact)."""
        return int(self._state.pending_alive.sum())

    @property
    def num_tombstones(self) -> int:
        state = self._state
        return int((~state.main_alive).sum()) + int((~state.pending_alive).sum())

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._state.id_to_position

    def entities(self) -> List[Entity]:
        """Alive entities: main (position order) then pending tail."""
        state = self._state
        out = [e for pos, e in enumerate(state.main_entities) if state.main_alive[pos]]
        out.extend(
            e for j, e in enumerate(state.pending_entities) if state.pending_alive[j]
        )
        return out

    def entity(self, entity_id: str) -> Entity:
        state = self._state
        return state.entity_at(state.id_to_position[entity_id])

    def entity_id_at(self, position: int) -> str:
        return self._state.entity_at(int(position)).entity_id

    def vector(self, entity_id: str) -> np.ndarray:
        """Current embedding of one entity (decoded from storage or tail)."""
        state = self._state
        return state.vector_at(state.id_to_position[entity_id])

    def stats(self) -> Dict[str, object]:
        state = self._state
        return {
            "backend": "ivf",
            "codec": state.storage.codec,
            "num_cells": state.num_cells,
            "nprobe": min(self.nprobe, state.num_cells),
            "entities": state.alive_count(),
            "pending": self.num_pending,
            "tombstones": self.num_tombstones,
            "generation": state.generation,
            "storage_bytes": state.storage.nbytes,
        }

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search_arrays(
        self, query_vectors: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k ``(scores, positions)`` per query over the probed cells.

        Fully vectorized over the batch: centroid scoring, ragged gather of
        every probed cell, one fused re-score, one lexsort.  Rows sorted by
        decreasing score, ties broken by ascending position; rows with fewer
        than ``k`` candidates are padded with ``-inf`` / position ``-1``.

        The returned positions are only meaningful against the generation
        that produced them; callers who resolve them to entities must use
        :meth:`search` / :meth:`search_arrays_with_ids`, which pin one state
        snapshot for both steps (a racing :meth:`compact` remaps positions).
        """
        return self._search_arrays(self._state, query_vectors, k)

    def search_arrays_with_ids(
        self, query_vectors: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`search_arrays` plus per-slot entity ids, atomically.

        Scores, positions and ids all come from *one* state snapshot, so a
        :meth:`compact` or mutation landing mid-call can never remap the
        positions between scoring and id resolution.  The third array is
        object-dtype, shaped like ``positions``, holding entity id strings
        with ``None`` in padding slots — it is what the
        :class:`~repro.linking.candidates.ShardedEntityIndex` fan-out merge
        consumes instead of post-hoc ``entity_id_at`` lookups.
        """
        state = self._state  # one read: scoring and id resolution agree
        scores, positions = self._search_arrays(state, query_vectors, k)
        flat_positions = positions.ravel()
        flat_ids = np.empty(flat_positions.shape, dtype=object)
        for i in np.flatnonzero(flat_positions >= 0):
            flat_ids[i] = state.entity_at(int(flat_positions[i])).entity_id
        return scores, positions, flat_ids.reshape(positions.shape)

    def _search_arrays(
        self, state: _IVFState, query_vectors: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Search one pinned ``state``; every read below goes through it."""
        if k <= 0:
            raise ValueError("k must be positive")
        queries = np.atleast_2d(np.asarray(query_vectors, dtype=np.float64))
        num_queries = len(queries)

        cand_rows, cand_positions = self._gather_candidates(state, queries)
        if cand_positions.size == 0:
            return (
                np.full((num_queries, 0), -np.inf),
                np.full((num_queries, 0), -1, dtype=np.int64),
            )

        # Exact re-scoring: decode only the candidate rows, score each
        # against its own query in one fused product.
        main_mask = cand_positions < state.num_main
        vectors = np.empty((len(cand_positions), state.storage.dim))
        if main_mask.any():
            vectors[main_mask] = state.storage.take(cand_positions[main_mask])
        if (~main_mask).any():
            vectors[~main_mask] = state.pending_vectors[
                cand_positions[~main_mask] - state.num_main
            ]
        scores = np.einsum("td,td->t", vectors, queries[cand_rows])

        # Per-query top-k over the ragged candidate groups: order rows by
        # (query, score desc, position asc) and keep the first k per group.
        order = np.lexsort((cand_positions, -scores, cand_rows))
        sorted_rows = cand_rows[order]
        group_starts = np.searchsorted(sorted_rows, np.arange(num_queries))
        rank_in_group = np.arange(len(order)) - group_starts[sorted_rows]
        keep = rank_in_group < k
        kept = order[keep]
        kept_rows = cand_rows[kept]
        kept_rank = rank_in_group[keep]

        width = min(k, int(np.bincount(kept_rows, minlength=num_queries).max()))
        out_scores = np.full((num_queries, width), -np.inf)
        out_positions = np.full((num_queries, width), -1, dtype=np.int64)
        out_scores[kept_rows, kept_rank] = scores[kept]
        out_positions[kept_rows, kept_rank] = cand_positions[kept]
        return out_scores, out_positions

    def _gather_candidates(
        self, state: _IVFState, queries: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(query_row, candidate_position)`` pairs for the batch.

        Probes the top ``nprobe`` centroids per query, expands their
        inverted lists with a vectorized ragged gather, filters tombstones
        and appends the alive pending tail to every query's candidates.
        """
        num_queries = len(queries)
        nprobe = min(self.nprobe, state.num_cells)

        rows_parts: List[np.ndarray] = []
        positions_parts: List[np.ndarray] = []
        if state.num_main:
            if nprobe >= state.num_cells:
                probe = np.broadcast_to(
                    np.arange(state.num_cells, dtype=np.int64),
                    (num_queries, state.num_cells),
                )
            else:
                cell_scores = queries @ state.centroids.T
                probe = np.argpartition(-cell_scores, nprobe - 1, axis=1)[:, :nprobe]
            starts = state.offsets[probe].ravel()
            lengths = (state.offsets[probe + 1] - state.offsets[probe]).ravel()
            total = int(lengths.sum())
            if total:
                # Ragged ranges: members[starts[i] : starts[i]+lengths[i]]
                # for every probed cell, without a Python loop.
                ends = np.cumsum(lengths)
                flat = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - (ends - lengths), lengths
                )
                positions = state.members[flat]
                rows = np.repeat(
                    np.arange(num_queries, dtype=np.int64),
                    lengths.reshape(num_queries, -1).sum(axis=1),
                )
                alive = state.main_alive[positions]
                rows_parts.append(rows[alive])
                positions_parts.append(positions[alive])
        if state.pending_alive.any():
            tail = state.num_main + np.flatnonzero(state.pending_alive).astype(np.int64)
            rows_parts.append(
                np.repeat(np.arange(num_queries, dtype=np.int64), len(tail))
            )
            positions_parts.append(np.tile(tail, num_queries))
        if not rows_parts:
            return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        return np.concatenate(rows_parts), np.concatenate(positions_parts)

    def search(self, query_vectors: np.ndarray, k: int) -> List[RetrievalResult]:
        """Top-k approximate search returning :class:`RetrievalResult` rows."""
        state = self._state  # one snapshot for both scoring and id resolution
        scores, positions = self._search_arrays(state, query_vectors, k)
        results: List[RetrievalResult] = []
        for row_scores, row_positions in zip(scores, positions):
            valid = row_positions >= 0
            results.append(
                RetrievalResult(
                    entity_ids=[
                        state.entity_at(int(p)).entity_id
                        for p in row_positions[valid]
                    ],
                    scores=[float(s) for s in row_scores[valid]],
                )
            )
        return results

    def retrieve_entities(
        self, query_vectors: np.ndarray, k: int
    ) -> List[List[Entity]]:
        state = self._state  # one snapshot for both scoring and resolution
        _, positions = self._search_arrays(state, query_vectors, k)
        return [
            [state.entity_at(int(p)) for p in row[row >= 0]] for row in positions
        ]

    # ------------------------------------------------------------------
    # Online mutation (pending tail + tombstones)
    # ------------------------------------------------------------------
    def add(self, entities: Sequence[Entity], vectors: np.ndarray) -> None:
        """Append entities to the exact pending tail (searchable immediately)."""
        entities = list(entities)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        if not entities:
            return
        with self._lock:
            state = self._state
            for entity in entities:
                if entity.entity_id in state.id_to_position:
                    raise ValueError(
                        f"entity {entity.entity_id!r} already indexed; use update()"
                    )
            base = state.num_main + len(state.pending_entities)
            id_to_position = dict(state.id_to_position)
            for j, entity in enumerate(entities):
                id_to_position[entity.entity_id] = base + j
            self._state = replace(
                state,
                pending_entities=state.pending_entities + tuple(entities),
                pending_vectors=np.concatenate(
                    [state.pending_vectors, vectors], axis=0
                ),
                pending_alive=np.concatenate(
                    [state.pending_alive, np.ones(len(entities), dtype=bool)]
                ),
                id_to_position=id_to_position,
            )

    def remove(self, entity_ids: Sequence[str]) -> None:
        """Tombstone entities; their positions are never returned again."""
        ids = list(entity_ids)
        if not ids:
            return
        with self._lock:
            state = self._state
            main_alive = state.main_alive.copy()
            pending_alive = state.pending_alive.copy()
            id_to_position = dict(state.id_to_position)
            for entity_id in ids:
                position = id_to_position.pop(entity_id, None)
                if position is None:
                    raise KeyError(f"unknown entity {entity_id!r}")
                if position < state.num_main:
                    main_alive[position] = False
                else:
                    pending_alive[position - state.num_main] = False
            self._state = replace(
                state,
                main_alive=main_alive,
                pending_alive=pending_alive,
                id_to_position=id_to_position,
            )

    def update(self, entities: Sequence[Entity], vectors: np.ndarray) -> None:
        """Replace entities in place: tombstone the old row, append the new.

        The entity id is preserved; the fresh metadata/embedding lives in
        the exact pending tail until the next :meth:`compact`.  Tombstone
        and append happen in *one* state swap under one lock acquisition,
        so a concurrent search sees either the old row or the new one —
        never the entity transiently absent.
        """
        entities = list(entities)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if len(entities) != len(vectors):
            raise ValueError("entities and vectors must align")
        if not entities:
            return
        with self._lock:
            state = self._state
            missing = [
                e.entity_id
                for e in entities
                if e.entity_id not in state.id_to_position
            ]
            if missing:
                raise KeyError(f"unknown entities: {missing}")
            main_alive = state.main_alive.copy()
            pending_alive = np.concatenate(
                [state.pending_alive, np.ones(len(entities), dtype=bool)]
            )
            id_to_position = dict(state.id_to_position)
            base = state.num_main + len(state.pending_entities)
            for j, entity in enumerate(entities):
                old = id_to_position[entity.entity_id]
                if old < state.num_main:
                    main_alive[old] = False
                else:
                    pending_alive[old - state.num_main] = False
                id_to_position[entity.entity_id] = base + j
            self._state = replace(
                state,
                main_alive=main_alive,
                pending_entities=state.pending_entities + tuple(entities),
                pending_vectors=np.concatenate(
                    [state.pending_vectors, vectors], axis=0
                ),
                pending_alive=pending_alive,
                id_to_position=id_to_position,
            )

    def compact(self) -> int:
        """Fold the pending tail + tombstones into a re-clustered generation.

        Builds the new centroids, inverted lists and (re-encoded) storage
        off to the side and swaps the whole state in one reference
        assignment — concurrent searches either see the old generation or
        the new one, never a mix.  Returns the new generation number.
        """
        with self._lock:
            state = self._state
            keep_main = np.flatnonzero(state.main_alive)
            keep_pending = np.flatnonzero(state.pending_alive)
            entities = [state.main_entities[i] for i in keep_main]
            entities += [state.pending_entities[j] for j in keep_pending]
            if not entities:
                raise ValueError("cannot compact a shard down to zero entities")
            dense = np.concatenate(
                [
                    state.storage.take(keep_main)
                    if keep_main.size
                    else np.zeros((0, state.storage.dim)),
                    state.pending_vectors[keep_pending],
                ],
                axis=0,
            )
            cells = (
                default_num_cells(len(entities))
                if self.num_cells_config is None
                else self.num_cells_config
            )
            cells = max(1, min(cells, len(entities)))
            centroids, assignments = kmeans(
                dense, cells, seed=self.seed, iters=self.kmeans_iters
            )
            members, offsets = _invert_assignments(assignments, len(centroids))
            storage = encode_matrix(dense, self.codec)
            self._state = _IVFState(
                centroids=centroids,
                members=members,
                offsets=offsets,
                storage=storage,
                main_entities=tuple(entities),
                main_alive=np.ones(len(entities), dtype=bool),
                pending_entities=(),
                pending_vectors=np.zeros((0, storage.dim), dtype=np.float64),
                pending_alive=np.zeros(0, dtype=bool),
                generation=state.generation + 1,
                id_to_position={
                    entity.entity_id: position
                    for position, entity in enumerate(entities)
                },
            )
            return self._state.generation

    # ------------------------------------------------------------------
    # Snapshot (de)serialization — called by ShardedEntityIndex.save/load
    # ------------------------------------------------------------------
    def export_snapshot(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Manifest fragment + arrays persisting the exact live state.

        Pending tail and tombstones round-trip as-is (no silent compaction,
        no re-encode drift): a restored shard ranks identically to the
        live one.
        """
        state = self._state
        entry: Dict[str, object] = {
            "backend": "ivf",
            "codec": state.storage.codec,
            "nprobe": self.nprobe,
            "num_cells": state.num_cells,
            "num_cells_config": self.num_cells_config,
            "seed": self.seed,
            "kmeans_iters": self.kmeans_iters,
            "generation": state.generation,
            "entities": [entity.to_dict() for entity in state.main_entities],
            "pending_entities": [e.to_dict() for e in state.pending_entities],
        }
        arrays: Dict[str, np.ndarray] = {
            "centroids": state.centroids,
            "members": state.members,
            "offsets": state.offsets,
            "main_alive": state.main_alive,
            "pending_vectors": state.pending_vectors,
            "pending_alive": state.pending_alive,
        }
        for key, array in state.storage.arrays().items():
            arrays[f"storage_{key}" if key else "storage"] = array
        return entry, arrays

    @classmethod
    def from_snapshot(
        cls, entry: Dict[str, object], arrays: Dict[str, np.ndarray]
    ) -> "IVFShard":
        """Restore a shard saved via :meth:`export_snapshot`.

        Arrays may be memory-mapped; the coarse structures (centroids,
        lists, alive masks) are materialised — they are tiny — while the
        embedding storage stays lazy.
        """
        codec = str(entry["codec"])
        storage_arrays = {
            (key[len("storage_"):] if key.startswith("storage_") else ""): value
            for key, value in arrays.items()
            if key == "storage" or key.startswith("storage_")
        }
        storage = storage_from_arrays(storage_arrays, codec)
        shard = cls.__new__(cls)
        shard.nprobe = int(entry["nprobe"])
        shard.codec = codec
        shard.seed = int(entry.get("seed", 0))
        shard.kmeans_iters = int(entry.get("kmeans_iters", DEFAULT_KMEANS_ITERS))
        raw_config = entry.get("num_cells_config")
        shard.num_cells_config = None if raw_config is None else int(raw_config)
        shard._lock = threading.Lock()
        main_entities = tuple(
            Entity.from_dict(payload) for payload in entry["entities"]
        )
        pending_entities = tuple(
            Entity.from_dict(payload) for payload in entry.get("pending_entities", [])
        )
        main_alive = np.ascontiguousarray(arrays["main_alive"]).astype(bool)
        pending_alive = np.ascontiguousarray(arrays["pending_alive"]).astype(bool)
        id_to_position = {
            entity.entity_id: position
            for position, entity in enumerate(main_entities)
            if main_alive[position]
        }
        for j, entity in enumerate(pending_entities):
            if pending_alive[j]:
                id_to_position[entity.entity_id] = len(main_entities) + j
        shard._state = _IVFState(
            centroids=np.ascontiguousarray(arrays["centroids"], dtype=np.float64),
            members=np.ascontiguousarray(arrays["members"], dtype=np.int64),
            offsets=np.ascontiguousarray(arrays["offsets"], dtype=np.int64),
            storage=storage,
            main_entities=main_entities,
            main_alive=main_alive,
            pending_entities=pending_entities,
            pending_vectors=np.ascontiguousarray(
                arrays["pending_vectors"], dtype=np.float64
            ),
            pending_alive=pending_alive,
            generation=int(entry.get("generation", 0)),
            id_to_position=id_to_position,
        )
        return shard
