"""Quantized embedding storage codecs for the approximate index layer.

An index shard holds one ``(num_entities, dim)`` embedding matrix.  At the
million-entity scale that matrix is the dominant memory cost, so the
:mod:`repro.index` subsystem stores it behind a small *storage* abstraction
that can trade precision for bytes:

=========  =================================  ==========================
codec      persisted arrays (per shard)       bytes / component
=========  =================================  ==========================
float64    the raw matrix (reference)         8
float16    half-precision matrix              2
int8       codes + per-entity scale/zero      1 (+16 per entity)
=========  =================================  ==========================

``int8`` uses an affine per-entity (per-row) quantizer: each row is mapped
onto the signed byte range with its own ``scale`` and ``zero`` point, so a
row with a small dynamic range keeps small absolute error regardless of its
neighbours.  The worst-case per-component reconstruction error is
``scale / 2 = (row_max - row_min) / (2 * 255)``.

Every storage decodes back to float64 on access — :meth:`VectorStorage.take`
gathers and decodes only the requested rows, which is what makes quantized
matrices pair well with memory-mapped snapshots: the IVF re-scoring pass
touches ~``nprobe / num_cells`` of the KB per query, and only those pages
are ever read or decoded.

Codecs are looked up by name through :func:`storage_codec`; an unrecognised
name raises :class:`UnknownCodecError` with the known-codec list, which is
also the error a *newer* snapshot written with a codec this build does not
know produces at load time.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Type, Union

import numpy as np

#: Canonical codec names, in declaration order.
CODEC_FLOAT64 = "float64"
CODEC_FLOAT16 = "float16"
CODEC_INT8 = "int8"


class UnknownCodecError(ValueError):
    """A snapshot or build request named a codec this build does not know."""

    def __init__(self, codec: str) -> None:
        super().__init__(
            f"unknown embedding codec {codec!r}; known codecs: "
            f"{', '.join(sorted(CODECS))} (a snapshot written by a newer "
            f"build may use a codec this version cannot decode)"
        )
        self.codec = codec


class VectorStorage:
    """Base class: a decodable ``(num_entities, dim)`` embedding matrix.

    Subclasses implement :meth:`encode` / :meth:`from_arrays` plus the row
    accessors; all accessors return float64 arrays, so callers never see the
    underlying representation.
    """

    codec: str = ""

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def dim(self) -> int:
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        """Bytes held (or mapped) by the persisted arrays."""
        return sum(int(array.nbytes) for array in self.arrays().values())

    def take(self, rows: np.ndarray) -> np.ndarray:
        """Gather + decode the given row indices as float64."""
        raise NotImplementedError

    def block(self, start: int, stop: int) -> np.ndarray:
        """Decode a contiguous row slice as float64."""
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        """Decode the whole matrix into one in-RAM float64 array."""
        return self.block(0, len(self))

    def arrays(self) -> Dict[str, np.ndarray]:
        """The persisted arrays, keyed by component name ('' = bare matrix)."""
        raise NotImplementedError

    @classmethod
    def encode(cls, matrix: np.ndarray) -> "VectorStorage":
        raise NotImplementedError

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "VectorStorage":
        raise NotImplementedError


class Float64Storage(VectorStorage):
    """Identity codec: the float64 reference matrix, possibly memory-mapped."""

    codec = CODEC_FLOAT64

    def __init__(self, matrix: np.ndarray) -> None:
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D embedding matrix")
        # asarray keeps a memmap's pages lazy: float64 input is a zero-copy
        # view, so nothing is paged in until rows are actually read.
        self._matrix = np.asarray(matrix, dtype=np.float64)

    def __len__(self) -> int:
        return self._matrix.shape[0]

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    def take(self, rows: np.ndarray) -> np.ndarray:
        return np.asarray(self._matrix[rows], dtype=np.float64)

    def block(self, start: int, stop: int) -> np.ndarray:
        return np.asarray(self._matrix[start:stop], dtype=np.float64)

    def arrays(self) -> Dict[str, np.ndarray]:
        return {"": self._matrix}

    @classmethod
    def encode(cls, matrix: np.ndarray) -> "Float64Storage":
        return cls(np.asarray(matrix, dtype=np.float64))

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "Float64Storage":
        return cls(arrays[""])


class Float16Storage(VectorStorage):
    """Half-precision matrix: 4x smaller, ~3 decimal digits of mantissa."""

    codec = CODEC_FLOAT16

    def __init__(self, half: np.ndarray) -> None:
        if half.ndim != 2:
            raise ValueError("expected a 2-D embedding matrix")
        if half.dtype != np.float16:
            raise ValueError("Float16Storage expects a float16 matrix")
        self._half = half

    def __len__(self) -> int:
        return self._half.shape[0]

    @property
    def dim(self) -> int:
        return self._half.shape[1]

    def take(self, rows: np.ndarray) -> np.ndarray:
        return self._half[rows].astype(np.float64)

    def block(self, start: int, stop: int) -> np.ndarray:
        return self._half[start:stop].astype(np.float64)

    def arrays(self) -> Dict[str, np.ndarray]:
        return {"half": self._half}

    @classmethod
    def encode(cls, matrix: np.ndarray) -> "Float16Storage":
        return cls(np.asarray(matrix, dtype=np.float16))

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "Float16Storage":
        return cls(np.asarray(arrays["half"], dtype=np.float16))


class Int8Storage(VectorStorage):
    """Affine per-entity int8 quantization: ``row ≈ (codes + 128) * scale + zero``.

    ``scale`` and ``zero`` are per-row float64 scalars; a constant row
    (``max == min``) gets ``scale = 0`` and decodes exactly.  Worst-case
    per-component error is ``scale / 2``.
    """

    codec = CODEC_INT8

    def __init__(self, codes: np.ndarray, scale: np.ndarray, zero: np.ndarray) -> None:
        if codes.ndim != 2:
            raise ValueError("expected a 2-D code matrix")
        if codes.dtype != np.int8:
            raise ValueError("Int8Storage expects int8 codes")
        if scale.shape != (codes.shape[0],) or zero.shape != (codes.shape[0],):
            raise ValueError("scale/zero must hold one value per entity row")
        self._codes = codes
        self._scale = np.asarray(scale, dtype=np.float64)
        self._zero = np.asarray(zero, dtype=np.float64)

    def __len__(self) -> int:
        return self._codes.shape[0]

    @property
    def dim(self) -> int:
        return self._codes.shape[1]

    def _decode(self, codes: np.ndarray, rows: np.ndarray) -> np.ndarray:
        levels = codes.astype(np.float64) + 128.0
        return levels * self._scale[rows, None] + self._zero[rows, None]

    def take(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows)
        return self._decode(self._codes[rows], rows)

    def block(self, start: int, stop: int) -> np.ndarray:
        stop = min(stop, len(self))
        return self._decode(self._codes[start:stop], np.arange(start, stop))

    def arrays(self) -> Dict[str, np.ndarray]:
        return {"codes": self._codes, "scale": self._scale, "zero": self._zero}

    @classmethod
    def encode(cls, matrix: np.ndarray) -> "Int8Storage":
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ValueError("expected a 2-D embedding matrix")
        row_min = matrix.min(axis=1) if matrix.size else np.zeros(len(matrix))
        row_max = matrix.max(axis=1) if matrix.size else np.zeros(len(matrix))
        scale = (row_max - row_min) / 255.0
        zero = row_min
        safe = np.where(scale > 0.0, scale, 1.0)
        levels = np.rint((matrix - zero[:, None]) / safe[:, None])
        levels[scale == 0.0] = 0.0
        codes = (np.clip(levels, 0.0, 255.0) - 128.0).astype(np.int8)
        return cls(codes, scale, zero)

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, np.ndarray]) -> "Int8Storage":
        return cls(
            np.asarray(arrays["codes"], dtype=np.int8),
            np.asarray(arrays["scale"], dtype=np.float64),
            np.asarray(arrays["zero"], dtype=np.float64),
        )


#: Codec registry: name -> storage class.
CODECS: Dict[str, Type[VectorStorage]] = {
    CODEC_FLOAT64: Float64Storage,
    CODEC_FLOAT16: Float16Storage,
    CODEC_INT8: Int8Storage,
}


def storage_codec(codec: str) -> Type[VectorStorage]:
    """Resolve a codec name; raises :class:`UnknownCodecError` if unknown."""
    try:
        return CODECS[codec]
    except KeyError:
        raise UnknownCodecError(codec) from None


def encode_matrix(matrix: np.ndarray, codec: str) -> VectorStorage:
    """Encode a float64 matrix under the named codec."""
    return storage_codec(codec).encode(matrix)


def storage_from_arrays(
    arrays: Mapping[str, np.ndarray], codec: str
) -> VectorStorage:
    """Rehydrate a storage from its persisted (possibly memory-mapped) arrays."""
    return storage_codec(codec).from_arrays(arrays)


def as_storage(vectors: Union[np.ndarray, VectorStorage]) -> VectorStorage:
    """Wrap a raw matrix as float64 storage; pass existing storages through."""
    if isinstance(vectors, VectorStorage):
        return vectors
    return Float64Storage(np.asarray(vectors, dtype=np.float64))
