"""Approximate + quantized retrieval for million-entity knowledge bases.

``repro.index`` is the storage and retrieval foundation beneath the exact
:mod:`repro.linking.candidates` layer:

* :mod:`~repro.index.codecs` — int8 / float16 / float64 embedding storage
  codecs; quantized matrices decode per-row, so they pair with
  memory-mapped snapshots (only probed pages are ever read).
* :mod:`~repro.index.ivf` — :class:`IVFShard`: coarse k-means cells with an
  exact re-scoring pass, online mutation through an exact pending tail, and
  lock-free atomic-swap :meth:`~IVFShard.compact`.
* :mod:`~repro.index.backend` — :class:`ExactBackend` / :class:`IVFBackend`
  plugged into :class:`~repro.linking.candidates.ShardedEntityIndex`; the
  exact index stays the reference, IVF is opt-in.
* :mod:`~repro.index.snapshot` — generation store with an atomic
  ``CURRENT`` pointer swap for online compaction under serving.

Quickstart::

    from repro.index import IVFBackend, write_generation

    index = biencoder.build_sharded_index(entities, backend=IVFBackend(
        nprobe=8, codec="int8"))
    index.search(queries, k=64)                    # probe + exact re-score
    index.add_entities(new_entities)               # linkable immediately
    write_generation(index, "snapshots/kb", codec="int8")
    restored = biencoder.load_sharded_index("snapshots/kb", mmap=True)
"""

from .backend import ExactBackend, IVFBackend
from .codecs import (
    CODECS,
    Float16Storage,
    Float64Storage,
    Int8Storage,
    UnknownCodecError,
    VectorStorage,
    as_storage,
    encode_matrix,
    storage_codec,
    storage_from_arrays,
)
from .ivf import (
    DEFAULT_KMEANS_ITERS,
    DEFAULT_NPROBE,
    IVFShard,
    default_num_cells,
    kmeans,
)
from .snapshot import (
    CURRENT_MARKER,
    compact_to_generation,
    current_generation,
    list_generations,
    next_generation_number,
    write_generation,
)

__all__ = [
    "CODECS",
    "CURRENT_MARKER",
    "DEFAULT_KMEANS_ITERS",
    "DEFAULT_NPROBE",
    "ExactBackend",
    "Float16Storage",
    "Float64Storage",
    "IVFBackend",
    "IVFShard",
    "Int8Storage",
    "UnknownCodecError",
    "VectorStorage",
    "as_storage",
    "compact_to_generation",
    "current_generation",
    "default_num_cells",
    "encode_matrix",
    "kmeans",
    "list_generations",
    "next_generation_number",
    "storage_codec",
    "storage_from_arrays",
    "write_generation",
]
