"""Pluggable shard backends for :class:`~repro.linking.candidates.ShardedEntityIndex`.

A backend decides what one materialised shard *is*: the exact reference
:class:`~repro.linking.candidates.EntityIndex`, or the approximate
:class:`~repro.index.ivf.IVFShard`.  The sharded index stays the routing /
merging / persistence layer; backends only build the per-shard search
structure from ``(entities, vectors)``:

    from repro.index import IVFBackend
    index = biencoder.build_sharded_index(entities, backend=IVFBackend(nprobe=8))
    index.search(queries, k=64)          # IVF probe + exact re-score

Passing no backend keeps today's behaviour bit-for-bit: the exact index is
the reference implementation, the approximate layer is strictly opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..kb.entity import Entity
from ..linking.candidates import EntityIndex
from .codecs import VectorStorage
from .ivf import DEFAULT_KMEANS_ITERS, DEFAULT_NPROBE, IVFShard


@dataclass(frozen=True)
class ExactBackend:
    """Builds the exact blocked-top-k :class:`EntityIndex` (the default)."""

    name: str = "exact"

    def build(
        self,
        entities: Sequence[Entity],
        vectors: Union[np.ndarray, VectorStorage],
        block_size: int,
    ) -> EntityIndex:
        if isinstance(vectors, VectorStorage):
            vectors = vectors.to_dense()
        return EntityIndex(entities, vectors, block_size=block_size)


@dataclass(frozen=True)
class IVFBackend:
    """Builds :class:`IVFShard` shards: k-means cells + exact re-scoring.

    Parameters mirror :class:`IVFShard`; ``num_cells=None`` picks
    ``~sqrt(shard_size)`` per shard, so one backend instance serves shards
    of very different sizes sensibly.
    """

    num_cells: Optional[int] = None
    nprobe: int = DEFAULT_NPROBE
    codec: str = "float64"
    seed: int = 0
    kmeans_iters: int = DEFAULT_KMEANS_ITERS
    name: str = "ivf"

    def build(
        self,
        entities: Sequence[Entity],
        vectors: Union[np.ndarray, VectorStorage],
        block_size: int,
    ) -> IVFShard:
        return IVFShard(
            entities,
            vectors,
            num_cells=self.num_cells,
            nprobe=self.nprobe,
            codec=self.codec,
            seed=self.seed,
            kmeans_iters=self.kmeans_iters,
        )
