"""Snapshot generations: append-only directories with an atomic CURRENT swap.

A live KB mutates; its serving replicas must not.  The generation store
reconciles the two: each :func:`write_generation` call persists the index
into a *fresh* ``gen-NNNNNNNN`` directory under the store root and then
atomically repoints the ``CURRENT`` marker file (write-temp + rename, the
POSIX atomic publish).  Readers — :meth:`ShardedEntityIndex.load
<repro.linking.candidates.ShardedEntityIndex.load>`, and through it
:meth:`ReplicaPool.from_snapshot
<repro.serving.cluster.ReplicaPool.from_snapshot>` — resolve ``CURRENT``
first, so a reader either sees the complete old generation or the complete
new one, never a half-written directory.

:func:`compact_to_generation` is the online-mutation endgame: compact every
IVF shard (fold pending tails, drop tombstones, re-cluster) and publish the
result as the next generation, while already-loaded replicas keep serving
their (immutable, memory-mapped) old generation until they are rolled.

Layout::

    store/
      CURRENT            -> "gen-00000002"   (atomic pointer)
      gen-00000001/      index.json + arrays/*.npy
      gen-00000002/      index.json + arrays/*.npy
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..linking.candidates import ShardedEntityIndex

#: Name of the atomic pointer file inside a generation store.
CURRENT_MARKER = "CURRENT"

_GENERATION_PATTERN = re.compile(r"^gen-(\d{8})$")


def generation_name(number: int) -> str:
    if number < 0:
        raise ValueError("generation numbers are non-negative")
    return f"gen-{number:08d}"


def list_generations(root: Union[str, Path]) -> List[Path]:
    """Generation directories under ``root``, oldest first."""
    root = Path(root)
    if not root.is_dir():
        return []
    found = [
        child
        for child in root.iterdir()
        if child.is_dir() and _GENERATION_PATTERN.match(child.name)
    ]
    return sorted(found, key=lambda path: path.name)


def current_generation(root: Union[str, Path]) -> Optional[Path]:
    """The generation ``CURRENT`` points at, or None for an empty store.

    A dangling marker (pointing at a deleted directory) raises — that is
    store corruption, not an empty store.
    """
    root = Path(root)
    marker = root / CURRENT_MARKER
    if not marker.exists():
        return None
    name = marker.read_text().strip()
    if not _GENERATION_PATTERN.match(name):
        raise ValueError(f"corrupt {CURRENT_MARKER} marker: {name!r}")
    target = root / name
    if not target.is_dir():
        raise ValueError(
            f"{CURRENT_MARKER} points at missing generation {name!r}"
        )
    return target


def next_generation_number(root: Union[str, Path]) -> int:
    generations = list_generations(root)
    if not generations:
        return 1
    return int(_GENERATION_PATTERN.match(generations[-1].name).group(1)) + 1


def write_generation(
    index: "ShardedEntityIndex",
    root: Union[str, Path],
    codec: str = "float64",
) -> Path:
    """Persist ``index`` as the next generation and atomically publish it.

    The snapshot is written into a fresh ``gen-NNNNNNNN`` directory first;
    only after :meth:`ShardedEntityIndex.save` has committed its manifest is
    the ``CURRENT`` marker swapped (temp file + rename), so readers never
    observe a partial generation.  Returns the generation directory.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    name = generation_name(next_generation_number(root))
    target = root / name
    index.save(target, codec=codec)
    marker_tmp = root / (CURRENT_MARKER + ".tmp")
    marker_tmp.write_text(name)
    marker_tmp.replace(root / CURRENT_MARKER)
    return target


def compact_to_generation(
    index: "ShardedEntityIndex",
    root: Union[str, Path],
    codec: str = "float64",
) -> Path:
    """Compact every compactable shard, then publish the next generation.

    Shards without a ``compact`` method (the exact reference backend) are
    persisted as-is — exact shards fold mutations eagerly and never carry a
    pending tail.
    """
    for world in index.worlds():
        shard = index.shard(world)
        if shard is not None and hasattr(shard, "compact"):
            shard.compact()
    return write_generation(index, root, codec=codec)
