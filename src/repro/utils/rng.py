"""Deterministic random-number management.

Every stochastic component in the repository (corpus generation, data
shuffling, weight initialisation, dropout) draws from an explicitly seeded
:class:`numpy.random.Generator`, so whole experiments are reproducible from a
single integer seed.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

DEFAULT_SEED = 13


def make_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a numpy Generator seeded with ``seed`` (or the default)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed."""
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: int, *labels: str) -> int:
    """Derive a stable sub-seed from a seed and string labels.

    Used so that, e.g., the "lego" and "yugioh" corpora differ even when the
    experiment-level seed is the same.
    """
    value = np.uint64(seed)
    for label in labels:
        for char in label:
            value = np.uint64((int(value) * 1000003 + ord(char)) % (2 ** 63 - 1))
    return int(value)


def shuffled(items: list, rng: np.random.Generator) -> list:
    """Return a shuffled copy of ``items`` without mutating the original."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]


def batched_indices(total: int, batch_size: int, rng: Optional[np.random.Generator] = None) -> Iterator[np.ndarray]:
    """Yield index batches covering ``range(total)``, shuffled when ``rng`` given."""
    order = np.arange(total) if rng is None else rng.permutation(total)
    for start in range(0, total, batch_size):
        yield order[start:start + batch_size]
