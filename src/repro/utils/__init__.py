"""Shared utilities: configuration, deterministic RNG, logging, registries."""

from .config import (
    BiEncoderConfig,
    CorpusConfig,
    CrossEncoderConfig,
    EncoderConfig,
    ExperimentConfig,
    MetaConfig,
    RewriterConfig,
    default_config,
)
from .logging import MetricHistory, get_logger, set_verbosity, timed
from .registry import Registry
from .rng import DEFAULT_SEED, batched_indices, derive_seed, make_rng, shuffled, spawn_rngs

__all__ = [
    "EncoderConfig",
    "BiEncoderConfig",
    "CrossEncoderConfig",
    "RewriterConfig",
    "MetaConfig",
    "CorpusConfig",
    "ExperimentConfig",
    "default_config",
    "MetricHistory",
    "get_logger",
    "set_verbosity",
    "timed",
    "Registry",
    "DEFAULT_SEED",
    "make_rng",
    "spawn_rngs",
    "derive_seed",
    "shuffled",
    "batched_indices",
]
