"""Experiment configuration objects.

The paper's hyper-parameters (Section V, Implementation) are captured here and
scaled down to sizes that train in seconds on CPU.  Each config is a frozen
dataclass so experiments cannot silently mutate shared settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class EncoderConfig:
    """Size of a transformer text encoder (BERT stand-in)."""

    vocab_size: int = 2048
    model_dim: int = 48
    num_layers: int = 1
    num_heads: int = 4
    hidden_dim: int = 96
    max_length: int = 48
    dropout: float = 0.1

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class BiEncoderConfig:
    """Bi-encoder (candidate generation stage) hyper-parameters."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    learning_rate: float = 5e-3
    batch_size: int = 16
    epochs: int = 3
    max_grad_norm: float = 1.0
    seed: int = 13

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class CrossEncoderConfig:
    """Cross-encoder (candidate ranking stage) hyper-parameters.

    The paper sets the cross-encoder batch size to 1 because the meta-learning
    step doubles memory; we keep a small batch for the same reason.
    """

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    learning_rate: float = 5e-3
    batch_size: int = 4
    epochs: int = 3
    num_candidates: int = 8
    max_grad_norm: float = 1.0
    seed: int = 17

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class RewriterConfig:
    """Seq2seq mention rewriter (T5 stand-in) hyper-parameters."""

    vocab_size: int = 2048
    model_dim: int = 48
    num_layers: int = 1
    num_heads: int = 4
    hidden_dim: int = 96
    max_source_length: int = 48
    max_target_length: int = 12
    learning_rate: float = 5e-3
    batch_size: int = 16
    epochs: int = 3
    denoising_epochs: int = 1
    seed: int = 29

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class MetaConfig:
    """Meta-learning (learning-to-reweight) hyper-parameters.

    ``probe_block_size`` controls the exact reweighting path: per-example
    gradients are extracted from one shared batched forward per block of this
    many examples (tokenisation and shared sub-forwards amortised across the
    block) instead of one full forward/backward per example.
    """

    inner_learning_rate: float = 0.05
    meta_batch_size: int = 16
    seed_batch_size: int = 16
    use_exact_per_example_gradients: bool = True
    jvp_epsilon: float = 1e-3
    probe_block_size: int = 4
    seed: int = 31

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class CorpusConfig:
    """Synthetic Zeshel-substitute corpus sizes.

    ``entities_per_domain`` and ``mentions_per_domain`` default to values that
    keep full experiment sweeps under a few minutes on CPU while preserving
    the few-shot structure (50 train / 50 dev / rest test).
    """

    entities_per_domain: int = 120
    mentions_per_domain: int = 260
    description_sentences: int = 2
    context_window: int = 10
    seed: int = 13

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of all configs used by the experiment runners."""

    corpus: CorpusConfig = field(default_factory=CorpusConfig)
    biencoder: BiEncoderConfig = field(default_factory=BiEncoderConfig)
    crossencoder: CrossEncoderConfig = field(default_factory=CrossEncoderConfig)
    rewriter: RewriterConfig = field(default_factory=RewriterConfig)
    meta: MetaConfig = field(default_factory=MetaConfig)
    recall_k: int = 16
    seed_size: int = 50
    dev_size: int = 50
    seed: int = 13

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    def scaled_for_tests(self) -> "ExperimentConfig":
        """Return a copy with very small sizes for fast unit/integration tests."""
        return replace(
            self,
            corpus=replace(self.corpus, entities_per_domain=30, mentions_per_domain=60),
            biencoder=replace(self.biencoder, epochs=1, batch_size=8),
            crossencoder=replace(self.crossencoder, epochs=1, num_candidates=4),
            rewriter=replace(self.rewriter, epochs=1, denoising_epochs=1, batch_size=8),
            recall_k=8,
            seed_size=10,
            dev_size=10,
        )


def default_config(seed: Optional[int] = None) -> ExperimentConfig:
    """Return the default experiment configuration, optionally reseeded."""
    config = ExperimentConfig()
    if seed is not None:
        config = replace(config, seed=seed, corpus=replace(config.corpus, seed=seed))
    return config
