"""Lightweight structured logging for training loops and experiments."""

from __future__ import annotations

import logging
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

_LOGGER_NAME = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return the repository logger (configured on first use)."""
    logger = logging.getLogger(_LOGGER_NAME if name is None else f"{_LOGGER_NAME}.{name}")
    root = logging.getLogger(_LOGGER_NAME)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
        root.addHandler(handler)
        root.setLevel(logging.WARNING)
    return logger


def set_verbosity(level: int) -> None:
    """Set the log level for all repository loggers."""
    logging.getLogger(_LOGGER_NAME).setLevel(level)


@contextmanager
def timed(label: str, sink: Optional[Dict[str, float]] = None) -> Iterator[None]:
    """Context manager measuring wall-clock time of a block.

    If ``sink`` is provided the elapsed seconds are stored under ``label``.
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if sink is not None:
            sink[label] = elapsed
        get_logger("timing").debug("%s took %.3fs", label, elapsed)


class MetricHistory:
    """Accumulate named scalar metrics over training steps or epochs."""

    def __init__(self) -> None:
        self._records: Dict[str, List[float]] = {}

    def add(self, name: str, value: float) -> None:
        self._records.setdefault(name, []).append(float(value))

    def last(self, name: str) -> float:
        values = self._records.get(name)
        if not values:
            raise KeyError(f"no values recorded for metric {name!r}")
        return values[-1]

    def mean(self, name: str) -> float:
        values = self._records.get(name)
        if not values:
            raise KeyError(f"no values recorded for metric {name!r}")
        return sum(values) / len(values)

    def series(self, name: str) -> List[float]:
        return list(self._records.get(name, []))

    def names(self) -> List[str]:
        return sorted(self._records)

    def as_dict(self) -> Dict[str, List[float]]:
        return {name: list(values) for name, values in self._records.items()}
