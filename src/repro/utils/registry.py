"""A tiny name → factory registry, used to register linkers and experiments."""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, TypeVar

T = TypeVar("T")


class Registry(Generic[T]):
    """Map string names to factories / callables.

    Used for two things in the repository: registering entity-linking methods
    (so benchmark harnesses can iterate "all baselines") and registering
    experiment runners by table / figure id.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator registering ``name`` → decorated object."""

        def decorator(obj: T) -> T:
            self.add(name, obj)
            return obj

        return decorator

    def add(self, name: str, obj: T) -> None:
        if name in self._entries:
            raise KeyError(f"{self.kind} registry already contains {name!r}")
        self._entries[name] = obj

    def get(self, name: str) -> T:
        if name not in self._entries:
            known = ", ".join(sorted(self._entries)) or "<empty>"
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")
        return self._entries[name]

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
