"""Mention rewriting with a trainable seq2seq generator (Section IV-A).

The paper fine-tunes T5 with a ``summarize:`` prefix so that feeding an
entity's description produces a short paraphrase that replaces the original
mention ("The Curse of the Golden Master" → "the fourth episode").  Offline we
train :class:`~repro.generation.seq2seq.Seq2SeqModel` from scratch on the
source-domain (description → mention) pairs; the ``syn*`` variant additionally
runs a sentinel-mask denoising epoch over unlabelled target-domain documents
(Eq. 1–2 and the masking example of Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..kb.entity import Entity, EntityMentionPair
from ..text.tokenizer import Tokenizer
from ..text.vocab import NUM_SENTINELS
from ..utils.config import RewriterConfig
from ..utils.logging import MetricHistory, get_logger
from ..utils.rng import derive_seed
from .seq2seq import Seq2SeqModel

REWRITTEN_SOURCE = "rewritten"

#: Length buckets round the real (non-pad) source length up to a multiple of
#: this, so short descriptions are batched together and decoded over a
#: trimmed id matrix instead of paying full ``max_source_length`` padding.
LENGTH_BUCKET = 8

_LOGGER = get_logger("rewriter")


@dataclass
class RewriterTrainingSummary:
    """Losses recorded while fitting the rewriter."""

    summarization: MetricHistory
    denoising: Optional[MetricHistory] = None


class MentionRewriter:
    """Generate replacement mention surfaces from entity descriptions."""

    def __init__(self, tokenizer: Tokenizer, config: Optional[RewriterConfig] = None) -> None:
        self.tokenizer = tokenizer
        base = config or RewriterConfig()
        if base.vocab_size < tokenizer.vocab_size:
            # The generator must be able to emit every vocabulary token.
            base = RewriterConfig(**{**base.to_dict(), "vocab_size": tokenizer.vocab_size})
        self.config = base
        vocabulary = tokenizer.vocabulary
        self.model = Seq2SeqModel(
            self.config,
            pad_id=vocabulary.pad_id,
            bos_id=vocabulary.bos_id,
            eos_id=vocabulary.eos_id,
        )
        self._trained = False

    # ------------------------------------------------------------------
    # Training data construction
    # ------------------------------------------------------------------
    def build_summarization_batch(
        self, pairs: Sequence[EntityMentionPair]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(description with summarize prefix) → (mention surface) id pairs."""
        sources = np.stack(
            [
                self.tokenizer.encode_summarize_source(
                    pair.entity.description, max_length=self.config.max_source_length
                )
                for pair in pairs
            ]
        )
        targets = np.stack(
            [
                self.tokenizer.encode_target(
                    pair.mention.surface, max_length=self.config.max_target_length + 1
                )
                for pair in pairs
            ]
        )
        return sources, targets

    def build_denoising_batch(
        self, texts: Sequence[str], seed: int = 0, mask_ratio: float = 0.3
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sentinel-mask denoising pairs from raw target-domain text.

        A random contiguous span of each text is replaced by ``<extra_id_i>``
        in the source; the target asks the decoder to reproduce the masked
        tokens, mirroring T5's span-corruption objective.
        """
        vocabulary = self.tokenizer.vocabulary
        rng = np.random.default_rng(seed)
        sources: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for text in texts:
            tokens = self.tokenizer.tokenize(text)
            if len(tokens) < 4:
                continue
            span = max(1, int(round(mask_ratio * min(len(tokens), 12))))
            start = int(rng.integers(0, max(1, len(tokens) - span)))
            sentinel_index = int(rng.integers(0, NUM_SENTINELS))
            masked = tokens[:start] + [f"<extra_id_{sentinel_index}>"] + tokens[start + span:]
            answer = tokens[start:start + span]

            source_ids = vocabulary.encode_tokens([f"<extra_id_{sentinel_index}>"] + masked)
            source = np.full(self.config.max_source_length, vocabulary.pad_id, dtype=np.int64)
            clipped = source_ids[: self.config.max_source_length]
            source[: len(clipped)] = clipped

            target_ids = [vocabulary.bos_id] + vocabulary.encode_tokens(answer) + [vocabulary.eos_id]
            target = np.full(self.config.max_target_length + 1, vocabulary.pad_id, dtype=np.int64)
            clipped_target = target_ids[: self.config.max_target_length + 1]
            target[: len(clipped_target)] = clipped_target

            sources.append(source)
            targets.append(target)
        if not sources:
            raise ValueError("no usable denoising examples could be built")
        return np.stack(sources), np.stack(targets)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        source_pairs: Sequence[EntityMentionPair],
        target_domain_texts: Optional[Sequence[str]] = None,
        max_pairs: Optional[int] = 600,
        seed: int = 0,
    ) -> RewriterTrainingSummary:
        """Train on source-domain pairs, optionally followed by denoising.

        ``target_domain_texts`` switches the rewriter from *syn* to *syn**
        mode: when provided, an unsupervised denoising pass over those texts
        adapts the generator to the target domain.
        """
        if not source_pairs:
            raise ValueError("rewriter needs at least one source-domain pair")
        pairs = list(source_pairs)
        if max_pairs is not None and len(pairs) > max_pairs:
            rng = np.random.default_rng(derive_seed(seed, "rewriter_subsample"))
            chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
            pairs = [pairs[i] for i in chosen]

        sources, targets = self.build_summarization_batch(pairs)
        _LOGGER.debug("fitting rewriter on %d summarisation pairs", len(pairs))
        summarization_history = self.model.fit(sources, targets, seed=seed)

        denoising_history: Optional[MetricHistory] = None
        if target_domain_texts:
            den_sources, den_targets = self.build_denoising_batch(target_domain_texts, seed=seed + 1)
            denoising_history = self.model.fit(
                den_sources,
                den_targets,
                epochs=self.config.denoising_epochs,
                seed=seed + 1,
            )
        self._trained = True
        return RewriterTrainingSummary(summarization=summarization_history, denoising=denoising_history)

    @property
    def is_trained(self) -> bool:
        return self._trained

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def rewrite_entity(self, entity: Entity, constrain_to_source: bool = True) -> str:
        """Generate a replacement mention for one entity (Eq. 2)."""
        return self.rewrite_entities([entity], constrain_to_source=constrain_to_source)[0]

    def rewrite_entities(
        self, entities: Sequence[Entity], constrain_to_source: bool = True
    ) -> List[str]:
        """Generate replacement mentions for a batch of entities.

        Inputs are bucketed by real (non-pad) source length and decoded one
        bucket at a time over a trimmed id matrix, so short descriptions do
        not pay long-description padding in the encoder or the per-step
        cross-attention.  Per-entity allowed / boosted token sets ride along
        as per-row constraints of the batched KV-cached decode.  Outputs are
        returned in input order regardless of bucketing.
        """
        if not self._trained:
            raise RuntimeError("rewriter must be fitted before rewriting")
        if not entities:
            return []
        vocabulary = self.tokenizer.vocabulary
        sources = np.stack(
            [
                self.tokenizer.encode_summarize_source(
                    entity.description, max_length=self.config.max_source_length
                )
                for entity in entities
            ]
        )
        banned = [vocabulary.pad_id, vocabulary.unk_id, vocabulary.bos_id, vocabulary.summarize_id]
        function_word_ids = {
            vocabulary.token_to_id(token)
            for token in ("the", "of", "a", "in", "and")
            if vocabulary.token_to_id(token) != vocabulary.unk_id
        }

        lengths = (sources != vocabulary.pad_id).sum(axis=1)
        bucket_lengths = np.minimum(
            -(-np.maximum(lengths, 1) // LENGTH_BUCKET) * LENGTH_BUCKET,
            self.config.max_source_length,
        )
        outputs: List[str] = [""] * len(entities)
        for bucket_length in np.unique(bucket_lengths):
            indices = np.flatnonzero(bucket_lengths == bucket_length)
            rows = sources[indices, : int(bucket_length)]
            source_token_sets = [
                set(int(t) for t in row if t != vocabulary.pad_id) for row in rows
            ]
            allowed = None
            if constrain_to_source:
                allowed = [sorted(tokens | function_word_ids) for tokens in source_token_sets]
            # Content words of the description get a copy bonus so the tiny
            # generator produces entity-specific phrases instead of the most
            # frequent target tokens.
            boosted = [sorted(tokens - function_word_ids) for tokens in source_token_sets]
            decoded_rows = self.model.greedy_decode(
                rows,
                allowed_token_ids=allowed,
                banned_token_ids=banned,
                boosted_token_ids=boosted,
                boost=3.0,
                min_length=2,
            )
            for position, decoded in zip(indices, decoded_rows):
                text = " ".join(vocabulary.decode_ids(decoded)).strip()
                if not text:
                    # Degenerate generations fall back to the entity title so
                    # the downstream pipeline always receives a usable surface.
                    text = entities[position].title
                outputs[position] = text
        return outputs

    def rewrite_pairs(
        self,
        pairs: Sequence[EntityMentionPair],
        constrain_to_source: bool = True,
    ) -> List[EntityMentionPair]:
        """Replace each pair's mention surface with a generated one."""
        surfaces = self.rewrite_entities([pair.entity for pair in pairs], constrain_to_source)
        rewritten: List[EntityMentionPair] = []
        for pair, surface in zip(pairs, surfaces):
            mention = pair.mention.with_surface(surface, source=REWRITTEN_SOURCE)
            rewritten.append(
                EntityMentionPair(mention=mention, entity=pair.entity, source=REWRITTEN_SOURCE)
            )
        return rewritten
