"""Exact-matching weak supervision (Section IV-A, "Exact Matching").

Following Le & Titov's "Name Matching" heuristic, a mention is linked to an
entity when its (normalised) surface form equals the entity's title.  Two
sources of weakly supervised pairs are produced:

* :func:`match_mentions` scans *unlabelled* in-domain mentions and keeps those
  whose surface exactly matches some entity title — this never looks at the
  gold label.
* :func:`generate_title_mentions` manufactures additional pairs by dropping an
  entity's title into a context template built from the entity's own
  description, which is how the paper obtains "massive samples" even when few
  raw mentions exist.

Both produce trivially-aligned surface forms, which is exactly the shortcut
(mention text == title text) that mention rewriting later breaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..kb.entity import Entity, EntityMentionPair, Mention
from ..text.normalization import normalize_text, simple_tokenize, strip_disambiguation
from ..utils.rng import derive_seed

EXACT_MATCH_SOURCE = "exact_match"


def build_title_index(entities: Sequence[Entity]) -> Dict[str, List[Entity]]:
    """Normalised title (and title without disambiguation) → entities."""
    index: Dict[str, List[Entity]] = {}
    for entity in entities:
        for key in {normalize_text(entity.title), normalize_text(strip_disambiguation(entity.title))}:
            if key:
                index.setdefault(key, []).append(entity)
    return index


def match_mentions(
    mentions: Sequence[Mention],
    entities: Sequence[Entity],
) -> List[EntityMentionPair]:
    """Link mentions whose surface equals an entity title (gold labels unused).

    Ambiguous surfaces (matching several titles) are linked to the first
    matching entity, mirroring the naive behaviour of name matching; that
    occasionally produces wrong pairs, which is part of why the synthetic
    data needs denoising.
    """
    index = build_title_index(entities)
    pairs: List[EntityMentionPair] = []
    for mention in mentions:
        key = normalize_text(mention.surface)
        matches = index.get(key)
        if not matches:
            continue
        pairs.append(
            EntityMentionPair(
                mention=Mention(
                    mention_id=f"{mention.mention_id}::exact",
                    surface=mention.surface,
                    context_left=mention.context_left,
                    context_right=mention.context_right,
                    domain=mention.domain,
                    gold_entity_id=matches[0].entity_id,
                    source=EXACT_MATCH_SOURCE,
                ),
                entity=matches[0],
                source=EXACT_MATCH_SOURCE,
            )
        )
    return pairs


_TITLE_CONTEXT_TEMPLATES = (
    ("the records describe how", "shaped the {w0} and the {w1}"),
    ("according to the {w0} archive", "was central to the {w1}"),
    ("fans of the {w0} remember that", "appeared before the {w1}"),
    ("the chronicle of the {w1} says", "held the {w0} for years"),
)


def generate_title_mentions(
    entities: Sequence[Entity],
    per_entity: int = 2,
    seed: int = 13,
) -> List[EntityMentionPair]:
    """Manufacture exact-match pairs from entity titles and descriptions."""
    if per_entity < 1:
        raise ValueError("per_entity must be at least 1")
    pairs: List[EntityMentionPair] = []
    for entity in entities:
        rng = np.random.default_rng(derive_seed(seed, "title_mentions", entity.entity_id))
        description_tokens = [t for t in simple_tokenize(entity.description) if len(t) > 3]
        if not description_tokens:
            description_tokens = ["record"]
        for copy_index in range(per_entity):
            left_template, right_template = _TITLE_CONTEXT_TEMPLATES[
                int(rng.integers(0, len(_TITLE_CONTEXT_TEMPLATES)))
            ]
            w0 = description_tokens[int(rng.integers(0, len(description_tokens)))]
            w1 = description_tokens[int(rng.integers(0, len(description_tokens)))]
            mention = Mention(
                mention_id=f"{entity.entity_id}::title{copy_index}",
                surface=entity.title,
                context_left=left_template.format(w0=w0, w1=w1),
                context_right=right_template.format(w0=w0, w1=w1),
                domain=entity.domain,
                gold_entity_id=entity.entity_id,
                source=EXACT_MATCH_SOURCE,
            )
            pairs.append(EntityMentionPair(mention=mention, entity=entity, source=EXACT_MATCH_SOURCE))
    return pairs


def exact_match_dataset(
    entities: Sequence[Entity],
    mentions: Optional[Sequence[Mention]] = None,
    per_entity: int = 2,
    seed: int = 13,
) -> List[EntityMentionPair]:
    """Full exact-matching stage: matched raw mentions + manufactured pairs."""
    pairs = generate_title_mentions(entities, per_entity=per_entity, seed=seed)
    if mentions:
        pairs.extend(match_mentions(mentions, entities))
    return pairs
